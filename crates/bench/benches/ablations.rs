//! Architecture ablations from DESIGN.md.
//!
//! * `summary_count/*` — System D's structural summary vs a naive walk for
//!   `count(//tag)` (the paper's Q6/Q7 observation, isolated).
//! * `interval_descendants/*` — System E's tag-indexed stab join vs
//!   System F's interval scan for `//item` (the E-vs-F delta of Table 3).
//! * `positional_bidder/*` — System C's positional child index vs generic
//!   child enumeration for `bidder[1]` (the Q2/Q3 delta).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use xmark::prelude::*;
use xmark::store::{InlinedStore, IntervalStore, NaiveStore, PositionSpec, SummaryStore};

fn bench_summary_count(c: &mut Criterion) {
    let doc = generate_document(0.01);
    let summary = SummaryStore::load(&doc.xml).unwrap();
    let naive = NaiveStore::load(&doc.xml).unwrap();
    let mut group = c.benchmark_group("summary_count");
    group.bench_function("with_summary", |b| {
        b.iter(|| {
            summary.count_descendants_named(summary.root(), black_box("item"))
                + summary.count_descendants_named(summary.root(), black_box("email"))
        })
    });
    group.bench_function("naive_walk", |b| {
        b.iter(|| {
            naive.count_descendants_named(naive.root(), black_box("item"))
                + naive.count_descendants_named(naive.root(), black_box("email"))
        })
    });
    group.finish();
}

fn bench_interval_descendants(c: &mut Criterion) {
    let doc = generate_document(0.01);
    let indexed = IntervalStore::load_indexed(&doc.xml).unwrap();
    let scan = IntervalStore::load_scan(&doc.xml).unwrap();
    let mut group = c.benchmark_group("interval_descendants");
    group.bench_function("indexed_stab_join", |b| {
        b.iter(|| {
            indexed
                .descendants_named(indexed.root(), black_box("keyword"))
                .len()
        })
    });
    group.bench_function("interval_scan", |b| {
        b.iter(|| {
            scan.descendants_named(scan.root(), black_box("keyword"))
                .len()
        })
    });
    group.finish();
}

fn bench_positional_bidder(c: &mut Criterion) {
    let doc = generate_document(0.01);
    let inlined = InlinedStore::load(&doc.xml).unwrap();
    let auctions = inlined.descendants_named(inlined.root(), "open_auction");
    let mut group = c.benchmark_group("positional_bidder");
    group.bench_function("positional_index", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &a in &auctions {
                if inlined
                    .positional_child(a, "bidder", PositionSpec::First(1))
                    .expect("C supports positional access")
                    .is_some()
                {
                    found += 1;
                }
            }
            found
        })
    });
    group.bench_function("generic_children", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &a in &auctions {
                if !inlined.children_named(a, "bidder").is_empty() {
                    found += 1;
                }
            }
            found
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_summary_count,
    bench_interval_descendants,
    bench_positional_bidder
);
criterion_main!(benches);
