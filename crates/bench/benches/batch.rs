//! Vectorized-execution microbench: batch pulls against the
//! item-at-a-time pulls they replace, at the two layers the tentpole
//! touches.
//!
//! * `axis_scan` — the raw store axis under `//item` on System E: one
//!   virtual `next()` call per node vs `next_block` bulk-copying runs
//!   out of the extent table into a reusable [`NodeBatch`].
//! * `scan_drain` — the same access path through the query layer:
//!   draining the `/site//item` stream with `with_batch_size(1)` (the
//!   pre-vectorization profile, one cursor dispatch per item) vs the
//!   default batch capacity.
//! * `join_probe` — Q9's hash join on System A: item-granularity drain
//!   vs the batched drain over the probe-run cursor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xmark::prelude::*;
use xmark::query::plan::DEFAULT_BATCH;
use xmark::store::NodeBatch;

fn bench_batch(c: &mut Criterion) {
    let session = Benchmark::at_factor(0.05).generate();
    let mut group = c.benchmark_group("batch");

    // Store layer: the descendant axis cursor, pulled both ways. System
    // E's extent encoding serves `next_block` as contiguous slice
    // copies, so this isolates the per-call dispatch the batch removes.
    let store_e = session.load_shared(SystemId::E);
    let root = store_e.as_ref().root();
    let items = store_e
        .as_ref()
        .descendants_named_iter(root, "item")
        .count();
    assert!(
        items > 500,
        "factor 0.05 yields a real scan ({items} items)"
    );
    group.bench_with_input(
        BenchmarkId::new("axis_scan", "item"),
        &store_e,
        |b, store| {
            let store = store.as_ref();
            b.iter(|| {
                let mut n = 0usize;
                for node in store.descendants_named_iter(root, "item") {
                    black_box(node);
                    n += 1;
                }
                n
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("axis_scan", "block"),
        &store_e,
        |b, store| {
            let store = store.as_ref();
            b.iter(|| {
                let mut it = store.descendants_named_iter(root, "item");
                let mut nb = NodeBatch::new(DEFAULT_BATCH);
                let mut n = 0usize;
                loop {
                    nb.reset(DEFAULT_BATCH);
                    it.next_block(&mut nb);
                    black_box(nb.as_slice());
                    n += nb.len();
                    if !nb.is_full() {
                        break;
                    }
                }
                n
            })
        },
    );

    // Query layer: the same scan through plan, cursor, and stream.
    let scan = compile("/site//item", store_e.as_ref()).unwrap();
    assert!(
        scan.explain().contains("[batch="),
        "the planner annotates the scan this bench isolates"
    );
    for (label, cap) in [("item", 1usize), ("batched", DEFAULT_BATCH)] {
        group.bench_with_input(
            BenchmarkId::new("scan_drain", label),
            &store_e,
            |b, store| {
                let store = store.as_ref();
                b.iter(|| {
                    black_box(
                        scan.stream(store)
                            .with_batch_size(cap)
                            .collect_seq()
                            .unwrap(),
                    )
                    .len()
                })
            },
        );
    }

    // Join probe: Q9's hash join drained at both granularities. One
    // untimed execution first so the persistent value indexes are warm
    // and both sides measure pure probe + drain work.
    let store_a = session.load_shared(SystemId::A);
    let q9 = compile(query(9).text, store_a.as_ref()).unwrap();
    assert!(
        q9.explain().contains("HashJoin"),
        "Q9 plans as the hash join this bench isolates"
    );
    let _ = execute(&q9, store_a.as_ref()).unwrap();
    for (label, cap) in [("item", 1usize), ("batched", DEFAULT_BATCH)] {
        group.bench_with_input(
            BenchmarkId::new("join_probe", label),
            &store_a,
            |b, store| {
                let store = store.as_ref();
                b.iter(|| {
                    black_box(q9.stream(store).with_batch_size(cap).collect_seq().unwrap()).len()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
