//! Table 1 microbench: bulkload cost per storage architecture, plus the
//! tokenizer-only baseline (§7's expat measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xmark::prelude::*;

fn bench_bulkload(c: &mut Criterion) {
    let doc = generate_document(0.01);
    let mut group = c.benchmark_group("bulkload");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Bytes(doc.xml.len() as u64));

    group.bench_function("scan_only", |b| {
        b.iter(|| xmark::xml::parser::scan_only(black_box(&doc.xml)).unwrap())
    });
    group.bench_function("parse_dom", |b| {
        b.iter(|| {
            xmark::xml::parse_document(black_box(&doc.xml))
                .unwrap()
                .node_count()
        })
    });
    for system in SystemId::MASS_STORAGE {
        group.bench_with_input(
            BenchmarkId::new("system", format!("{system:?}")),
            &system,
            |b, &system| {
                b.iter(|| {
                    build_store(system, black_box(&doc.xml))
                        .unwrap()
                        .node_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bulkload);
criterion_main!(benches);
