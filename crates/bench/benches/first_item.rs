//! Time-to-first-item: streamed vs materialized result delivery — the
//! microbench behind the pull-based result API.
//!
//! On a serialization-heavy, multi-item query (Q13: every australia item
//! reconstructed with its description; Q14: a `//item` scan with a
//! contains-filter) compare what a consumer waits for its first result:
//!
//! * `materialized` — the old contract: `execute()` the whole query into
//!   a `Sequence`, serialize the first item (nothing can be delivered
//!   before the last item is computed),
//! * `streamed` — open a [`ResultStream`], pull one item off the operator
//!   cursors and serialize it; the rest of the query never runs,
//! * `full_drain` is benchmarked alongside as the sanity baseline: a
//!   drained stream must cost about the same as `execute`, showing the
//!   cursor overhead is in the noise.
//!
//! The interesting number is `materialized / streamed` within a backend:
//! that ratio is the paper's whole-result latency divided by the
//! time-to-first-byte a streaming client actually experiences.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xmark::prelude::*;

const QUERIES: [usize; 2] = [13, 14];

fn bench_first_item(c: &mut Criterion) {
    let session = Benchmark::at_scale("mini")
        .systems(&[SystemId::D, SystemId::E, SystemId::G])
        .generate();
    let loaded = session.load_all();

    let mut group = c.benchmark_group("first_item");
    for l in &loaded {
        let store = l.store.as_ref();
        for number in QUERIES {
            let compiled = compile(query(number).text, store).unwrap();
            let label = format!("{:?}/Q{number}", l.system);

            group.bench_with_input(
                BenchmarkId::new("materialized", &label),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        // Whole result first; only then can byte one leave.
                        let all = execute(black_box(compiled), store).unwrap();
                        let mut out = String::new();
                        write_item(store, &all[0], &mut out).unwrap();
                        (all.len(), out.len())
                    })
                },
            );

            group.bench_with_input(
                BenchmarkId::new("streamed", &label),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        // One pull, one item serialized; the cursors never
                        // produce the rest.
                        let mut s = black_box(compiled).stream(store);
                        let first = s.next_item().expect("non-empty").unwrap();
                        let mut out = String::new();
                        write_item(store, &first, &mut out).unwrap();
                        out.len()
                    })
                },
            );

            group.bench_with_input(
                BenchmarkId::new("full_drain", &label),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        let mut sink = String::new();
                        black_box(compiled)
                            .write_to(store, &mut sink)
                            .unwrap()
                            .items
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_first_item);
criterion_main!(benches);
