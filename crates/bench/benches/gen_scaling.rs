//! Generator benchmarks (paper §4.5 / Fig. 3).
//!
//! * `generate/<factor>` — end-to-end document generation throughput; the
//!   paper's linearity claim means ns/byte should be flat across factors.
//! * `vocabulary_build` — the fixed startup cost (17 000 words).
//! * `reference_partition/*` — the DESIGN.md ablation: the paper's
//!   identical-streams trick assigns item references arithmetically in
//!   O(1) memory, versus the "straight-forward solution of keeping some
//!   sort of log" (§4.5) whose memory and time grow with the document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::Write;

use xmark::gen::{Generator, GeneratorConfig, Vocabulary, XmarkRng};

struct NullSink;

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for factor in [0.001, 0.005, 0.02] {
        let generator = Generator::new(GeneratorConfig::at_factor(factor));
        let bytes = generator.write(&mut NullSink).unwrap().bytes;
        group.throughput(criterion::Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, _| {
            b.iter(|| generator.write(&mut NullSink).unwrap().bytes)
        });
    }
    group.finish();
}

fn bench_vocabulary(c: &mut Criterion) {
    c.bench_function("vocabulary_build", |b| {
        b.iter(|| black_box(Vocabulary::standard().len()))
    });
}

fn bench_reference_partition(c: &mut Criterion) {
    // 21750 items at factor 1.0; reference them from two auction sections.
    let items = 21_750u64;
    let closed = 9_750u64;
    let mut group = c.benchmark_group("reference_partition");

    // The paper's trick: auction i references item (partition offset + i);
    // consistency is arithmetic, memory is O(1).
    group.bench_function("stream_trick", |b| {
        b.iter(|| {
            let mut checksum = 0u64;
            for i in 0..closed {
                checksum = checksum.wrapping_add(black_box(i));
            }
            for i in 0..(items - closed) {
                checksum = checksum.wrapping_add(black_box(closed + i));
            }
            checksum
        })
    });

    // The rejected alternative: draw random item ids and log which have
    // been referenced to guarantee uniqueness — O(n) memory, degrading
    // draws as the table fills ("this seems infeasible for large
    // documents", §4.5).
    group.bench_function("log_based", |b| {
        b.iter(|| {
            let mut rng = XmarkRng::new(0);
            let mut used = vec![false; items as usize];
            let mut checksum = 0u64;
            for _ in 0..items {
                loop {
                    let candidate = rng.below(items);
                    if !used[candidate as usize] {
                        used[candidate as usize] = true;
                        checksum = checksum.wrapping_add(candidate);
                        break;
                    }
                }
            }
            checksum
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generate,
    bench_vocabulary,
    bench_reference_partition
);
criterion_main!(benches);
