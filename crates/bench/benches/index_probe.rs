//! Index-probe microbench: the store-resident index subsystem against
//! the walks it replaces.
//!
//! Three probes, all on the same loaded stores:
//!
//! * `descendant_scan` — the raw access path under `//item` on System
//!   A: the native descendant cursor (climbing parent chains per extent
//!   entry) vs the shared element index's stabbed posting slice (two
//!   binary searches).
//! * `id_lookup` — Q1 on System G: the naive interpretive scan vs the
//!   shared attribute-value index answering `lookup_id`.
//! * `q8_join` — Q8 (decorrelated IndexLookup) on System A with value
//!   persistence off (cold: every execution rebuilds its lookup index
//!   and path materializations) vs on (warm: probes only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xmark::prelude::*;
use xmark::query::compile_with_mode;

fn bench_index_probe(c: &mut Criterion) {
    let session = Benchmark::at_scale("mini").generate();
    let mut group = c.benchmark_group("index_probe");

    // Descendant access: native walk vs posting stab (System A). Probed
    // at the store level so no query-layer memo can serve either side.
    let store_a = session.load_shared(SystemId::A);
    store_a.indexes().build_all(store_a.as_ref());
    assert!(
        compile("/site//item", store_a.as_ref())
            .unwrap()
            .explain()
            .contains("->idx"),
        "the planner picks the IndexScan this bench isolates"
    );
    // Scope to a subtree: from an inner context the edge store verifies
    // containment by climbing parent chains per extent entry, while the
    // index stabs the posting list with the subtree range.
    let scope = store_a
        .as_ref()
        .children_named_iter(store_a.as_ref().root(), "regions")
        .next()
        .expect("document has regions");
    group.bench_with_input(
        BenchmarkId::new("descendant_scan", "walk"),
        &store_a,
        |b, store| {
            let store = store.as_ref();
            b.iter(|| black_box(store.descendants_named_iter(scope, "name").count()))
        },
    );
    group.bench_with_input(
        BenchmarkId::new("descendant_scan", "index"),
        &store_a,
        |b, store| {
            let store = store.as_ref();
            b.iter(|| {
                let index = store.indexes().element(store);
                black_box(index.postings_in("name", scope).expect("ordered").len())
            })
        },
    );

    // ID lookup: System G's interpretive scan vs the shared attr index.
    let store_g = session.load_shared(SystemId::G);
    store_g.indexes().build_all(store_g.as_ref());
    let scan_q1 = compile_with_mode(query(1).text, store_g.as_ref(), PlanMode::Naive).unwrap();
    group.bench_with_input(
        BenchmarkId::new("id_lookup", "scan"),
        &store_g,
        |b, store| b.iter(|| black_box(execute(&scan_q1, store.as_ref()).unwrap()).len()),
    );
    group.bench_with_input(
        BenchmarkId::new("id_lookup", "index"),
        &store_g,
        |b, store| {
            b.iter(|| {
                black_box(store.lookup_id("person0"))
                    .expect("shared index answers")
                    .is_some()
            })
        },
    );

    // Q8 serving: cold per-execution builds vs warm persistent indexes.
    let q8 = compile(query(8).text, store_a.as_ref()).unwrap();
    let _ = execute(&q8, store_a.as_ref()).unwrap(); // warm the value slots
    for (label, persistent) in [("cold", false), ("warm", true)] {
        group.bench_with_input(BenchmarkId::new("q8_join", label), &store_a, |b, store| {
            store.indexes().set_persistent(persistent);
            b.iter(|| black_box(execute(&q8, store.as_ref()).unwrap()).len());
        });
    }
    store_a.indexes().set_persistent(true);

    group.finish();
}

criterion_group!(benches, bench_index_probe);
criterion_main!(benches);
