//! Plan-cache microbench: prepared vs unprepared QPS on the service
//! layer.
//!
//! Three ways to serve the same repeated-query batch against one loaded
//! store:
//!
//! * `unprepared` — parse + plan + execute per request (what every
//!   request cost before the plan cache existed),
//! * `prepared` — a [`PreparedQuery`] compiled once, executed per request
//!   (the per-session ceiling: no cache lookup at all),
//! * `service_cold` / `service_warm` — the worker pool with the plan
//!   cache disabled vs enabled, measuring the cache's effect end to end
//!   including channel overhead.
//!
//! The gap between `unprepared` and `prepared` is the Table 2 compile
//! share, paid per request vs once; the service pair shows how much of
//! it the LRU cache recovers under the pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use xmark::prelude::*;

/// A compile-heavy repeated mix: cheap executions, so the parse+plan
/// share is visible.
const MIX: [usize; 2] = [1, 17];
const REQUESTS: usize = 20;

fn bench_plan_cache(c: &mut Criterion) {
    let session = Benchmark::at_scale("mini")
        .systems(&[SystemId::D])
        .generate();
    let store: Arc<dyn XmlStore> = session.load_shared(SystemId::D);

    let mut group = c.benchmark_group("plan_cache");

    group.bench_with_input(
        BenchmarkId::from_parameter("unprepared"),
        &store,
        |b, store| {
            b.iter(|| {
                for i in 0..REQUESTS {
                    let q = query(MIX[i % MIX.len()]);
                    let compiled = compile(q.text, store.as_ref()).unwrap();
                    black_box(execute(&compiled, store.as_ref()).unwrap());
                }
            })
        },
    );

    let prepared: Vec<PreparedQuery> = MIX
        .iter()
        .map(|&n| PreparedQuery::new(Arc::clone(&store), query(n).text))
        .collect();
    group.bench_with_input(
        BenchmarkId::from_parameter("prepared"),
        &prepared,
        |b, prepared| {
            b.iter(|| {
                for i in 0..REQUESTS {
                    black_box(prepared[i % prepared.len()].execute());
                }
            })
        },
    );

    let cold = QueryService::start_with_cache(Arc::clone(&store), 1, 0);
    group.bench_with_input(
        BenchmarkId::from_parameter("service_cold"),
        &cold,
        |b, service| b.iter(|| black_box(service.run_mix(&MIX, REQUESTS)).requests),
    );
    drop(cold);

    let warm = QueryService::start(Arc::clone(&store), 1);
    warm.run_mix(&MIX, MIX.len()); // prime the cache
    group.bench_with_input(
        BenchmarkId::from_parameter("service_warm"),
        &warm,
        |b, service| b.iter(|| black_box(service.run_mix(&MIX, REQUESTS)).requests),
    );

    group.finish();
}

criterion_group!(benches, bench_plan_cache);
criterion_main!(benches);
