//! Table 3 / Table 2 / Fig. 4 microbenches.
//!
//! * `q1/<system>` — the exact-match baseline across all seven systems
//!   (Table 3 row 1 plus System G).
//! * `compile/<system>` — compile phase alone on the relational stores
//!   (Table 2's subject).
//! * `suite/<system>` — the full thirteen-query Table 3 column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xmark::prelude::*;

fn bench_q1(c: &mut Criterion) {
    let doc = generate_document(0.01);
    let mut group = c.benchmark_group("q1");
    group.sample_size(20);
    for system in SystemId::ALL {
        let loaded = load_system(system, &doc.xml);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{system:?}")),
            &loaded,
            |b, l| {
                b.iter(|| {
                    run_query(query(1).text, l.store.as_ref())
                        .expect("Q1 runs")
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let doc = generate_document(0.01);
    let mut group = c.benchmark_group("compile");
    for system in [SystemId::A, SystemId::B, SystemId::C] {
        let loaded = load_system(system, &doc.xml);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{system:?}")),
            &loaded,
            |b, l| {
                b.iter(|| {
                    xmark::query::compile(query(2).text, l.store.as_ref())
                        .expect("compiles")
                        .stats
                        .metadata_accesses
                })
            },
        );
    }
    group.finish();
}

fn bench_suite(c: &mut Criterion) {
    let doc = generate_document(0.005);
    let mut group = c.benchmark_group("suite");
    group.sample_size(10);
    for system in SystemId::MASS_STORAGE {
        let loaded = load_system(system, &doc.xml);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{system:?}")),
            &loaded,
            |b, l| {
                b.iter(|| {
                    let mut items = 0usize;
                    for &q in TABLE3_QUERIES.iter() {
                        items += run_query(query(q).text, l.store.as_ref())
                            .expect("query runs")
                            .len();
                    }
                    items
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_q1, bench_compile, bench_suite);
criterion_main!(benches);
