//! Streaming vs materialized axis traversal — the microbench behind the
//! cursor redesign.
//!
//! For each of the three fastest architectures (D: structural summary,
//! E: tag-indexed intervals, G: embedded DOM) at the `mini` scale, compare
//! walking descendant/child axes through the zero-allocation cursors
//! (`descendants_named_iter`, `children_iter`) against the seed's
//! materializing strategy (collect every step into a fresh `Vec<Node>`),
//! plus the end-to-end effect on a descendant-heavy query (Q14's
//! `//item` scan shape).
//!
//! The interesting number is the ratio within each `materialized` /
//! `streaming` pair: the work is identical, the delta is pure
//! allocator + copy traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xmark::prelude::*;
use xmark::store::{Node, XmlStore};

/// The seed's strategy, reconstructed: materialize every axis step.
fn descendants_materialized(store: &dyn XmlStore, n: Node, tag: &str) -> Vec<Node> {
    store.descendants_named_iter(n, tag).collect()
}

/// Walk every subtree child-by-child, materializing (seed) vs streaming
/// (cursor) — the Q13/serialization access pattern.
fn walk_children_materialized(store: &dyn XmlStore, n: Node) -> usize {
    let mut visited = 1usize;
    for c in store.children(n) {
        visited += walk_children_materialized(store, c);
    }
    visited
}

fn walk_children_streaming(store: &dyn XmlStore, n: Node) -> usize {
    let mut visited = 1usize;
    for c in store.children_iter(n) {
        visited += walk_children_streaming(store, c);
    }
    visited
}

fn bench_descendant_axis(c: &mut Criterion) {
    let session = Benchmark::at_scale("mini")
        .systems(&[SystemId::D, SystemId::E, SystemId::G])
        .generate();
    let loaded = session.load_all();

    let mut group = c.benchmark_group("descendant_axis");
    for l in &loaded {
        let store = l.store.as_ref();
        let root = store.root();
        group.bench_with_input(
            BenchmarkId::new("materialized", format!("{:?}", l.system)),
            &(),
            |b, ()| {
                b.iter(|| {
                    // One Vec<Node> per step — the seed contract.
                    let items = descendants_materialized(store, root, black_box("item"));
                    let descriptions =
                        descendants_materialized(store, root, black_box("description"));
                    let keywords = descendants_materialized(store, root, black_box("keyword"));
                    items.len() + descriptions.len() + keywords.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming", format!("{:?}", l.system)),
            &(),
            |b, ()| {
                b.iter(|| {
                    // Zero-allocation cursors.
                    store
                        .descendants_named_iter(root, black_box("item"))
                        .count()
                        + store
                            .descendants_named_iter(root, black_box("description"))
                            .count()
                        + store
                            .descendants_named_iter(root, black_box("keyword"))
                            .count()
                })
            },
        );
    }
    group.finish();
}

fn bench_subtree_walk(c: &mut Criterion) {
    let session = Benchmark::at_scale("mini")
        .systems(&[SystemId::D, SystemId::E, SystemId::G])
        .generate();
    let loaded = session.load_all();

    let mut group = c.benchmark_group("subtree_walk");
    for l in &loaded {
        let store = l.store.as_ref();
        let root = store.root();
        group.bench_with_input(
            BenchmarkId::new("materialized", format!("{:?}", l.system)),
            &(),
            |b, ()| b.iter(|| walk_children_materialized(store, black_box(root))),
        );
        group.bench_with_input(
            BenchmarkId::new("streaming", format!("{:?}", l.system)),
            &(),
            |b, ()| b.iter(|| walk_children_streaming(store, black_box(root))),
        );
    }
    group.finish();
}

fn bench_query_effect(c: &mut Criterion) {
    // End-to-end: a descendant-heavy query through the evaluator, which
    // now streams predicate-free steps straight into the output sequence.
    let session = Benchmark::at_scale("mini")
        .systems(&[SystemId::D, SystemId::E, SystemId::G])
        .generate();
    let loaded = session.load_all();

    let mut group = c.benchmark_group("q14_fulltext_scan");
    for l in &loaded {
        let store = l.store.as_ref();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:?}", l.system)),
            &(),
            |b, ()| b.iter(|| run_query(query(14).text, store).expect("Q14 runs").len()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_descendant_axis,
    bench_subtree_walk,
    bench_query_effect
);
criterion_main!(benches);
