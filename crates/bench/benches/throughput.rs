//! Concurrent service throughput — the microbench behind Table 4.
//!
//! For the two native extremes (D: structural summary, G: embedded DOM)
//! at the `mini` scale, measure one closed-loop batch of the light query
//! mix through the worker pool at increasing pool sizes, plus the
//! single-threaded no-pool baseline for the same batch. The interesting
//! numbers are (a) pool-of-1 vs baseline — the channel + thread overhead
//! of the service layer itself — and (b) how batch time falls as workers
//! are added (on multi-core hosts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use xmark::prelude::*;

const MIX: [usize; 3] = [1, 6, 17];
const REQUESTS: usize = 12;

fn bench_service_throughput(c: &mut Criterion) {
    let session = Benchmark::at_scale("mini")
        .systems(&[SystemId::D, SystemId::G])
        .generate();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("service_batch");
    for &system in &[SystemId::D, SystemId::G] {
        let store: Arc<dyn XmlStore> = session.load_shared(system);

        // Baseline: the same batch, sequentially, no pool.
        group.bench_with_input(
            BenchmarkId::new(format!("{system:?}"), "sequential"),
            &store,
            |b, store| {
                b.iter(|| {
                    for i in 0..REQUESTS {
                        let q = query(MIX[i % MIX.len()]);
                        let compiled = compile(q.text, store.as_ref()).unwrap();
                        black_box(execute(&compiled, store.as_ref()).unwrap());
                    }
                })
            },
        );

        let mut pool_sizes = vec![1, 2, cores.max(2)];
        pool_sizes.dedup();
        for workers in pool_sizes {
            let service = QueryService::start(Arc::clone(&store), workers);
            group.bench_with_input(
                BenchmarkId::new(format!("{system:?}"), format!("{workers}workers")),
                &service,
                |b, service| b.iter(|| black_box(service.run_mix(&MIX, REQUESTS)).requests),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
