//! Figure 3 + §4.5 reproduction: document scaling and xmlgen efficiency.
//!
//! The paper's Fig. 3 maps scaling factors to document sizes (0.1 → 10 MB,
//! 1.0 → 100 MB, …); §4.5 claims xmlgen is linear-time, constant-memory
//! (< 2 MB) and produced 100 MB in 33.4 s on a 450 MHz Pentium III.
//!
//! ```text
//! cargo run --release -p xmark-bench --bin fig3_scaling [--max-factor 0.1]
//! ```

use std::io::Write;

use xmark::gen::{Generator, GeneratorConfig};
use xmark::prelude::SCALES;
use xmark_bench::TextTable;

/// An `io::Write` sink that counts bytes — generation is measured without
/// any buffering or disk cost, like the paper's elapsed-time figures.
struct CountingSink(u64);

impl Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    let max_factor = xmark_bench::factor_from_args(0.1);
    println!("== Fig. 3: scaling the benchmark document ==");
    println!("(paper: tiny 0.1 -> 10 MB, standard 1.0 -> 100 MB, large 10 -> 1 GB)\n");

    let mut table = TextTable::new(&[
        "Name", "Factor", "Nominal", "Bytes", "Size", "Elements", "Gen time", "MB/s",
    ]);

    let mut sizes: Vec<(f64, u64)> = Vec::new();
    for preset in SCALES {
        let (name, factor) = (preset.name, preset.factor);
        if factor > max_factor {
            continue;
        }
        let generator = Generator::new(GeneratorConfig::at_factor(factor));
        let mut sink = CountingSink(0);
        let start = std::time::Instant::now();
        let stats = generator.write(&mut sink).expect("sink write");
        let elapsed = start.elapsed();
        let mbps = stats.bytes as f64 / 1e6 / elapsed.as_secs_f64();
        table.row(vec![
            name.to_string(),
            format!("{factor}"),
            preset.nominal.to_string(),
            stats.bytes.to_string(),
            xmark_bench::human_bytes(stats.bytes as usize),
            stats.elements.to_string(),
            format!("{elapsed:.2?}"),
            format!("{mbps:.1}"),
        ]);
        sizes.push((factor, stats.bytes));
    }
    println!("{}", table.render());

    // Linearity check (the paper's "accurately scalable").
    if sizes.len() >= 2 {
        println!("linearity (bytes per unit factor):");
        for (factor, bytes) in &sizes {
            println!(
                "  factor {factor:<8} -> {:.1} MB / factor",
                *bytes as f64 / factor / 1e6
            );
        }
    }

    // Constant-resource claim: the generator state is the vocabulary plus
    // the open-tag stack; report it.
    let generator = Generator::new(GeneratorConfig::at_factor(1.0));
    let vocab_bytes: usize = (0..generator.vocabulary().len())
        .map(|i| generator.vocabulary().word(i).len() + 24)
        .sum();
    println!(
        "\nresident generator state (independent of factor): vocabulary ≈ {}, plus an O(depth) tag stack",
        xmark_bench::human_bytes(vocab_bytes)
    );
    println!("(paper §4.5: xmlgen requires less than 2 MB of main memory)");
}
