//! Figure 4 reproduction: all twenty queries on the embedded query
//! processor (System G) at 100 kB (factor 0.001) and 1 MB (factor 0.01).
//!
//! The paper could not run System G at factor 1.0 at all ("the embedded
//! System G failed to do so") and reports both series on a log axis, all
//! between ~2.5 s and ~1000 s. Our shape target: G is orders of magnitude
//! slower *per byte* than the mass-storage systems and its two series
//! differ by roughly the document-size ratio on data-bound queries.
//!
//! ```text
//! cargo run --release -p xmark-bench --bin fig4_embedded [--factor 0.01]
//! ```

use xmark::prelude::*;
use xmark_bench::TextTable;

fn main() {
    let large_factor = xmark_bench::factor_from_args(0.01);
    let small_factor = large_factor / 10.0;

    let small = Benchmark::at_factor(small_factor)
        .systems(&[SystemId::G])
        .queries(1..=20)
        .run();
    let large = Benchmark::at_factor(large_factor)
        .systems(&[SystemId::G])
        .queries(1..=20)
        .run();
    println!(
        "== Fig. 4: embedded System G at {} (factor {small_factor}) and {} (factor {large_factor}) ==\n",
        xmark_bench::human_bytes(small.document.xml.len()),
        xmark_bench::human_bytes(large.document.xml.len()),
    );

    let mut table = TextTable::new(&[
        "Query",
        "small doc (ms)",
        "large doc (ms)",
        "ratio",
        "items (large)",
    ]);
    let mut series_small = Vec::new();
    let mut series_large = Vec::new();
    for q in 1..=20 {
        let ms_ = small.measurement(SystemId::G, q).expect("measured");
        let ml = large.measurement(SystemId::G, q).expect("measured");
        let ratio = ml.total().as_secs_f64() / ms_.total().as_secs_f64().max(1e-9);
        table.row(vec![
            format!("Q{q}"),
            xmark_bench::ms(ms_.total()),
            xmark_bench::ms(ml.total()),
            format!("{ratio:.1}x"),
            ml.result_items.to_string(),
        ]);
        series_small.push(ms_.total());
        series_large.push(ml.total());
    }
    println!("{}", table.render());

    // ASCII rendition of the figure (log-ish scale like the paper's).
    println!("figure (one bar per query, log scale; #: large doc, .: small doc):");
    let max = series_large
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(f64::MIN, f64::max);
    for (i, (s, l)) in series_small.iter().zip(&series_large).enumerate() {
        let bar = |d: &std::time::Duration| -> usize {
            let v = d.as_secs_f64().max(1e-6);
            let frac = (v.ln() - 1e-6f64.ln()) / (max.ln() - 1e-6f64.ln());
            (frac * 50.0) as usize
        };
        println!("  Q{:<2} {}", i + 1, "#".repeat(bar(l)));
        println!("      {}", ".".repeat(bar(s)));
    }

    println!("\npaper's observation: on the 100 kB document no query took longer");
    println!("than 5 s but none was faster than 2.5 s — the embedded processor");
    println!("pays a large interpretive overhead regardless of query; the mass");
    println!("storage systems remain competitive only at much larger scales.");
}
