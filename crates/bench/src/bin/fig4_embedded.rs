//! Figure 4 reproduction: all twenty queries on the embedded query
//! processor (System G) at 100 kB (factor 0.001) and 1 MB (factor 0.01).
//!
//! The paper could not run System G at factor 1.0 at all ("the embedded
//! System G failed to do so") and reports both series on a log axis, all
//! between ~2.5 s and ~1000 s. Our shape target: G is orders of magnitude
//! slower *per byte* than the mass-storage systems and its two series
//! differ by roughly the document-size ratio on data-bound queries.
//!
//! A second section runs the same twenty queries on the disk-resident
//! backend H twice — once with a warm buffer pool, once freshly
//! cold-opened from its page file (no XML re-parse) — and reports the
//! buffer-pool counters (pages read/written, evictions, hit rate) for
//! each pass. `--smoke` shrinks the documents and asserts warm/cold
//! byte-identity so CI can run this binary in seconds.
//!
//! ```text
//! cargo run --release -p xmark-bench --bin fig4_embedded \
//!     [--factor 0.01] [--pool-pages 64] [--smoke]
//! ```

use xmark::prelude::*;
use xmark_bench::TextTable;

fn main() {
    let smoke = xmark_bench::has_flag("--smoke");
    let large_factor = xmark_bench::factor_from_args(if smoke { 0.002 } else { 0.01 });
    let small_factor = large_factor / 10.0;

    let small = Benchmark::at_factor(small_factor)
        .systems(&[SystemId::G])
        .queries(1..=20)
        .run();
    let large = Benchmark::at_factor(large_factor)
        .systems(&[SystemId::G])
        .queries(1..=20)
        .run();
    println!(
        "== Fig. 4: embedded System G at {} (factor {small_factor}) and {} (factor {large_factor}) ==\n",
        xmark_bench::human_bytes(small.document.xml.len()),
        xmark_bench::human_bytes(large.document.xml.len()),
    );

    let mut table = TextTable::new(&[
        "Query",
        "small doc (ms)",
        "large doc (ms)",
        "ratio",
        "items (large)",
    ]);
    let mut series_small = Vec::new();
    let mut series_large = Vec::new();
    for q in 1..=20 {
        let ms_ = small.measurement(SystemId::G, q).expect("measured");
        let ml = large.measurement(SystemId::G, q).expect("measured");
        let ratio = ml.total().as_secs_f64() / ms_.total().as_secs_f64().max(1e-9);
        table.row(vec![
            format!("Q{q}"),
            xmark_bench::ms(ms_.total()),
            xmark_bench::ms(ml.total()),
            format!("{ratio:.1}x"),
            ml.result_items.to_string(),
        ]);
        series_small.push(ms_.total());
        series_large.push(ml.total());
    }
    println!("{}", table.render());

    // ASCII rendition of the figure (log-ish scale like the paper's).
    println!("figure (one bar per query, log scale; #: large doc, .: small doc):");
    let max = series_large
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(f64::MIN, f64::max);
    for (i, (s, l)) in series_small.iter().zip(&series_large).enumerate() {
        let bar = |d: &std::time::Duration| -> usize {
            let v = d.as_secs_f64().max(1e-6);
            let frac = (v.ln() - 1e-6f64.ln()) / (max.ln() - 1e-6f64.ln());
            (frac * 50.0) as usize
        };
        println!("  Q{:<2} {}", i + 1, "#".repeat(bar(l)));
        println!("      {}", ".".repeat(bar(s)));
    }

    println!("\npaper's observation: on the 100 kB document no query took longer");
    println!("than 5 s but none was faster than 2.5 s — the embedded processor");
    println!("pays a large interpretive overhead regardless of query; the mass");
    println!("storage systems remain competitive only at much larger scales.");

    paged_section(large_factor, smoke);
}

/// Backend H on the large document: warm buffer pool vs cold open from
/// the page file, with the pool counters for each pass.
fn paged_section(factor: f64, smoke: bool) {
    let session = Benchmark::at_factor(factor)
        .systems(&[SystemId::H])
        .queries(1..=20)
        .generate();
    let pool_pages = xmark_bench::usize_flag("--pool-pages").unwrap_or(64);

    // Warm pass: scratch-load, run every query once to populate the
    // pool, then measure with the pool warm.
    let warm = session.load_paged(Some(pool_pages));
    for q in 1..=20 {
        measure_query(&warm, q);
    }
    let warm_base = warm.store.paged_stats().expect("H exposes pool stats");

    // Cold pass: persist to a page file, drop everything, re-open cold
    // (no XML parse) and measure straight off the empty pool.
    let path =
        xmark::store::paged::scratch_dir().join(format!("fig4-h-{}.pages", std::process::id()));
    let built = session
        .persist_paged(&path, Some(pool_pages))
        .expect("page file persists");
    let file_pages = built.num_pages();
    drop(built);
    let open_start = std::time::Instant::now();
    let cold = open_paged(&path, Some(pool_pages)).expect("page file re-opens");
    let open_time = open_start.elapsed();

    println!("\n== backend H (paged file, {pool_pages}-frame pool over {file_pages} pages) ==\n");
    println!(
        "cold open: {open_time:.2?} (header + catalog pages only, no XML re-parse); \
         warm bulkload: {:.2?}",
        warm.load_time
    );

    let mut table = TextTable::new(&["Query", "warm pool (ms)", "cold open (ms)", "items"]);
    let mut cold_outputs_match = true;
    for q in 1..=20 {
        let mw = measure_query(&warm, q);
        let mc = measure_query(&cold, q);
        if smoke
            && canonical_output(warm.store.as_ref(), q) != canonical_output(cold.store.as_ref(), q)
        {
            cold_outputs_match = false;
        }
        table.row(vec![
            format!("Q{q}"),
            xmark_bench::ms(mw.total()),
            xmark_bench::ms(mc.total()),
            mc.result_items.to_string(),
        ]);
    }
    println!("{}", table.render());

    let warm_stats = warm
        .store
        .paged_stats()
        .expect("H exposes pool stats")
        .since(&warm_base);
    let cold_stats = cold.store.paged_stats().expect("H exposes pool stats");
    for (label, s) in [("warm", &warm_stats), ("cold", &cold_stats)] {
        println!(
            "{label} pool: {} pages read, {} written, {} evictions, hit rate {:.1}%",
            s.pages_read,
            s.pages_written,
            s.evictions,
            s.hit_rate() * 100.0
        );
    }
    println!(
        "resident {} vs on-disk {} — the pool bounds memory while the \
         page + WAL files hold the database",
        xmark_bench::human_bytes(cold.store.size_bytes()),
        xmark_bench::human_bytes(cold.store.disk_bytes()),
    );

    drop(cold);
    let _ = std::fs::remove_file(path.with_extension("wal"));
    let _ = std::fs::remove_file(&path);

    if smoke {
        assert!(
            cold_outputs_match,
            "cold-opened H disagrees with the warm scratch load"
        );
        println!("\nsmoke: warm/cold byte-identity across Q1-Q20 asserted — OK");
    }
}
