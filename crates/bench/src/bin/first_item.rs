//! Time-to-first-item report (this reproduction's extension): what a
//! streaming client waits for its first result byte, per backend, next to
//! the full-materialization latency the paper's Table 3 reports.
//!
//! For each backend A–G and each serialization-heavy multi-item query
//! (Q13's australia-item reconstruction, Q14's filtered `//item` scan),
//! measure:
//!
//! * `execute` — the materializing contract: the whole `Sequence` is
//!   computed before the first byte can leave,
//! * `first item` — open a pull-based stream, produce exactly one
//!   serialized item, stop,
//! * `stream all` — drain the stream through `write_to` (sanity: must
//!   track `execute` + serialization, cursors add no real overhead).
//!
//! ```text
//! cargo run --release -p xmark-bench --bin first_item \
//!     [--factor 0.01] [--smoke]
//! ```
//!
//! `--smoke` runs a seconds-scale version and **asserts** the streamed
//! first item beats full materialization on at least one query per
//! backend — the CI guard for the pull-based executor's laziness.

use xmark::prelude::*;
use xmark_bench::TextTable;

const QUERIES: [usize; 2] = [13, 14];
const RUNS: usize = 5;

fn main() {
    let smoke = xmark_bench::has_flag("--smoke");
    let factor = xmark_bench::factor_from_args(if smoke { 0.002 } else { 0.01 });

    println!("== Time-to-first-item: streamed vs materialized (factor {factor}) ==\n");

    let doc = generate_document(factor);
    let mut table = TextTable::new(&[
        "system",
        "query",
        "items",
        "execute",
        "first item",
        "stream all",
        "speedup",
    ]);
    let mut wins = 0usize;
    let mut cells = 0usize;

    for system in SystemId::ALL {
        let loaded = load_system(system, &doc.xml);
        let store = loaded.store.as_ref();
        for number in QUERIES {
            let compiled = compile(query(number).text, store).unwrap();

            let (execute_time, items) = xmark_bench::best_of(RUNS, || {
                execute(&compiled, store).expect("query runs").len()
            });
            assert!(items > 1, "Q{number} must have a multi-item result");

            let (first_time, first_bytes) = xmark_bench::best_of(RUNS, || {
                let mut s = compiled.stream(store);
                let first = s.next_item().expect("non-empty").expect("query runs");
                let mut out = String::new();
                write_item(store, &first, &mut out).expect("String sink");
                out.len()
            });
            assert!(first_bytes > 0);

            let (stream_all_time, streamed_items) = xmark_bench::best_of(RUNS, || {
                let mut sink = String::new();
                compiled
                    .write_to(store, &mut sink)
                    .expect("stream runs")
                    .items
            });
            assert_eq!(streamed_items, items, "stream/execute cardinality split");

            let speedup = execute_time.as_secs_f64() / first_time.as_secs_f64().max(1e-9);
            cells += 1;
            if first_time < execute_time {
                wins += 1;
            }
            table.row(vec![
                format!("{system:?}"),
                format!("Q{number}"),
                items.to_string(),
                xmark_bench::ms(execute_time),
                xmark_bench::ms(first_time),
                xmark_bench::ms(stream_all_time),
                format!("{speedup:.1}x"),
            ]);
        }
    }

    println!("{}", table.render());
    println!(
        "\nstreamed first item beat full materialization on {wins}/{cells} \
         (system, query) cells"
    );

    if smoke {
        // The laziness guard: on at least one serialization-heavy query
        // the first streamed item must arrive before a full
        // materialization possibly could. One win suffices — tiny smoke
        // documents make sub-millisecond cells noisy.
        assert!(
            wins >= 1,
            "streamed first-item latency never beat full materialization \
             — the pull-based executor is not lazy"
        );
        // And laziness must never cost correctness: spot-check byte
        // identity on one backend here (the full oracle lives in
        // tests/streaming.rs).
        let loaded = load_system(SystemId::D, &doc.xml);
        let store = loaded.store.as_ref();
        for number in QUERIES {
            let compiled = compile(query(number).text, store).unwrap();
            let expected =
                serialize_sequence(store, &execute(&compiled, store).expect("query runs"));
            let mut sunk = String::new();
            compiled.write_to(store, &mut sunk).expect("stream runs");
            assert_eq!(sunk, expected, "Q{number} streamed bytes diverge");
        }
        println!("smoke: streaming laziness + byte identity asserted — OK");
    }
}
