//! Plan-invariant audit: verify Q1–Q20 × all 8 backends × both plan
//! modes and print the per-invariant matrix.
//!
//! Every (query, backend, mode) cell compiles the query and runs the
//! post-optimizer verifier ([`xmark::query::verify`]), which re-derives
//! each structural invariant of the physical algebra — access-path
//! capabilities, the IndexScan density gate, naive-plan purity, join-key
//! canonicalization, hoisted-filter liveness, Sort presence, cache
//! signatures, cardinality consistency and variable scoping — from the
//! live store and compares it with what the plan records. The exit code
//! is non-zero if any cell reports a violation, so CI can gate on it.
//!
//! ```text
//! cargo run --release -p xmark-bench --bin plan_audit [--factor F] [--smoke]
//! ```
//!
//! `--smoke` shrinks the document and audits one backend per storage
//! family (A, D, G, H) — the CI-speed subset; the matrix shape and the
//! zero-violation gate are identical.

use xmark::prelude::*;
use xmark::query::verify::Invariant;
use xmark::query::{parse_query, verify_plan_against, PlanMode, VerifyReport};
use xmark_bench::TextTable;

fn main() {
    let smoke = xmark_bench::has_flag("--smoke");
    let factor = xmark_bench::factor_from_args(if smoke { 0.002 } else { 0.01 });
    let systems: &[SystemId] = if smoke {
        &[SystemId::A, SystemId::D, SystemId::G, SystemId::H]
    } else {
        &SystemId::EXTENDED
    };
    let modes = [PlanMode::Optimized, PlanMode::Naive];

    println!(
        "== Plan-invariant audit: Q1-Q20 x {} backends x {{optimized, naive}} ==",
        systems.len()
    );
    println!("(factor {factor}; every plan re-checked against the live store)\n");

    let session = Benchmark::at_factor(factor).generate();

    // One aggregate report per (system, mode) column; the per-invariant
    // rows sum across all twenty queries.
    let mut total = VerifyReport::default();
    let mut columns: Vec<(SystemId, PlanMode, VerifyReport)> = Vec::new();
    for &system in systems {
        let loaded = session.load(system);
        let store = loaded.store.as_ref();
        for mode in modes {
            let mut column = VerifyReport::default();
            for q in &ALL_QUERIES {
                let parsed = parse_query(q.text)
                    .unwrap_or_else(|e| panic!("Q{} failed to parse: {e}", q.number));
                let compiled = xmark::query::compile::plan(&parsed, store, mode);
                let report = verify_plan_against(&parsed, &compiled.plan, store);
                for v in &report.violations {
                    println!("VIOLATION [{} Q{} {}] {v}", system, q.number, mode);
                }
                column.merge(&report);
            }
            total.merge(&column);
            columns.push((system, mode, column));
        }
    }

    let mut table = TextTable::new(&["Invariant", "Checks", "Violations"]);
    for inv in Invariant::ALL {
        table.row(vec![
            format!("{} {}", inv.code(), inv.name()),
            total.checks(inv).to_string(),
            total.violations_of(inv).to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut matrix = TextTable::new(&["Backend", "Mode", "Checks", "Violations"]);
    for (system, mode, column) in &columns {
        matrix.row(vec![
            system.to_string(),
            mode.to_string(),
            column.total_checks().to_string(),
            column.violations.len().to_string(),
        ]);
    }
    println!("{}", matrix.render());

    if total.is_clean() {
        println!(
            "clean: {} checks across {} plans, zero violations",
            total.total_checks(),
            columns.len() * ALL_QUERIES.len()
        );
    } else {
        println!(
            "FAILED: {} violation(s) across {} checks",
            total.violations.len(),
            total.total_checks()
        );
        std::process::exit(1);
    }
}
