//! Table 1 reproduction: bulkload times and database sizes for the six
//! mass-storage systems, plus the expat-style parse baseline quoted in §7
//! and a row for the disk-resident backend H (paged file + buffer pool).
//!
//! The Size column reports *resident* bytes — what the store actually
//! holds in memory. For A–F that is the whole database; for H it is the
//! buffer pool plus catalog, and the separate On-disk column shows the
//! page + WAL files, so H's small memory budget is not mistaken for a
//! small database.
//!
//! ```text
//! cargo run --release -p xmark-bench --bin table1_bulkload \
//!     [--factor 0.1] [--parse-only] [--pool-pages 256]
//! ```

use xmark::prelude::*;
use xmark_bench::TextTable;

fn main() {
    let factor = xmark_bench::factor_from_args(0.1);
    println!("== Table 1: database sizes and bulkload times (factor {factor}) ==\n");

    let session = Benchmark::at_factor(factor)
        .systems(&SystemId::MASS_STORAGE)
        .generate();
    println!(
        "benchmark document: {} ({} bytes, {} elements, depth {}), generated in {:?}",
        xmark_bench::human_bytes(session.xml().len()),
        session.stats().bytes,
        session.stats().elements,
        session.stats().max_depth,
        session.generation_time()
    );

    // §7's parse baseline: "it took the XML parser expat 4.9 seconds to
    // scan the benchmark document".
    let (scan_time, tokens) = xmark_bench::best_of(3, || {
        xmark::xml::parser::scan_only(session.xml()).expect("document scans")
    });
    println!("tokenizer scan baseline: {tokens} tokens in {scan_time:.2?} (no semantic actions)\n",);
    if xmark_bench::has_flag("--parse-only") {
        return;
    }

    let mut table = TextTable::new(&[
        "System",
        "Architecture",
        "Resident",
        "Res/doc",
        "On-disk",
        "Index",
        "Bulkload time",
        "Index build",
    ]);
    let pool_pages = xmark_bench::usize_flag("--pool-pages");
    let mut rows = session.load_all();
    rows.push(session.load_paged(pool_pages));
    for loaded in &rows {
        // The shared store-resident indexes build lazily; warm them here
        // (timed) so the Index column reports their real resident bytes —
        // now included in `size_bytes` rather than silently unaccounted.
        let store = loaded.store.as_ref();
        let index_start = std::time::Instant::now();
        store.indexes().build_all(store);
        let index_time = index_start.elapsed();
        let index_bytes = store.index_size_bytes();
        let disk = store.disk_bytes();
        table.row(vec![
            format!("{:?}", loaded.system).replace("System ", ""),
            loaded.system.architecture().to_string(),
            xmark_bench::human_bytes(store.size_bytes()),
            format!(
                "{:.2}x",
                store.size_bytes() as f64 / session.xml().len() as f64
            ),
            if disk == 0 {
                "-".to_string()
            } else {
                xmark_bench::human_bytes(disk)
            },
            xmark_bench::human_bytes(index_bytes),
            format!("{:.2?}", loaded.load_time),
            format!("{:.2?}", index_time),
        ]);
    }
    println!("{}", table.render());

    // Backend H's bulkload goes through the buffer pool; its counters
    // show how much page traffic the load generated.
    let h = rows.last().expect("H row was just pushed");
    let stats = h.store.paged_stats().expect("backend H exposes pool stats");
    println!(
        "H buffer pool after bulkload + index build ({} frame budget): \
         {} pages read, {} written, {} evictions, hit rate {:.1}%",
        pool_pages.unwrap_or(DEFAULT_POOL_PAGES),
        stats.pages_read,
        stats.pages_written,
        stats.evictions,
        stats.hit_rate() * 100.0
    );
    println!();

    println!("paper's Table 1 (factor 1.0, 550 MHz PIII) for shape comparison:");
    println!("  A 241 MB / 414 s   B 280 MB / 781 s   C 238 MB / 548 s");
    println!("  D 142 MB /  50 s   E 302 MB /  96 s   F 345 MB / 215 s");
    println!("\nshape expectations: native stores (D/E/F) load faster than the");
    println!("relational conversions (A/B/C); the fragmenting mapping (B) pays");
    println!("the most conversion work among the relational stores.");
}
