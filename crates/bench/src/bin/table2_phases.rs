//! Table 2 reproduction: compile-vs-execute split of Q1 and Q2 on the
//! three relational architectures (A, B, C).
//!
//! The paper reports four percentages per (query, system): compilation
//! CPU, compilation total, execution CPU, execution total. Our in-process
//! harness has no separate CPU accounting, so we report the wall-clock
//! split plus the *metadata access counts* — the quantity the paper uses
//! to explain the split ("System A has to access fewer metadata to compile
//! a query than System B, thus spending only half as much time on query
//! compilation").
//!
//! ```text
//! cargo run --release -p xmark-bench --bin table2_phases [--factor 0.05]
//! ```

use xmark::prelude::*;
use xmark_bench::TextTable;

fn main() {
    let factor = xmark_bench::factor_from_args(0.05);
    println!(
        "== Table 2: detailed timings of Q1 and Q2 for Systems A, B, C (factor {factor}) ==\n"
    );

    // The phase split needs custom best-of timing per phase, so keep the
    // session open instead of using the one-shot `run()`.
    let session = Benchmark::at_factor(factor)
        .systems(&[SystemId::A, SystemId::B, SystemId::C])
        .queries([1, 2])
        .generate();
    let loaded = session.load_all();

    let mut table = TextTable::new(&[
        "Query",
        "System",
        "Compile",
        "Execute",
        "Compile %",
        "Execute %",
        "Metadata accesses",
        "Catalog relations",
    ]);

    for &q in session.queries() {
        for l in &loaded {
            // Best-of-5 for each phase to de-noise the microsecond scale.
            let (compile_time, compiled) = xmark_bench::best_of(5, || {
                xmark::query::compile(query(q).text, l.store.as_ref()).expect("compiles")
            });
            let (execute_time, _result) = xmark_bench::best_of(3, || {
                xmark::query::execute(&compiled, l.store.as_ref()).expect("executes")
            });
            let total = compile_time + execute_time;
            let cpct = 100.0 * compile_time.as_secs_f64() / total.as_secs_f64();
            let relations = match l.system {
                SystemId::A => "2".to_string(), // node + attr
                SystemId::B => "hundreds (per-tag)".to_string(),
                SystemId::C => "entity tables + fragments".to_string(),
                _ => unreachable!("Table 2 covers A-C"),
            };
            table.row(vec![
                format!("Q{q}"),
                format!("{:?}", l.system).replace("System ", ""),
                xmark_bench::ms(compile_time) + " ms",
                xmark_bench::ms(execute_time) + " ms",
                format!("{cpct:.0}%"),
                format!("{:.0}%", 100.0 - cpct),
                compiled.stats.metadata_accesses.to_string(),
                relations,
            ]);
        }
    }
    println!("{}", table.render());

    println!("paper's Table 2 (totals) for shape comparison:");
    println!(
        "  Q1: A compile 25% / exec 75%   B compile 51% / exec 49%   C compile 29% / exec 71%"
    );
    println!(
        "  Q2: A compile 13% / exec 87%   B compile 20% / exec 80%   C compile 16% / exec 84%"
    );
    println!("\nshape expectations: B touches the most metadata per step (one");
    println!("relation per tag), so its compile share exceeds A's; C resolves");
    println!("steps against the small DTD-derived schema and compiles cheapest;");
    println!("execution dominates everywhere on the data-heavy Q2.");
}
