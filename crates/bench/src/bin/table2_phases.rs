//! Table 2 reproduction: the parse / plan / execute split of Q1 and Q2,
//! extended from the paper's three relational systems to all seven
//! backends.
//!
//! The paper reports compilation vs execution percentages per (query,
//! system) and explains them through metadata access counts ("System A
//! has to access fewer metadata to compile a query than System B, thus
//! spending only half as much time on query compilation"). With the
//! explicit plan layer, compilation itself splits into *parse* (text →
//! AST, backend-independent) and *plan* (metadata resolution +
//! optimization, the backend-dependent part the paper's explanation is
//! about), so the table shows three phases.
//!
//! ```text
//! cargo run --release -p xmark-bench --bin table2_phases \
//!     [--factor 0.05] [--smoke]
//! ```
//!
//! `--smoke` runs a seconds-scale version (tiny document, fewer repeats)
//! so CI exercises the three-phase timing path end to end.

use xmark::prelude::*;
use xmark_bench::TextTable;

fn main() {
    let smoke = xmark_bench::has_flag("--smoke");
    let factor = xmark_bench::factor_from_args(if smoke { 0.005 } else { 0.05 });
    let repeats = if smoke { 2 } else { 5 };
    println!(
        "== Table 2: parse/plan/execute split of Q1 and Q2 across all seven systems \
         (factor {factor}) ==\n"
    );

    // The phase split needs custom best-of timing per phase, so keep the
    // session open instead of using the one-shot `run()`.
    let session = Benchmark::at_factor(factor)
        .systems(&SystemId::ALL)
        .queries([1, 2])
        .generate();
    let loaded = session.load_all();

    let mut table = TextTable::new(&[
        "Query",
        "System",
        "Parse",
        "Plan",
        "Execute",
        "Compile %",
        "Execute %",
        "Metadata accesses",
        "Est. rows",
    ]);

    for &q in session.queries() {
        for l in &loaded {
            let text = query(q).text;
            // Best-of-N for each phase to de-noise the microsecond scale.
            let (parse_time, parsed) =
                xmark_bench::best_of(repeats, || xmark::query::parse_query(text).expect("parses"));
            let (plan_time, compiled) = xmark_bench::best_of(repeats, || {
                xmark::query::compile::plan(&parsed, l.store.as_ref(), PlanMode::Optimized)
            });
            let (execute_time, _result) = xmark_bench::best_of(repeats.min(3), || {
                xmark::query::execute(&compiled, l.store.as_ref()).expect("executes")
            });
            let compile_time = parse_time + plan_time;
            let total = compile_time + execute_time;
            let cpct = 100.0 * compile_time.as_secs_f64() / total.as_secs_f64();
            table.row(vec![
                format!("Q{q}"),
                format!("{:?}", l.system).replace("System ", ""),
                xmark_bench::ms(parse_time) + " ms",
                xmark_bench::ms(plan_time) + " ms",
                xmark_bench::ms(execute_time) + " ms",
                format!("{cpct:.0}%"),
                format!("{:.0}%", 100.0 - cpct),
                compiled.stats.metadata_accesses.to_string(),
                compiled.stats.estimated_rows.to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    println!("paper's Table 2 (totals) for shape comparison:");
    println!(
        "  Q1: A compile 25% / exec 75%   B compile 51% / exec 49%   C compile 29% / exec 71%"
    );
    println!(
        "  Q2: A compile 13% / exec 87%   B compile 20% / exec 80%   C compile 16% / exec 84%"
    );
    println!("\nshape expectations: parse time is backend-independent; B touches");
    println!("the most metadata per step (one relation per tag), so its plan");
    println!("share exceeds A's; C resolves steps against the small DTD-derived");
    println!("schema and plans cheapest of the relational trio; D/E plan against");
    println!("exact summary/extent statistics; F and G have no statistics and");
    println!("plan generically; execution dominates on the data-heavy Q2.");

    if smoke {
        println!("\nsmoke: three-phase timing exercised across all seven backends — OK");
    }
}
