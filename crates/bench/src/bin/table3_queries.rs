//! Table 3 reproduction: the thirteen reported queries (Q1–Q3, Q5–Q12,
//! Q17, Q20) across all six mass-storage systems, in milliseconds.
//!
//! `--extra` additionally reproduces two in-text observations:
//! the Q15/Q16 ratio ("Systems A, B and C needed about 8 times longer to
//! execute Q16 than … Q15") and Q10's output volume.
//!
//! ```text
//! cargo run --release -p xmark-bench --bin table3_queries [--factor 0.05] [--extra]
//! ```

use xmark::prelude::*;
use xmark_bench::TextTable;

fn main() {
    let factor = xmark_bench::factor_from_args(0.05);
    println!("== Table 3: query performance in ms (factor {factor}) ==\n");

    let report = Benchmark::at_factor(factor)
        .systems(&SystemId::MASS_STORAGE)
        .queries(TABLE3_QUERIES)
        .warmups(1)
        .run();
    println!(
        "document: {} — measured {} queries on six stores",
        xmark_bench::human_bytes(report.document.xml.len()),
        report.queries.len()
    );

    let mut header = vec!["Query".to_string()];
    header.extend(report.systems().map(|s| format!("{s:?}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);

    for &q in &report.queries {
        let mut row = vec![format!("Q {q}")];
        for system in report.systems() {
            let m = report.measurement(system, q).expect("measured");
            row.push(xmark_bench::ms(m.total()));
        }
        table.row(row);
    }
    println!("{}", table.render());

    println!("paper's Table 3 (factor 1.0, ms) for shape comparison:");
    println!("  Q1   A 689  B 784  C 257  D 120  E 1597  F 2814");
    println!("  Q3   A 41030  B 6389  C 1942  D 3900  E 4630  F 8074");
    println!("  Q6   A 293  B 331  C 509  D 10  E 336  F 508");
    println!("  Q10  A 3414285  B 86886  C 1568  D 22000  E 54721  F 69422");
    println!("  Q11  A 205675  B 2551760  C 2533738  D 8700  E 602223  F 741730");
    println!("\nshape expectations: D wins Q6/Q7 outright (structural summary);");
    println!("C wins Q2/Q3 (positional bidder index from the DTD schema);");
    println!("Q10-Q12 dominate every system's column; F trails E (no indexes).");

    if !xmark_bench::has_flag("--extra") {
        return;
    }

    println!("\n== §7 in-text observations (--extra) ==\n");

    // Q15 vs Q16 on the relational systems: the report's stores are still
    // loaded, so the follow-up measurements reuse them.
    let mut extra = TextTable::new(&["System", "Q15 (ms)", "Q16 (ms)", "Q16/Q15"]);
    for l in report.loads.iter().take(3) {
        let m15 = measure_query(l, 15);
        let m16 = measure_query(l, 16);
        let ratio = m16.total().as_secs_f64() / m15.total().as_secs_f64().max(1e-9);
        extra.row(vec![
            format!("{:?}", l.system).replace("System ", ""),
            xmark_bench::ms(m15.total()),
            xmark_bench::ms(m16.total()),
            format!("{ratio:.1}x"),
        ]);
    }
    println!("{}", extra.render());
    println!("(paper: A-C needed about 8x longer for Q16 than for Q15)\n");

    // Q10 output volume.
    let m10 = measure_query(&report.loads[3], 10);
    println!(
        "Q10 output: {} across {} items (paper: >10 MB of unindented XML at factor 1.0)",
        xmark_bench::human_bytes(m10.result_bytes),
        m10.result_items
    );
}
