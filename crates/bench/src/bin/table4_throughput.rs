//! Table 4 (this reproduction's extension): aggregate throughput of the
//! concurrent query service, per backend, as the worker pool grows.
//!
//! The paper stops at single-user latency (Table 3). Table 4 answers the
//! production question instead: with one loaded store shared by N worker
//! threads serving a closed-loop mix of the Table 3 queries, how many
//! queries per second does each architecture sustain, and what do the
//! tail latencies look like?
//!
//! ```text
//! cargo run --release -p xmark-bench --bin table4_throughput \
//!     [--factor 0.01] [--requests 104] [--write-pct 20] [--smoke]
//! ```
//!
//! `--smoke` runs a seconds-scale version (tiny document, two pool sizes,
//! a three-query mix) so CI exercises the whole service layer end to end.
//!
//! `--write-pct N` adds a mixed closed loop: the same reader pool drains
//! the query mix from MVCC snapshots while a writer lane commits roughly
//! N structural updates per 100 reads through [`VersionedStore`]. The
//! report adds reader p50/p95/p99 under write pressure next to the
//! read-only baseline, plus writer commit-latency percentiles. Under
//! `--smoke` it asserts the isolation contract: readers never observe a
//! torn subtree (same-epoch results must be identical — the service
//! panics otherwise) and reader p95 stays within 1.5x of read-only p95.

use std::sync::Arc;

use xmark::prelude::*;
use xmark_bench::TextTable;

fn worker_sweep(max: usize) -> Vec<usize> {
    // 1, 2, 4, … up to the core count (always reaching at least 4 so the
    // scaling shape is visible even on small machines).
    let cap = max.max(4);
    let mut sweep = Vec::new();
    let mut w = 1;
    while w < cap {
        sweep.push(w);
        w *= 2;
    }
    sweep.push(cap);
    sweep
}

fn main() {
    let smoke = xmark_bench::has_flag("--smoke");
    let factor = xmark_bench::factor_from_args(if smoke { 0.001 } else { 0.01 });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = if smoke {
        vec![1, 2]
    } else {
        worker_sweep(cores)
    };
    let mix: Vec<usize> = if smoke {
        vec![1, 6, 17]
    } else {
        TABLE3_QUERIES.to_vec()
    };
    let requests =
        xmark_bench::usize_flag("--requests").unwrap_or(if smoke { 12 } else { mix.len() * 8 });

    println!(
        "== Table 4: concurrent throughput (factor {factor}, {} detected core(s), \
         {} requests/cell, mix of {} queries) ==\n",
        cores,
        requests,
        mix.len()
    );

    let session = Benchmark::at_factor(factor)
        .queries(mix.iter().copied())
        .generate();
    println!(
        "document: {}\n",
        xmark_bench::human_bytes(session.xml().len())
    );

    let mut header = vec!["System".to_string()];
    header.extend(sweep.iter().map(|w| format!("{w}w QPS")));
    header.push("p95 @max".to_string());
    header.push("ttfi p95".to_string());
    header.push("scale 1→max".to_string());
    header.push("cache hit".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);

    for system in SystemId::ALL {
        let store: Arc<dyn XmlStore> = session.load_shared(system);
        let mut row = vec![format!("{system}")];
        let mut first_qps = 0.0;
        let mut last: Option<ThroughputReport> = None;
        for &workers in &sweep {
            let service = QueryService::start(Arc::clone(&store), workers);
            let report = service.run_mix(&mix, requests);
            if workers == sweep[0] {
                first_qps = report.qps();
            }
            row.push(format!("{:.0}", report.qps()));
            last = Some(report);
        }
        let last = last.expect("sweep is non-empty");
        let worst_p95 = last
            .per_query
            .iter()
            .map(|s| s.p95)
            .max()
            .unwrap_or_default();
        row.push(xmark_bench::ms(worst_p95));
        // Time-to-first-item at the same pool size: what a streaming
        // client waits before its first byte (workers serialize straight
        // into sinks, so this is far below p95 on large-result queries).
        let worst_ttfi = last
            .per_query
            .iter()
            .map(|s| s.ttfi_p95)
            .max()
            .unwrap_or_default();
        row.push(xmark_bench::ms(worst_ttfi));
        row.push(format!("{:.2}x", last.qps() / first_qps.max(1e-12)));
        row.push(format!("{:.0}%", last.plan_cache_hit_rate() * 100.0));
        table.row(row);
    }
    println!("{}", table.render());

    println!(
        "(closed loop: the first request per distinct query compiles and\n\
         caches its plan, every later one executes the cached plan; 'scale'\n\
         is QPS at the largest pool over QPS at 1 worker — expect ~linear\n\
         scaling up to the physical core count, and ~1x on a single core)"
    );

    // ---- plan cache A/B: cached vs cold parse+plan per request ----------
    // A repeated-query mix on one representative backend, same worker
    // count, same store: the only difference is the plan cache.
    let cache_mix = vec![1usize, 17];
    let cache_requests = requests.max(cache_mix.len() * 10);
    let store: Arc<dyn XmlStore> = session.load_shared(SystemId::D);
    let best_qps = |service: &QueryService| -> (f64, f64) {
        // Best of three runs; the first run also warms the cache.
        let mut qps: f64 = 0.0;
        let mut hit_rate = 0.0;
        for _ in 0..3 {
            let report = service.run_mix(&cache_mix, cache_requests);
            if report.qps() > qps {
                qps = report.qps();
                hit_rate = report.plan_cache_hit_rate();
            }
        }
        (qps, hit_rate)
    };
    let cold_service = QueryService::start_with_cache(Arc::clone(&store), sweep[0], 0);
    let (cold_qps, _) = best_qps(&cold_service);
    drop(cold_service);
    let warm_service = QueryService::start(store, sweep[0]);
    let (warm_qps, warm_hits) = best_qps(&warm_service);
    drop(warm_service);
    let speedup = warm_qps / cold_qps.max(1e-12);
    println!(
        "\nplan cache A/B (System D, {} worker(s), repeated mix {:?}, {} requests):\n\
         \x20 cold parse+plan per request: {cold_qps:.0} QPS\n\
         \x20 cached physical plans:       {warm_qps:.0} QPS ({:.0}% hits)\n\
         \x20 speedup: {speedup:.2}x",
        sweep[0],
        cache_mix,
        cache_requests,
        warm_hits * 100.0,
    );

    // ---- index A/B: persistent vs per-execution join builds -------------
    // Q8 (decorrelated IndexLookup) and Q9 (hash join) on one backend,
    // same worker count, same store: the only difference is whether the
    // IndexManager persists the join-side value indexes and path
    // materializations across requests (warm) or every execution rebuilds
    // them (cold — the pre-index-layer behavior, per-execution memos
    // still in place). Runs on its own join-scale document: at the smoke
    // factor the per-request fixed costs (channel, timing) would drown
    // the build share this A/B isolates.
    let join_mix = vec![8usize, 9];
    let join_factor = if smoke { 0.01 } else { factor.max(0.01) };
    let join_session = Benchmark::at_factor(join_factor)
        .queries(join_mix.iter().copied())
        .generate();
    let join_requests = join_requests_for(requests, &join_mix);
    let store: Arc<dyn XmlStore> = join_session.load_shared(SystemId::A);
    let service = QueryService::start(Arc::clone(&store), sweep[0]);
    let index_build_time = service.build_indexes();
    // One untimed warm pass first: it performs the join-side value-index
    // builds, so every measured warm round (and the zero-rebuild
    // assertion below) sees a fully warm store. Then interleave the two
    // modes (cold, warm, cold, warm, …) and keep the best run of each,
    // so machine drift between phases cannot bias the ratio either way.
    service.run_mix(&join_mix, join_mix.len());
    let mut cold: Option<ThroughputReport> = None;
    let mut warm: Option<ThroughputReport> = None;
    for _ in 0..7 {
        for (persistent, slot) in [(false, &mut cold), (true, &mut warm)] {
            store.indexes().set_persistent(persistent);
            let report = service.run_mix(&join_mix, join_requests);
            if slot.as_ref().is_none_or(|b| report.qps() > b.qps()) {
                *slot = Some(report);
            }
        }
    }
    store.indexes().set_persistent(true);
    let (cold, warm) = (cold.expect("seven rounds"), warm.expect("seven rounds"));
    let index_speedup = warm.qps() / cold.qps().max(1e-12);
    println!(
        "\nindex A/B (System A, factor {join_factor}, {} worker(s), mix {:?}, \
         {} requests, element+id warmup {index_build_time:.2?}):\n\
         \x20 cold per-execution join builds: {:.0} QPS ({} index builds)\n\
         \x20 warm persistent value indexes:  {:.0} QPS ({} builds, {} hits)\n\
         \x20 speedup: {index_speedup:.2}x",
        sweep[0],
        join_mix,
        join_requests,
        cold.qps(),
        cold.index_builds,
        warm.qps(),
        warm.index_builds,
        warm.index_hits,
    );

    // ---- batched drain A/B: vectorized vs item-at-a-time pulls ----------
    // The same compiled plans, the same store, the same drain loop — the
    // only difference is the stream's batch capacity. Best-of-five per
    // side so scheduler noise cannot fake a regression.
    let batch_mix = [1usize, 17];
    let store: Arc<dyn XmlStore> = session.load_shared(SystemId::D);
    let batch_plans: Vec<_> = batch_mix
        .iter()
        .map(|&n| compile(query(n).text, store.as_ref()).expect("mix query compiles"))
        .collect();
    for plan in &batch_plans {
        let _ = execute(plan, store.as_ref()).expect("warmup run"); // warm value slots
    }
    let rounds = if smoke { 40 } else { 200 };
    let drain_mix = |cap: usize| -> std::time::Duration {
        let mut best = std::time::Duration::MAX;
        for _ in 0..5 {
            let start = std::time::Instant::now();
            for _ in 0..rounds {
                for plan in &batch_plans {
                    let n = std::hint::black_box(
                        plan.stream(store.as_ref())
                            .with_batch_size(cap)
                            .collect_seq()
                            .expect("mix query streams"),
                    )
                    .len();
                    assert!(n > 0, "mix queries have non-empty results");
                }
            }
            best = best.min(start.elapsed());
        }
        best
    };
    let item_time = drain_mix(1);
    let batched_time = drain_mix(xmark::query::plan::DEFAULT_BATCH);
    let batch_ratio = item_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-12);
    println!(
        "\nbatched drain A/B (System D, mix {:?}, {} rounds, best of 5):\n\
         \x20 item-at-a-time (capacity 1):   {item_time:.2?}\n\
         \x20 batched (capacity {}):        {batched_time:.2?}\n\
         \x20 speedup: {batch_ratio:.2}x",
        batch_mix,
        rounds,
        xmark::query::plan::DEFAULT_BATCH,
    );

    // ---- mixed read/write closed loop (--write-pct N) -------------------
    if let Some(write_pct) = xmark_bench::usize_flag("--write-pct") {
        run_mixed_loop(
            &session,
            &mix,
            requests,
            write_pct,
            *sweep.last().expect("non-empty"),
            smoke,
        );
    }

    if smoke {
        assert!(
            batch_ratio >= 0.95,
            "the batched drain must be no slower than item-at-a-time on \
             the [Q1,Q17] mix (measured {batch_ratio:.2}x, >=0.95x after \
             noise allowance)"
        );
        assert!(
            speedup >= 1.2,
            "plan cache must lift QPS by >=1.2x on a repeated-query mix \
             (measured {speedup:.2}x)"
        );
        assert_eq!(
            warm.index_builds, 0,
            "a warm service must serve Q8/Q9 with zero index rebuilds"
        );
        assert!(
            index_speedup >= 1.3,
            "warm-index Q8/Q9 serving must beat cold per-execution builds \
             by >=1.3x (measured {index_speedup:.2}x)"
        );
        println!(
            "\nsmoke: service layer + plan cache + persistent indexes + batched drains exercised \
             across all seven backends — OK"
        );
    }
}

/// Enough requests that each A/B run spans a measurable wall time on a
/// single core: at least fifty rounds of the mix.
fn join_requests_for(requests: usize, mix: &[usize]) -> usize {
    requests.max(mix.len() * 50)
}

/// The `--write-pct` mixed closed loop: readers drain the query mix from
/// pinned MVCC snapshots while a writer lane commits structural updates
/// (insert a bidder / delete it again, round-robin over the open
/// auctions) through a [`VersionedStore`] over System A.
fn run_mixed_loop(
    session: &Session,
    mix: &[usize],
    requests: usize,
    write_pct: usize,
    workers: usize,
    smoke: bool,
) {
    let versioned = VersionedStore::new(session.load_shared(SystemId::A));
    let service = QueryService::start_source(
        Arc::clone(&versioned) as Arc<dyn xmark::store::StoreSource>,
        workers,
        DEFAULT_PLAN_CACHE,
    );
    let auctions: Vec<_> = {
        let s = versioned.snapshot();
        s.descendants_named_iter(s.root(), "open_auction").collect()
    };
    let baseline_bidders = {
        let s = versioned.snapshot();
        s.count_descendants_named(s.root(), "bidder")
    };

    // Read-only baseline, best of three, worst p95 across the mix.
    let worst_p95 = |report: &ThroughputReport| {
        report
            .per_query
            .iter()
            .map(|s| s.p95)
            .max()
            .unwrap_or_default()
    };
    let read_only_p95 = (0..3)
        .map(|_| worst_p95(&service.run_mix(mix, requests)))
        .min()
        .expect("three baseline runs");

    // The writer lane: even calls append a fresh bidder to the next
    // auction, odd calls delete it again, so the document stays bounded
    // and the final state is checkable (the parity invariant).
    let mut calls = 0usize;
    let mut pending_delete: Option<xmark::store::Node> = None;
    let mut write = || -> Option<std::time::Duration> {
        let start = std::time::Instant::now();
        let mut txn = versioned.begin();
        match pending_delete.take() {
            Some(auction) => {
                let s = versioned.snapshot();
                let bidder = s
                    .children_named_iter(auction, "bidder")
                    .last()
                    .expect("the bidder inserted by the previous call");
                txn.delete_subtree(bidder);
            }
            None => {
                let auction = auctions[(calls / 2) % auctions.len()];
                txn.insert_subtree(
                    auction,
                    "<bidder><date>28/07/2026</date><time>12:00:00</time>\
                     <personref person=\"person0\"/><increase>4.50</increase></bidder>",
                );
                pending_delete = Some(auction);
            }
        }
        calls += 1;
        txn.commit().expect("writer lane commit");
        Some(start.elapsed())
    };

    // Mixed run, best of three by reader p95; commits accumulate.
    let mut best: Option<MixedReport> = None;
    for _ in 0..3 {
        let report = service.run_mixed(mix, requests, write_pct as u32, &mut write);
        if best
            .as_ref()
            .is_none_or(|b| worst_p95(&report.read) < worst_p95(&b.read))
        {
            best = Some(report);
        }
    }
    let best = best.expect("three mixed runs");
    let mixed_p95 = worst_p95(&best.read);

    println!(
        "\nmixed read/write closed loop (System A via MVCC snapshots, {workers} worker(s), \
         ~{write_pct} writes per 100 reads, best of 3):"
    );
    for s in &best.read.per_query {
        println!(
            "  Q{:<2} reader p50 {} / p95 {} / p99 {}  ({} requests)",
            s.query,
            xmark_bench::ms(s.p50),
            xmark_bench::ms(s.p95),
            xmark_bench::ms(s.p99),
            s.count,
        );
    }
    println!(
        "  writer: {} commit(s) in the best round, p50 {} / p95 {} / max {}\n\
         \x20 reader p95 worst-of-mix: {} read-only vs {} mixed ({:.2}x); \
         {} snapshot epoch(s) observed",
        best.commits,
        xmark_bench::ms(best.commit_p50),
        xmark_bench::ms(best.commit_p95),
        xmark_bench::ms(best.commit_max),
        xmark_bench::ms(read_only_p95),
        xmark_bench::ms(mixed_p95),
        mixed_p95.as_secs_f64() / read_only_p95.as_secs_f64().max(1e-12),
        best.epochs_observed,
    );

    // Parity invariant: every insert not yet paired with its delete is
    // still visible, everything else left the document unchanged.
    let expected = baseline_bidders + usize::from(pending_delete.is_some());
    let s = versioned.snapshot();
    assert_eq!(
        s.count_descendants_named(s.root(), "bidder"),
        expected,
        "writer-lane parity: inserts and deletes must pair up"
    );

    if smoke {
        assert!(
            best.commits > 0,
            "the writer lane must commit under --smoke"
        );
        assert!(
            best.epochs_observed >= 2,
            "readers must overlap at least one commit (saw {} epochs)",
            best.epochs_observed
        );
        // Readers pin snapshots and never block on the writer: write
        // pressure may cost cache misses, not contention stalls. (Torn
        // reads are covered by the service's same-epoch result check,
        // which panics inside run_mixed.)
        assert!(
            mixed_p95.as_secs_f64() <= 1.5 * read_only_p95.as_secs_f64().max(1e-9),
            "reader p95 under write pressure ({}) exceeded 1.5x the \
             read-only baseline ({})",
            xmark_bench::ms(mixed_p95),
            xmark_bench::ms(read_only_p95),
        );
        println!(
            "smoke: mixed loop OK — snapshot isolation held, readers \
             stayed within 1.5x of the read-only baseline"
        );
    }
}
