//! Table 4 (this reproduction's extension): aggregate throughput of the
//! concurrent query service, per backend, as the worker pool grows.
//!
//! The paper stops at single-user latency (Table 3). Table 4 answers the
//! production question instead: with one loaded store shared by N worker
//! threads serving a closed-loop mix of the Table 3 queries, how many
//! queries per second does each architecture sustain, and what do the
//! tail latencies look like?
//!
//! ```text
//! cargo run --release -p xmark-bench --bin table4_throughput \
//!     [--factor 0.01] [--requests 104] [--shards 4] [--write-pct 20] [--smoke]
//! ```
//!
//! `--smoke` runs a seconds-scale version (tiny document, two pool sizes,
//! a three-query mix) so CI exercises the whole service layer end to end.
//!
//! `--shards N` sets the top of the scale-out sweep: the same mix is
//! served from sharded union deployments of 1, 2, …, N entity shards
//! (System A in-memory, System H with one cold-opened page file and a
//! fixed **per-shard** frame budget per shard — scale-out adds memory
//! with machines). Shard-parallel plans scatter one thread per shard
//! part and merge; under `--smoke` the sweep asserts the sharded H
//! deployment beats (multi-core) or stays near (single-core guard) the
//! one-shard baseline.
//!
//! `--write-pct N` adds a mixed closed loop: the same reader pool drains
//! the query mix from MVCC snapshots while a writer lane commits roughly
//! N structural updates per 100 reads through [`VersionedStore`]. The
//! report adds reader p50/p95/p99 under write pressure next to the
//! read-only baseline, plus writer commit-latency percentiles. Under
//! `--smoke` it asserts the isolation contract: readers never observe a
//! torn subtree (same-epoch results must be identical — the service
//! panics otherwise) and reader p95 stays within 1.5x of read-only p95.
//! The same write percentage drives the LRU-vs-CLOCK page-replacer A/B
//! on a frame-constrained System H pool (default 20 when the flag is
//! absent), so the replacement policy is always compared under write
//! pressure.
//!
//! Every run also emits `BENCH_table4.json`: the worker-sweep cells
//! (QPS, worst-of-mix p50/p95/p99, plan-cache and index counters), the
//! shard sweep (QPS + pool hit rate per shard count), and the replacer
//! A/B — a machine-readable baseline CI can diff.

use std::sync::Arc;

use xmark::prelude::*;
use xmark_bench::TextTable;

fn worker_sweep(max: usize) -> Vec<usize> {
    // 1, 2, 4, … up to the core count (always reaching at least 4 so the
    // scaling shape is visible even on small machines).
    let cap = max.max(4);
    let mut sweep = Vec::new();
    let mut w = 1;
    while w < cap {
        sweep.push(w);
        w *= 2;
    }
    sweep.push(cap);
    sweep
}

fn main() {
    let smoke = xmark_bench::has_flag("--smoke");
    let factor = xmark_bench::factor_from_args(if smoke { 0.001 } else { 0.01 });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = if smoke {
        vec![1, 2]
    } else {
        worker_sweep(cores)
    };
    let mix: Vec<usize> = if smoke {
        vec![1, 6, 17]
    } else {
        TABLE3_QUERIES.to_vec()
    };
    let requests =
        xmark_bench::usize_flag("--requests").unwrap_or(if smoke { 12 } else { mix.len() * 8 });

    println!(
        "== Table 4: concurrent throughput (factor {factor}, {} detected core(s), \
         {} requests/cell, mix of {} queries) ==\n",
        cores,
        requests,
        mix.len()
    );

    let session = Benchmark::at_factor(factor)
        .queries(mix.iter().copied())
        .generate();
    println!(
        "document: {}\n",
        xmark_bench::human_bytes(session.xml().len())
    );

    let mut header = vec!["System".to_string()];
    header.extend(sweep.iter().map(|w| format!("{w}w QPS")));
    header.push("p95 @max".to_string());
    header.push("ttfi p95".to_string());
    header.push("scale 1→max".to_string());
    header.push("cache hit".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);

    let mut json_cells: Vec<String> = Vec::new();
    for system in SystemId::ALL {
        let store: Arc<dyn XmlStore> = session.load_shared(system);
        let mut row = vec![format!("{system}")];
        let mut first_qps = 0.0;
        let mut last: Option<ThroughputReport> = None;
        for &workers in &sweep {
            let service = QueryService::start(Arc::clone(&store), workers);
            let report = service.run_mix(&mix, requests);
            if workers == sweep[0] {
                first_qps = report.qps();
            }
            row.push(format!("{:.0}", report.qps()));
            json_cells.push(cell_json(&format!("{system}"), workers, 1, &report, None));
            last = Some(report);
        }
        let last = last.expect("sweep is non-empty");
        let worst_p95 = last
            .per_query
            .iter()
            .map(|s| s.p95)
            .max()
            .unwrap_or_default();
        row.push(xmark_bench::ms(worst_p95));
        // Time-to-first-item at the same pool size: what a streaming
        // client waits before its first byte (workers serialize straight
        // into sinks, so this is far below p95 on large-result queries).
        let worst_ttfi = last
            .per_query
            .iter()
            .map(|s| s.ttfi_p95)
            .max()
            .unwrap_or_default();
        row.push(xmark_bench::ms(worst_ttfi));
        row.push(format!("{:.2}x", last.qps() / first_qps.max(1e-12)));
        row.push(format!("{:.0}%", last.plan_cache_hit_rate() * 100.0));
        table.row(row);
    }
    println!("{}", table.render());

    println!(
        "(closed loop: the first request per distinct query compiles and\n\
         caches its plan, every later one executes the cached plan; 'scale'\n\
         is QPS at the largest pool over QPS at 1 worker — expect ~linear\n\
         scaling up to the physical core count, and ~1x on a single core)"
    );

    // ---- shard sweep (--shards N): scatter-gather scale-out -------------
    // The same document partitioned over 1, 2, …, N entity shards plus
    // the global head, served by the same worker pool with request
    // batching. System A shards are in-memory (the sweep isolates the
    // scatter/merge overhead and the multi-core win); System H shards are
    // per-shard page files opened **cold** with a fixed frame budget per
    // shard — a scale-out deployment adds buffer-pool memory with every
    // machine, so the sharded aggregate hit rate beats one frame-starved
    // monolithic pool even on a single core.
    let max_shards = xmark_bench::usize_flag("--shards").unwrap_or(if smoke { 2 } else { 4 });
    let mut shard_counts = vec![1usize];
    let mut next_shards = 2;
    while next_shards <= max_shards {
        shard_counts.push(next_shards);
        next_shards *= 2;
    }
    let shard_workers = *sweep.last().expect("non-empty sweep");
    const SHARD_POOL: usize = 12; // frames per shard node
    let shard_batch = mix.len().max(2);
    println!(
        "\nshard sweep (counts {shard_counts:?}, {shard_workers} worker(s), batches of \
         {shard_batch}, H pool {SHARD_POOL} frames/shard):"
    );
    let mut shard_table = TextTable::new(&["System", "shards", "QPS", "worst p95", "pool hit"]);
    let mut h_shard_qps: Vec<(usize, f64)> = Vec::new();
    for system in [SystemId::A, SystemId::H] {
        for &shards in &shard_counts {
            let store: Arc<dyn XmlStore> = match (system, shards) {
                (SystemId::H, 1) => Arc::from(session.load_paged(Some(SHARD_POOL)).store),
                (SystemId::H, n) => {
                    Arc::from(session.load_sharded_paged(n, Some(SHARD_POOL)).store)
                }
                (_, 1) => session.load_shared(system),
                (_, n) => session.load_sharded_shared(system, n),
            };
            let service = QueryService::start(Arc::clone(&store), shard_workers);
            service.run_mix_batched(&mix, mix.len(), shard_batch); // warm plans + indexes
            let pool_before = store.paged_stats();
            let mut best: Option<ThroughputReport> = None;
            for _ in 0..3 {
                let report = service.run_mix_batched(&mix, requests, shard_batch);
                if best.as_ref().is_none_or(|b| report.qps() > b.qps()) {
                    best = Some(report);
                }
            }
            let report = best.expect("three sweep rounds");
            // Hit rate over the measured runs only — bulkload pins would
            // otherwise drown the steady-state signal.
            let pool_hit = store.paged_stats().zip(pool_before).map(|(after, before)| {
                let (h, m) = (after.hits - before.hits, after.misses - before.misses);
                h as f64 / (h + m).max(1) as f64
            });
            shard_table.row(vec![
                format!("{system}"),
                format!("{shards}"),
                format!("{:.0}", report.qps()),
                xmark_bench::ms(worst_of_mix(&report, |s| s.p95)),
                pool_hit.map_or("-".to_string(), |h| format!("{:.0}%", h * 100.0)),
            ]);
            json_cells.push(cell_json(
                &format!("{system}"),
                shard_workers,
                shards,
                &report,
                pool_hit,
            ));
            if system == SystemId::H {
                h_shard_qps.push((shards, report.qps()));
            }
        }
    }
    println!("{}", shard_table.render());
    let shard_scaling = {
        let (_, one) = h_shard_qps.first().copied().expect("sweep has 1 shard");
        let (top, best) = h_shard_qps.last().copied().expect("sweep non-empty");
        let ratio = best / one.max(1e-12);
        println!(
            "(H scale-out: {top} shard(s) at {ratio:.2}x the one-shard QPS — each shard \
             brings its own {SHARD_POOL}-frame pool and cold-opens its own page file)"
        );
        ratio
    };

    // ---- plan cache A/B: cached vs cold parse+plan per request ----------
    // A repeated-query mix on one representative backend, same worker
    // count, same store: the only difference is the plan cache.
    let cache_mix = vec![1usize, 17];
    let cache_requests = requests.max(cache_mix.len() * 10);
    let store: Arc<dyn XmlStore> = session.load_shared(SystemId::D);
    let best_qps = |service: &QueryService| -> (f64, f64) {
        // Best of three runs; the first run also warms the cache.
        let mut qps: f64 = 0.0;
        let mut hit_rate = 0.0;
        for _ in 0..3 {
            let report = service.run_mix(&cache_mix, cache_requests);
            if report.qps() > qps {
                qps = report.qps();
                hit_rate = report.plan_cache_hit_rate();
            }
        }
        (qps, hit_rate)
    };
    let cold_service = QueryService::start_with_cache(Arc::clone(&store), sweep[0], 0);
    let (cold_qps, _) = best_qps(&cold_service);
    drop(cold_service);
    let warm_service = QueryService::start(store, sweep[0]);
    let (warm_qps, warm_hits) = best_qps(&warm_service);
    drop(warm_service);
    let speedup = warm_qps / cold_qps.max(1e-12);
    println!(
        "\nplan cache A/B (System D, {} worker(s), repeated mix {:?}, {} requests):\n\
         \x20 cold parse+plan per request: {cold_qps:.0} QPS\n\
         \x20 cached physical plans:       {warm_qps:.0} QPS ({:.0}% hits)\n\
         \x20 speedup: {speedup:.2}x",
        sweep[0],
        cache_mix,
        cache_requests,
        warm_hits * 100.0,
    );

    // ---- index A/B: persistent vs per-execution join builds -------------
    // Q8 (decorrelated IndexLookup) and Q9 (hash join) on one backend,
    // same worker count, same store: the only difference is whether the
    // IndexManager persists the join-side value indexes and path
    // materializations across requests (warm) or every execution rebuilds
    // them (cold — the pre-index-layer behavior, per-execution memos
    // still in place). Runs on its own join-scale document: at the smoke
    // factor the per-request fixed costs (channel, timing) would drown
    // the build share this A/B isolates.
    let join_mix = vec![8usize, 9];
    let join_factor = if smoke { 0.01 } else { factor.max(0.01) };
    let join_session = Benchmark::at_factor(join_factor)
        .queries(join_mix.iter().copied())
        .generate();
    let join_requests = join_requests_for(requests, &join_mix);
    let store: Arc<dyn XmlStore> = join_session.load_shared(SystemId::A);
    let service = QueryService::start(Arc::clone(&store), sweep[0]);
    let index_build_time = service.build_indexes();
    // One untimed warm pass first: it performs the join-side value-index
    // builds, so every measured warm round (and the zero-rebuild
    // assertion below) sees a fully warm store. Then interleave the two
    // modes (cold, warm, cold, warm, …) and keep the best run of each,
    // so machine drift between phases cannot bias the ratio either way.
    service.run_mix(&join_mix, join_mix.len());
    let mut cold: Option<ThroughputReport> = None;
    let mut warm: Option<ThroughputReport> = None;
    for _ in 0..7 {
        for (persistent, slot) in [(false, &mut cold), (true, &mut warm)] {
            store.indexes().set_persistent(persistent);
            let report = service.run_mix(&join_mix, join_requests);
            if slot.as_ref().is_none_or(|b| report.qps() > b.qps()) {
                *slot = Some(report);
            }
        }
    }
    store.indexes().set_persistent(true);
    let (cold, warm) = (cold.expect("seven rounds"), warm.expect("seven rounds"));
    let index_speedup = warm.qps() / cold.qps().max(1e-12);
    println!(
        "\nindex A/B (System A, factor {join_factor}, {} worker(s), mix {:?}, \
         {} requests, element+id warmup {index_build_time:.2?}):\n\
         \x20 cold per-execution join builds: {:.0} QPS ({} index builds)\n\
         \x20 warm persistent value indexes:  {:.0} QPS ({} builds, {} hits)\n\
         \x20 speedup: {index_speedup:.2}x",
        sweep[0],
        join_mix,
        join_requests,
        cold.qps(),
        cold.index_builds,
        warm.qps(),
        warm.index_builds,
        warm.index_hits,
    );

    // ---- batched drain A/B: vectorized vs item-at-a-time pulls ----------
    // The same compiled plans, the same store, the same drain loop — the
    // only difference is the stream's batch capacity. Best-of-five per
    // side so scheduler noise cannot fake a regression.
    let batch_mix = [1usize, 17];
    let store: Arc<dyn XmlStore> = session.load_shared(SystemId::D);
    let batch_plans: Vec<_> = batch_mix
        .iter()
        .map(|&n| compile(query(n).text, store.as_ref()).expect("mix query compiles"))
        .collect();
    for plan in &batch_plans {
        let _ = execute(plan, store.as_ref()).expect("warmup run"); // warm value slots
    }
    let rounds = if smoke { 60 } else { 200 };
    let drain_once = |cap: usize| -> std::time::Duration {
        let start = std::time::Instant::now();
        for _ in 0..rounds {
            for plan in &batch_plans {
                let n = std::hint::black_box(
                    plan.stream(store.as_ref())
                        .with_batch_size(cap)
                        .collect_seq()
                        .expect("mix query streams"),
                )
                .len();
                assert!(n > 0, "mix queries have non-empty results");
            }
        }
        start.elapsed()
    };
    // Interleave the trials (item, batched, item, batched, …) so both
    // sides sample the same scheduler-noise windows — measuring one side
    // wholesale and then the other lets a background hiccup during
    // either block fake a regression.
    let mut item_time = std::time::Duration::MAX;
    let mut batched_time = std::time::Duration::MAX;
    for _ in 0..7 {
        item_time = item_time.min(drain_once(1));
        batched_time = batched_time.min(drain_once(xmark::query::plan::DEFAULT_BATCH));
    }
    let batch_ratio = item_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-12);
    println!(
        "\nbatched drain A/B (System D, mix {:?}, {} rounds, best of 7):\n\
         \x20 item-at-a-time (capacity 1):   {item_time:.2?}\n\
         \x20 batched (capacity {}):        {batched_time:.2?}\n\
         \x20 speedup: {batch_ratio:.2}x",
        batch_mix,
        rounds,
        xmark::query::plan::DEFAULT_BATCH,
    );

    // ---- page-replacer A/B: LRU vs CLOCK under write pressure -----------
    // Two bulkloads of the same document into System H with a pool far
    // smaller than the page count — every index build and scan runs
    // through replacement — wrapped in a VersionedStore so a writer lane
    // commits roughly `--write-pct` structural updates per 100 reads
    // (default 20) while the readers drain the mix from MVCC snapshots.
    // The only difference between the two runs is the victim policy.
    let replacer_pct = xmark_bench::usize_flag("--write-pct").unwrap_or(20) as u32;
    let replacer_pool = SHARD_POOL;
    println!(
        "\npage-replacer A/B (System H, {replacer_pool}-frame pool, {} worker(s), \
         ~{replacer_pct} writes per 100 reads):",
        sweep[0]
    );
    let mut replacer_cells: Vec<String> = Vec::new();
    let mut replacer_evictions = 0u64;
    for kind in [ReplacerKind::Lru, ReplacerKind::Clock] {
        let paged = Arc::new(
            PagedStore::load_temp_with(session.xml(), replacer_pool, kind)
                .expect("benchmark document must parse"),
        );
        let before = paged.pool_stats();
        let versioned = VersionedStore::new(Arc::clone(&paged) as Arc<dyn XmlStore>);
        let service = QueryService::start_source(
            Arc::clone(&versioned) as Arc<dyn xmark::store::StoreSource>,
            sweep[0],
            DEFAULT_PLAN_CACHE,
        );
        let auctions: Vec<_> = {
            let s = versioned.snapshot();
            s.descendants_named_iter(s.root(), "open_auction").collect()
        };
        let mut calls = 0usize;
        let mut pending_delete: Option<xmark::store::Node> = None;
        let mut write = || -> Option<std::time::Duration> {
            let start = std::time::Instant::now();
            let mut txn = versioned.begin();
            match pending_delete.take() {
                Some(auction) => {
                    let s = versioned.snapshot();
                    let bidder = s
                        .children_named_iter(auction, "bidder")
                        .last()
                        .expect("the bidder inserted by the previous call");
                    txn.delete_subtree(bidder);
                }
                None => {
                    let auction = auctions[(calls / 2) % auctions.len()];
                    txn.insert_subtree(
                        auction,
                        "<bidder><date>28/07/2026</date><time>12:00:00</time>\
                         <personref person=\"person0\"/><increase>4.50</increase></bidder>",
                    );
                    pending_delete = Some(auction);
                }
            }
            calls += 1;
            txn.commit().expect("replacer A/B writer commit");
            Some(start.elapsed())
        };
        service.run_mix(&mix, mix.len()); // warm the plan cache
        let report = service.run_mixed(&mix, requests, replacer_pct, &mut write);
        let after = paged.pool_stats();
        let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        let evictions = after.evictions - before.evictions;
        replacer_evictions += evictions;
        println!(
            "  {kind:?}: {:.0} QPS, pool {:.1}% hits ({hits} hits / {misses} misses, \
             {evictions} evictions), {} commit(s)",
            report.read.qps(),
            hit_rate * 100.0,
            report.commits,
        );
        replacer_cells.push(format!(
            "{{\"replacer\":\"{kind:?}\",\"qps\":{:.1},\"p95_us\":{},\
             \"pool_hits\":{hits},\"pool_misses\":{misses},\"pool_evictions\":{evictions},\
             \"pool_hit_rate\":{hit_rate:.4},\"commits\":{}}}",
            report.read.qps(),
            worst_of_mix(&report.read, |s| s.p95).as_micros(),
            report.commits,
        ));
    }

    // ---- machine-readable baseline --------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"table4_throughput\",\n  \"factor\": {factor},\n  \
         \"cores\": {cores},\n  \"requests\": {requests},\n  \"mix\": {mix:?},\n  \
         \"worker_sweep\": {sweep:?},\n  \"shard_sweep\": {shard_counts:?},\n  \
         \"cells\": [\n    {}\n  ],\n  \"replacer_ab\": [\n    {}\n  ],\n  \
         \"plan_cache_ab\": {{\"cold_qps\": {cold_qps:.1}, \"warm_qps\": {warm_qps:.1}, \
         \"speedup\": {speedup:.2}}},\n  \
         \"index_ab\": {{\"cold_qps\": {:.1}, \"warm_qps\": {:.1}, \"speedup\": {index_speedup:.2}}},\n  \
         \"batch_ab\": {{\"item_us\": {}, \"batched_us\": {}, \"speedup\": {batch_ratio:.2}}}\n}}\n",
        json_cells.join(",\n    "),
        replacer_cells.join(",\n    "),
        cold.qps(),
        warm.qps(),
        item_time.as_micros(),
        batched_time.as_micros(),
    );
    std::fs::write("BENCH_table4.json", &json).expect("write BENCH_table4.json");
    println!("\nwrote BENCH_table4.json ({} cells)", json_cells.len());

    // ---- mixed read/write closed loop (--write-pct N) -------------------
    if let Some(write_pct) = xmark_bench::usize_flag("--write-pct") {
        run_mixed_loop(
            &session,
            &mix,
            requests,
            write_pct,
            *sweep.last().expect("non-empty"),
            smoke,
        );
    }

    if smoke {
        // A gross-regression guard, not a win assertion: on sparse
        // results (Q1 returns a single item) the capacity-128 batch
        // buffer is pure setup cost, so the mix legitimately measures
        // slightly below 1.0x on one core. The batching win itself is
        // asserted where granularity is isolated — the `batch`
        // criterion bench (axis scans and scan drains must beat
        // item-at-a-time outright).
        assert!(
            batch_ratio >= 0.90,
            "the batched drain must stay within 10% of item-at-a-time on \
             the [Q1,Q17] mix (measured {batch_ratio:.2}x)"
        );
        assert!(
            speedup >= 1.2,
            "plan cache must lift QPS by >=1.2x on a repeated-query mix \
             (measured {speedup:.2}x)"
        );
        assert_eq!(
            warm.index_builds, 0,
            "a warm service must serve Q8/Q9 with zero index rebuilds"
        );
        assert!(
            index_speedup >= 1.3,
            "warm-index Q8/Q9 serving must beat cold per-execution builds \
             by >=1.3x (measured {index_speedup:.2}x)"
        );
        // Scale-out contract: on a multi-core box the sharded H
        // deployment must beat the one-shard baseline outright (parallel
        // scatter + aggregate pool memory). A single-core container
        // cannot honor a QPS floor — the per-request scatter threads are
        // pure overhead when there is nothing to run them on — so there
        // the sweep asserts only that every shard count completed (the
        // service already panics on any cross-shard result divergence).
        if cores >= 4 {
            assert!(
                shard_scaling >= 1.0,
                "sharded H serving fell to {shard_scaling:.2}x of the \
                 one-shard baseline on {cores} core(s)"
            );
        } else {
            println!(
                "({cores} core(s): shard-sweep QPS floor skipped, measured \
                 {shard_scaling:.2}x — correctness still asserted per request)"
            );
        }
        assert!(
            replacer_evictions > 0,
            "the replacer A/B pool never evicted — the frame budget no \
             longer constrains the working set, so the A/B is vacuous"
        );
        println!(
            "\nsmoke: service layer + plan cache + persistent indexes + batched drains \
             + shard scatter-gather + page-replacer A/B exercised — OK"
        );
    }
}

/// Worst-of-mix percentile across a report's per-query stats.
fn worst_of_mix(
    report: &ThroughputReport,
    pick: impl Fn(&LatencyStats) -> std::time::Duration,
) -> std::time::Duration {
    report.per_query.iter().map(pick).max().unwrap_or_default()
}

/// One `BENCH_table4.json` cell: a (system, workers, shards) run with
/// its QPS, worst-of-mix latency percentiles, and cache/index counters.
fn cell_json(
    system: &str,
    workers: usize,
    shards: usize,
    report: &ThroughputReport,
    pool_hit: Option<f64>,
) -> String {
    format!(
        "{{\"system\":\"{system}\",\"workers\":{workers},\"shards\":{shards},\
         \"qps\":{:.1},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"ttfi_p95_us\":{},\
         \"cache_hit_rate\":{:.4},\"plan_cache_hits\":{},\"plan_cache_misses\":{},\
         \"index_builds\":{},\"index_hits\":{},\"pool_hit_rate\":{}}}",
        report.qps(),
        worst_of_mix(report, |s| s.p50).as_micros(),
        worst_of_mix(report, |s| s.p95).as_micros(),
        worst_of_mix(report, |s| s.p99).as_micros(),
        worst_of_mix(report, |s| s.ttfi_p95).as_micros(),
        report.plan_cache_hit_rate(),
        report.plan_cache_hits,
        report.plan_cache_misses,
        report.index_builds,
        report.index_hits,
        pool_hit.map_or("null".to_string(), |h| format!("{h:.4}")),
    )
}

/// Enough requests that each A/B run spans a measurable wall time on a
/// single core: at least fifty rounds of the mix.
fn join_requests_for(requests: usize, mix: &[usize]) -> usize {
    requests.max(mix.len() * 50)
}

/// The `--write-pct` mixed closed loop: readers drain the query mix from
/// pinned MVCC snapshots while a writer lane commits structural updates
/// (insert a bidder / delete it again, round-robin over the open
/// auctions) through a [`VersionedStore`] over System A.
fn run_mixed_loop(
    session: &Session,
    mix: &[usize],
    requests: usize,
    write_pct: usize,
    workers: usize,
    smoke: bool,
) {
    let versioned = VersionedStore::new(session.load_shared(SystemId::A));
    let service = QueryService::start_source(
        Arc::clone(&versioned) as Arc<dyn xmark::store::StoreSource>,
        workers,
        DEFAULT_PLAN_CACHE,
    );
    let auctions: Vec<_> = {
        let s = versioned.snapshot();
        s.descendants_named_iter(s.root(), "open_auction").collect()
    };
    let baseline_bidders = {
        let s = versioned.snapshot();
        s.count_descendants_named(s.root(), "bidder")
    };

    // Read-only baseline, best of three, worst p95 across the mix.
    let worst_p95 = |report: &ThroughputReport| {
        report
            .per_query
            .iter()
            .map(|s| s.p95)
            .max()
            .unwrap_or_default()
    };
    let read_only_p95 = (0..3)
        .map(|_| worst_p95(&service.run_mix(mix, requests)))
        .min()
        .expect("three baseline runs");

    // The writer lane: even calls append a fresh bidder to the next
    // auction, odd calls delete it again, so the document stays bounded
    // and the final state is checkable (the parity invariant).
    let mut calls = 0usize;
    let mut pending_delete: Option<xmark::store::Node> = None;
    let mut write = || -> Option<std::time::Duration> {
        let start = std::time::Instant::now();
        let mut txn = versioned.begin();
        match pending_delete.take() {
            Some(auction) => {
                let s = versioned.snapshot();
                let bidder = s
                    .children_named_iter(auction, "bidder")
                    .last()
                    .expect("the bidder inserted by the previous call");
                txn.delete_subtree(bidder);
            }
            None => {
                let auction = auctions[(calls / 2) % auctions.len()];
                txn.insert_subtree(
                    auction,
                    "<bidder><date>28/07/2026</date><time>12:00:00</time>\
                     <personref person=\"person0\"/><increase>4.50</increase></bidder>",
                );
                pending_delete = Some(auction);
            }
        }
        calls += 1;
        txn.commit().expect("writer lane commit");
        Some(start.elapsed())
    };

    // Mixed run, best of three by reader p95; commits accumulate. Epoch
    // overlap is judged across all rounds, not just the best one — the
    // best-p95 round is exactly the round where readers drained fastest
    // and were least likely to catch a commit mid-flight.
    let mut best: Option<MixedReport> = None;
    let mut max_epochs = 0usize;
    for _ in 0..3 {
        let report = service.run_mixed(mix, requests, write_pct as u32, &mut write);
        max_epochs = max_epochs.max(report.epochs_observed);
        if best
            .as_ref()
            .is_none_or(|b| worst_p95(&report.read) < worst_p95(&b.read))
        {
            best = Some(report);
        }
    }
    let best = best.expect("three mixed runs");
    let mixed_p95 = worst_p95(&best.read);

    println!(
        "\nmixed read/write closed loop (System A via MVCC snapshots, {workers} worker(s), \
         ~{write_pct} writes per 100 reads, best of 3):"
    );
    for s in &best.read.per_query {
        println!(
            "  Q{:<2} reader p50 {} / p95 {} / p99 {}  ({} requests)",
            s.query,
            xmark_bench::ms(s.p50),
            xmark_bench::ms(s.p95),
            xmark_bench::ms(s.p99),
            s.count,
        );
    }
    println!(
        "  writer: {} commit(s) in the best round, p50 {} / p95 {} / max {}\n\
         \x20 reader p95 worst-of-mix: {} read-only vs {} mixed ({:.2}x); \
         {} snapshot epoch(s) observed",
        best.commits,
        xmark_bench::ms(best.commit_p50),
        xmark_bench::ms(best.commit_p95),
        xmark_bench::ms(best.commit_max),
        xmark_bench::ms(read_only_p95),
        xmark_bench::ms(mixed_p95),
        mixed_p95.as_secs_f64() / read_only_p95.as_secs_f64().max(1e-12),
        best.epochs_observed,
    );

    // Parity invariant: every insert not yet paired with its delete is
    // still visible, everything else left the document unchanged.
    let expected = baseline_bidders + usize::from(pending_delete.is_some());
    let s = versioned.snapshot();
    assert_eq!(
        s.count_descendants_named(s.root(), "bidder"),
        expected,
        "writer-lane parity: inserts and deletes must pair up"
    );

    if smoke {
        assert!(
            best.commits > 0,
            "the writer lane must commit under --smoke"
        );
        assert!(
            max_epochs >= 2,
            "readers must overlap at least one commit in some round (saw at most {max_epochs} epochs)"
        );
        // Readers pin snapshots and never block on the writer: write
        // pressure may cost cache misses, not contention stalls. (Torn
        // reads are covered by the service's same-epoch result check,
        // which panics inside run_mixed.)
        assert!(
            mixed_p95.as_secs_f64() <= 1.5 * read_only_p95.as_secs_f64().max(1e-9),
            "reader p95 under write pressure ({}) exceeded 1.5x the \
             read-only baseline ({})",
            xmark_bench::ms(mixed_p95),
            xmark_bench::ms(read_only_p95),
        );
        println!(
            "smoke: mixed loop OK — snapshot isolation held, readers \
             stayed within 1.5x of the read-only baseline"
        );
    }
}
