//! Table 4 (this reproduction's extension): aggregate throughput of the
//! concurrent query service, per backend, as the worker pool grows.
//!
//! The paper stops at single-user latency (Table 3). Table 4 answers the
//! production question instead: with one loaded store shared by N worker
//! threads serving a closed-loop mix of the Table 3 queries, how many
//! queries per second does each architecture sustain, and what do the
//! tail latencies look like?
//!
//! ```text
//! cargo run --release -p xmark-bench --bin table4_throughput \
//!     [--factor 0.01] [--requests 104] [--smoke]
//! ```
//!
//! `--smoke` runs a seconds-scale version (tiny document, two pool sizes,
//! a three-query mix) so CI exercises the whole service layer end to end.

use std::sync::Arc;

use xmark::prelude::*;
use xmark_bench::TextTable;

fn worker_sweep(max: usize) -> Vec<usize> {
    // 1, 2, 4, … up to the core count (always reaching at least 4 so the
    // scaling shape is visible even on small machines).
    let cap = max.max(4);
    let mut sweep = Vec::new();
    let mut w = 1;
    while w < cap {
        sweep.push(w);
        w *= 2;
    }
    sweep.push(cap);
    sweep
}

fn main() {
    let smoke = xmark_bench::has_flag("--smoke");
    let factor = xmark_bench::factor_from_args(if smoke { 0.001 } else { 0.01 });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = if smoke {
        vec![1, 2]
    } else {
        worker_sweep(cores)
    };
    let mix: Vec<usize> = if smoke {
        vec![1, 6, 17]
    } else {
        TABLE3_QUERIES.to_vec()
    };
    let requests =
        xmark_bench::usize_flag("--requests").unwrap_or(if smoke { 12 } else { mix.len() * 8 });

    println!(
        "== Table 4: concurrent throughput (factor {factor}, {} detected core(s), \
         {} requests/cell, mix of {} queries) ==\n",
        cores,
        requests,
        mix.len()
    );

    let session = Benchmark::at_factor(factor)
        .queries(mix.iter().copied())
        .generate();
    println!(
        "document: {}\n",
        xmark_bench::human_bytes(session.xml().len())
    );

    let mut header = vec!["System".to_string()];
    header.extend(sweep.iter().map(|w| format!("{w}w QPS")));
    header.push("p95 @max".to_string());
    header.push("scale 1→max".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);

    for system in SystemId::ALL {
        let store: Arc<dyn XmlStore> = session.load_shared(system);
        let mut row = vec![format!("{system}")];
        let mut first_qps = 0.0;
        let mut last: Option<ThroughputReport> = None;
        for &workers in &sweep {
            let service = QueryService::start(Arc::clone(&store), workers);
            let report = service.run_mix(&mix, requests);
            if workers == sweep[0] {
                first_qps = report.qps();
            }
            row.push(format!("{:.0}", report.qps()));
            last = Some(report);
        }
        let last = last.expect("sweep is non-empty");
        let worst_p95 = last
            .per_query
            .iter()
            .map(|s| s.p95)
            .max()
            .unwrap_or_default();
        row.push(xmark_bench::ms(worst_p95));
        row.push(format!("{:.2}x", last.qps() / first_qps.max(1e-12)));
        table.row(row);
    }
    println!("{}", table.render());

    println!(
        "(closed loop: every request compiles + executes, so a cell matches\n\
         the Table 3 total; 'scale' is QPS at the largest pool over QPS at 1\n\
         worker — expect ~linear scaling up to the physical core count, and\n\
         ~1x when the host has a single core)"
    );

    if smoke {
        println!("\nsmoke: service layer exercised across all seven backends — OK");
    }
}
