//! Shared infrastructure for the benchmark harness.
//!
//! The `xmark-bench` crate regenerates every table and figure of the
//! paper's evaluation (§7):
//!
//! | Artifact | Binary |
//! |----------|--------|
//! | Fig. 3 (document scaling) + §4.5 xmlgen claims | `fig3_scaling` |
//! | Table 1 (bulkload time, database size) | `table1_bulkload` |
//! | Table 2 (parse/plan/execute split, Q1/Q2 on A–G) | `table2_phases` |
//! | Table 3 (13 queries × systems A–F) | `table3_queries` |
//! | Fig. 4 (Q1–Q20 on embedded System G) | `fig4_embedded` |
//! | Table 4 (concurrent throughput + plan cache, this reproduction's extension) | `table4_throughput` |
//!
//! Criterion microbenches (`benches/`) cover generator throughput, bulk
//! loading, the query suite, the two architecture ablations (structural
//! summary on/off, interval index vs scan), the concurrent service layer
//! (`throughput`), and prepared-vs-unprepared serving through the plan
//! cache (`plan_cache`).

use std::time::{Duration, Instant};

/// Parse `--factor <f>` (or a bare positional float) from argv, with a
/// default.
pub fn factor_from_args(default: f64) -> f64 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    factor_from(&args, default)
}

fn factor_from(args: &[String], default: f64) -> f64 {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--factor" {
            if let Some(v) = args.get(i + 1).and_then(|a| a.parse().ok()) {
                return v;
            }
        }
        // A bare numeric is a positional factor — but not when it is the
        // value of some other flag (`--requests 104` must not become
        // factor 104).
        let follows_flag = i > 0 && args[i - 1].starts_with("--");
        if !follows_flag {
            if let Ok(v) = args[i].parse::<f64>() {
                return v;
            }
        }
        i += 1;
    }
    default
}

/// Whether a bare flag is present in argv.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Parse `--<flag> <n>` from argv as a usize, if present.
pub fn usize_flag(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Best-of-`runs` wall time of `f` (first run discarded as warm-up when
/// `runs > 1`).
pub fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(runs >= 1);
    let mut best: Option<(Duration, T)> = None;
    for i in 0..runs.max(2) {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        if i == 0 && runs > 1 {
            continue; // warm-up
        }
        match &best {
            Some((b, _)) if *b <= elapsed => {}
            _ => best = Some((elapsed, value)),
        }
    }
    best.expect("at least one measured run")
}

/// Format a duration in the paper's milliseconds convention.
pub fn ms(d: Duration) -> String {
    let millis = d.as_secs_f64() * 1e3;
    if millis >= 100.0 {
        format!("{millis:.0}")
    } else if millis >= 1.0 {
        format!("{millis:.1}")
    } else {
        format!("{millis:.3}")
    }
}

/// Format bytes as a human-readable size.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "kB", "MB", "GB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// A fixed-width text table writer for the report binaries.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.len();
                if i == 0 {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(&["Query", "System A", "System B"]);
        t.row(vec!["Q1".into(), "689".into(), "784".into()]);
        t.row(vec!["Q11".into(), "205675".into(), "2551760".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("System A"));
        assert!(lines[3].ends_with("2551760"));
    }

    #[test]
    fn best_of_discards_warmup() {
        let mut calls = 0;
        let (d, v) = best_of(3, || {
            calls += 1;
            42
        });
        assert_eq!(v, 42);
        assert_eq!(calls, 3);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn factor_parsing_ignores_other_flags_values() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(factor_from(&args(&["--factor", "0.05"]), 1.0), 0.05);
        assert_eq!(factor_from(&args(&["0.2"]), 1.0), 0.2);
        assert_eq!(factor_from(&args(&["--smoke"]), 1.0), 1.0);
        // The value of an unrelated flag is not a positional factor.
        assert_eq!(factor_from(&args(&["--requests", "104"]), 1.0), 1.0);
        assert_eq!(
            factor_from(&args(&["--requests", "104", "--factor", "0.01"]), 1.0),
            0.01
        );
        assert_eq!(
            factor_from(&args(&["--factor", "0.01", "--requests", "104"]), 1.0),
            0.01
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 kB");
        assert_eq!(ms(Duration::from_millis(250)), "250");
        assert_eq!(ms(Duration::from_micros(1500)), "1.5");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_bad_row() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
