//! # XMark — A Benchmark for XML Data Management
//!
//! A complete Rust reproduction of the VLDB 2002 benchmark by Schmidt,
//! Waas, Kersten, Carey, Manolescu and Busse: the scalable auction-site
//! document generator (`xmlgen`), the twenty XQuery challenge queries, an
//! XQuery-subset compiler/evaluator, and seven storage backends modeling
//! the anonymized systems A–G of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use xmark::prelude::*;
//!
//! // 1. Generate a benchmark document (factor 1.0 ≈ 100 MB; keep it tiny
//! //    here).
//! let doc = generate_document(0.001);
//!
//! // 2. Bulkload it into a storage architecture.
//! let loaded = load_system(SystemId::D, &doc.xml);
//!
//! // 3. Run benchmark queries.
//! let m = measure_query(&loaded, 1);
//! assert_eq!(m.result_items, 1); // Q1: the name of person0
//! ```
//!
//! ## Crate layout
//!
//! * [`xmark_gen`] — the deterministic document generator (paper §4),
//! * [`xmark_xml`] — XML tokenizer, DOM, serializer,
//! * [`xmark_rel`] — the relational substrate behind Systems A/B/C,
//! * [`xmark_store`] — the seven storage architectures (§7),
//! * [`xmark_query`] — the XQuery subset (§6),
//! * [`queries`] — the twenty benchmark queries,
//! * [`spec`] — scales, workload driver, measurement types.

pub mod queries;
pub mod spec;

pub use xmark_gen as gen;
pub use xmark_query as query;
pub use xmark_rel as rel;
pub use xmark_store as store;
pub use xmark_xml as xml;

/// Everything needed to run the benchmark.
pub mod prelude {
    pub use crate::queries::{query, BenchmarkQuery, Concept, ALL_QUERIES, TABLE3_QUERIES};
    pub use crate::spec::{
        canonical_output, generate_document, load_system, measure_query, scale,
        GeneratedDocument, LoadedStore, QueryMeasurement, Scale, SCALES,
    };
    pub use xmark_gen::{generate_split, generate_string, Generator, GeneratorConfig, AUCTION_DTD};
    pub use xmark_query::{compile, execute, run_query, serialize_sequence};
    pub use xmark_store::{build_store, SystemId, XmlStore};
}
