//! # XMark — A Benchmark for XML Data Management
//!
//! A complete Rust reproduction of the VLDB 2002 benchmark by Schmidt,
//! Waas, Kersten, Carey, Manolescu and Busse: the scalable auction-site
//! document generator (`xmlgen`), the twenty XQuery challenge queries, an
//! XQuery-subset compiler/evaluator, and seven storage backends modeling
//! the anonymized systems A–G of the paper's evaluation.
//!
//! ## Quickstart
//!
//! The [`spec::Benchmark`] façade drives a whole session — generate,
//! bulkload, measure — from one builder chain:
//!
//! ```
//! use xmark::prelude::*;
//!
//! // "mini" is the 100 kB preset of the paper's Fig. 4.
//! let report = Benchmark::at_scale("mini")
//!     .systems(&[SystemId::D])
//!     .queries(1..=1)
//!     .run();
//! let m = report.measurement(SystemId::D, 1).unwrap();
//! assert_eq!(m.result_items, 1); // Q1: the name of person0
//! ```
//!
//! ## Streaming results
//!
//! Execution is pull-based end to end: [`spec::Session::stream`] (and
//! [`spec::PreparedQuery::stream`]) open a cursor over the physical plan
//! whose `take(n)` / `exists()` / `count()` fast paths stop executing as
//! soon as the answer is known, and `write_to(sink)` serializes item by
//! item into any `fmt::Write` (or `io::Write` via `IoSink`) without
//! materializing the result. `execute()` remains as the materializing
//! wrapper — byte-identical, just eager.
//!
//! ```
//! use xmark::prelude::*;
//!
//! let session = Benchmark::at_scale("mini").generate();
//! let people = session.stream(SystemId::E, "/site/people/person");
//! assert!(people.exists());          // pulls one person, stops
//! let preview = people.take(10);     // pulls ten, stops
//! assert_eq!(preview.len(), 10);
//! let mut out = String::new();
//! let stats = people.write_to(&mut out);
//! assert_eq!(stats.items, people.count());
//! ```
//!
//! ## Serving concurrent traffic
//!
//! The paper measures single-user latency; production serves many users
//! at once. Every backend is `Send + Sync` (compile-time asserted), so
//! one loaded store is shared across a fixed [`service::QueryService`]
//! worker pool behind an `Arc<dyn XmlStore>` — no copies, no locks on
//! the read path — and a closed-loop run reports per-query latency
//! percentiles plus aggregate QPS:
//!
//! ```
//! use xmark::prelude::*;
//!
//! let session = Benchmark::at_scale("mini").generate();
//! let service = session.serve(SystemId::D, 2); // 2 worker threads
//! let report = service.run_mix(&[1, 6, 17], 30);
//! assert_eq!(report.requests, 30);
//! let q17 = report.stats(17).unwrap();
//! assert!(q17.p50 <= q17.p99 && report.qps() > 0.0);
//! ```
//!
//! (`Session::measure_throughput` collapses the load + serve + run chain
//! into one call; the `table4_throughput` report binary sweeps worker
//! counts 1→#cores across all seven backends.)
//!
//! Serving composes with the **persistent index layer**: every store
//! owns an [`xmark_store::IndexManager`] whose element postings,
//! attribute values, and join-side value indexes build lazily, exactly
//! once, and are shared by all workers. `Session::build_indexes(system)`
//! and [`service::QueryService::build_indexes`] warm the store-walk
//! indexes off the request path; [`service::ThroughputReport`] reports
//! index builds and hits per run (zero builds once warm).
//!
//! The loaded stores stay alive in the report, and navigation is exposed
//! as **streaming axis cursors** — no intermediate node sets:
//!
//! ```
//! # use xmark::prelude::*;
//! # let report = Benchmark::at_scale("mini").systems(&[SystemId::D]).queries([]).run();
//! let store = report.load(SystemId::D).unwrap().store.as_ref();
//! let people = store.children_named_iter(store.root(), "people").next().unwrap();
//! let persons = store.descendants_named_iter(people, "person").count();
//! assert!(persons > 10);
//! ```
//!
//! ## Crate layout
//!
//! * [`xmark_gen`] — the deterministic document generator (paper §4),
//! * [`xmark_xml`] — XML tokenizer, DOM, serializer,
//! * [`xmark_rel`] — the relational substrate behind Systems A/B/C,
//! * [`xmark_store`] — the seven storage architectures (§7), all
//!   `Send + Sync`, each reporting its planner capabilities and catalog
//!   selectivity estimates,
//! * [`xmark_query`] — the XQuery subset (§6) as an explicit
//!   parse → plan → pull pipeline: a cost-based planner lowers each
//!   query into a physical plan (`EXPLAIN`-renderable, cached by the
//!   service layer) executed through pull-based operator cursors — a
//!   [`xmark_query::ResultStream`] with early-terminating
//!   `take`/`exists`/`count` and sink-generic `write_to` serialization,
//! * [`queries`] — the twenty benchmark queries,
//! * [`spec`] — scales, workload driver, three-phase measurement types,
//!   prepared queries,
//! * [`service`] — the concurrent query service (worker pool, shared LRU
//!   plan cache, latency percentiles, QPS).

pub mod queries;
pub mod service;
pub mod spec;

pub use xmark_gen as gen;
pub use xmark_query as query;
pub use xmark_rel as rel;
pub use xmark_store as store;
pub use xmark_txn as txn;
pub use xmark_xml as xml;

/// Everything needed to run the benchmark.
///
/// The central entry point is [`spec::Benchmark`] — a builder that scales,
/// generates, bulkloads and measures in one chain — with the lower-level
/// pieces (`generate_document`, `load_system`, `measure_query`) still
/// exported for custom harnesses. For concurrent serving,
/// [`service::QueryService`] runs a worker pool over one shared
/// `Arc<dyn XmlStore>` (see `Session::serve` / `measure_throughput`).
/// Stores expose navigation as streaming axis cursors
/// ([`xmark_store::XmlStore::children_iter`] and friends); the
/// `Vec`-returning methods remain as thin wrappers.
pub mod prelude {
    pub use crate::queries::{query, BenchmarkQuery, Concept, ALL_QUERIES, TABLE3_QUERIES};
    pub use crate::service::{
        LatencyStats, MixedReport, PlanCache, QueryService, RequestMeasurement, ThroughputReport,
        DEFAULT_PLAN_CACHE,
    };
    pub use crate::spec::{
        canonical_output, generate_document, load_system, measure_query, open_paged,
        open_paged_versioned, scale, Benchmark, BenchmarkReport, GeneratedDocument, LoadedStore,
        PreparedQuery, QueryMeasurement, QueryStream, Scale, Session, SCALES,
    };
    pub use xmark_gen::{generate_split, generate_string, Generator, GeneratorConfig, AUCTION_DTD};
    pub use xmark_query::{
        compile, compile_with_mode, execute, execute_scattered, explain_plan, run_query,
        serialize_sequence, shard_mode, stream, verify_plan, verify_plan_against, write_item,
        write_sequence, Invariant, IoSink, PlanMode, ResultStream, ShardMode, StreamStats,
        VerifyReport,
    };
    pub use xmark_store::{
        build_store, IndexManager, IndexStats, PagedStore, PlannerCaps, PoolStats, ReplacerKind,
        ShardedStore, StoreSource, SystemId, XmlStore, DEFAULT_POOL_PAGES,
    };
    pub use xmark_txn::{
        recover_paged, CommitInfo, RecoveryReport, SnapshotStore, Transaction, TxnError,
        VersionedStore,
    };
}
