//! The twenty XMark benchmark queries (§6 of the paper).
//!
//! Each query is stored verbatim as XQuery text together with the paper's
//! grouping (the "concept to be tested") and its query number. The only
//! modernization relative to the 2002 publication is `order by` for the
//! draft-era `SORTBY` in Q19, matching the query set later distributed by
//! the XMark project.

/// The concept group a query belongs to (the paper's §6 subsections).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Concept {
    /// §6.1 — string lookup with fully specified path.
    ExactMatch,
    /// §6.2 — order-sensitive access (array lookups, BEFORE).
    OrderedAccess,
    /// §6.3 — string-to-number coercion.
    Casting,
    /// §6.4 — regular path expressions / traversal pruning.
    RegularPaths,
    /// §6.5 — reference chasing (equi-joins).
    References,
    /// §6.6 — construction of complex results.
    Construction,
    /// §6.7 — value-based joins with large intermediates.
    ValueJoins,
    /// §6.8 — document reconstruction.
    Reconstruction,
    /// §6.9 — full-text search combined with structure.
    FullText,
    /// §6.10 — long path traversals without wildcards.
    PathTraversals,
    /// §6.11 — optional/missing elements.
    MissingElements,
    /// §6.12 — user-defined functions.
    Functions,
    /// §6.13 — sorting.
    Sorting,
    /// §6.14 — grouped aggregation.
    Aggregation,
}

/// One benchmark query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkQuery {
    /// Query number, 1–20.
    pub number: usize,
    /// The paper's one-line description.
    pub title: &'static str,
    /// Concept group.
    pub concept: Concept,
    /// The XQuery text.
    pub text: &'static str,
}

/// Q1 — exact match.
pub const Q1: &str = r#"
for $b in document("auction.xml")/site/people/person[@id = "person0"]
return $b/name/text()
"#;

/// Q2 — ordered access: first bid of every open auction.
pub const Q2: &str = r#"
for $b in document("auction.xml")/site/open_auctions/open_auction
return <increase>{$b/bidder[1]/increase/text()}</increase>
"#;

/// Q3 — ordered access: auctions whose current increase doubled.
pub const Q3: &str = r#"
for $b in document("auction.xml")/site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
return <increase first="{$b/bidder[1]/increase/text()}"
                 last="{$b/bidder[last()]/increase/text()}"/>
"#;

/// Q4 — tag order in the source document (`BEFORE`).
pub const Q4: &str = r#"
for $b in document("auction.xml")/site/open_auctions/open_auction
where some $pr1 in $b/bidder/personref[@person = "person20"],
           $pr2 in $b/bidder/personref[@person = "person51"]
      satisfies $pr1 << $pr2
return <history>{$b/reserve/text()}</history>
"#;

/// Q5 — casting: how many sold items cost more than 40.
pub const Q5: &str = r#"
count(for $i in document("auction.xml")/site/closed_auctions/closed_auction
      where $i/price/text() >= 40
      return $i/price)
"#;

/// Q6 — regular paths: items per region.
pub const Q6: &str = r#"
for $b in document("auction.xml")/site/regions
return count($b//item)
"#;

/// Q7 — regular paths: pieces of prose (`//email` intentionally does not
/// exist in the data — the paper's non-existing-path challenge).
pub const Q7: &str = r#"
for $p in document("auction.xml")/site
return count($p//description) + count($p//annotation) + count($p//email)
"#;

/// Q8 — reference chasing: persons and how many items they bought.
pub const Q8: &str = r#"
for $p in document("auction.xml")/site/people/person
let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{$p/name/text()}">{count($a)}</item>
"#;

/// Q9 — reference chasing: persons and the European items they bought.
pub const Q9: &str = r#"
for $p in document("auction.xml")/site/people/person
let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction,
              $e in document("auction.xml")/site/regions/europe/item
          where $t/itemref/@item = $e/@id and $t/buyer/@person = $p/@id
          return <item>{$e/name/text()}</item>
return <person name="{$p/name/text()}">{$a}</person>
"#;

/// Q10 — construction: regroup persons by interest, French markup.
pub const Q10: &str = r#"
for $i in distinct-values(document("auction.xml")/site/people/person/profile/interest/@category)
let $p := for $t in document("auction.xml")/site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
                   <statistiques>
                     <sexe>{$t/profile/gender/text()}</sexe>
                     <age>{$t/profile/age/text()}</age>
                     <education>{$t/profile/education/text()}</education>
                     <revenu>{data($t/profile/@income)}</revenu>
                   </statistiques>
                   <coordonnees>
                     <nom>{$t/name/text()}</nom>
                     <rue>{$t/address/street/text()}</rue>
                     <ville>{$t/address/city/text()}</ville>
                     <pays>{$t/address/country/text()}</pays>
                     <reseau>
                       <courrier>{$t/emailaddress/text()}</courrier>
                       <pagePerso>{$t/homepage/text()}</pagePerso>
                     </reseau>
                   </coordonnees>
                   <cartePaiement>{$t/creditcard/text()}</cartePaiement>
                 </personne>
return <categorie>{<id>{$i}</id>, $p}</categorie>
"#;

/// Q11 — value join: items whose price a person's income covers 5000-fold.
pub const Q11: &str = r#"
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i/text()
          return $i
return <items name="{$p/name/text()}">{count($l)}</items>
"#;

/// Q12 — value join restricted to high incomes.
pub const Q12: &str = r#"
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i/text()
          return $i
where $p/profile/@income > 50000
return <items person="{$p/name/text()}">{count($l)}</items>
"#;

/// Q13 — reconstruction: Australian items with their descriptions.
pub const Q13: &str = r#"
for $i in document("auction.xml")/site/regions/australia/item
return <item name="{$i/name/text()}">{$i/description}</item>
"#;

/// Q14 — full text: items whose description mentions gold.
pub const Q14: &str = r#"
for $i in document("auction.xml")/site//item
where contains(string($i/description), "gold")
return $i/name/text()
"#;

/// Q15 — long path traversal (descending).
pub const Q15: &str = r#"
for $a in document("auction.xml")/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
return <text>{$a}</text>
"#;

/// Q16 — long path traversal with ascent (Q15's sellers).
pub const Q16: &str = r#"
for $a in document("auction.xml")/site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
return <person id="{$a/seller/@person}"/>
"#;

/// Q17 — missing elements: persons without a homepage.
pub const Q17: &str = r#"
for $p in document("auction.xml")/site/people/person
where empty($p/homepage/text())
return <person name="{$p/name/text()}"/>
"#;

/// Q18 — user-defined function: currency conversion.
pub const Q18: &str = r#"
declare function local:convert($v) { 2.20371 * $v };
for $i in document("auction.xml")/site/open_auctions/open_auction
return local:convert(zero-or-one($i/reserve/text()))
"#;

/// Q19 — sorting: items with their locations, alphabetical.
pub const Q19: &str = r#"
for $b in document("auction.xml")/site/regions//item
let $k := $b/name/text()
order by zero-or-one($b/location) ascending
return <item name="{$k}">{$b/location/text()}</item>
"#;

/// Q20 — aggregation: customers grouped by income.
pub const Q20: &str = r#"
<result>
  <preferred>{count(document("auction.xml")/site/people/person/profile[@income >= 100000])}</preferred>
  <standard>{count(document("auction.xml")/site/people/person/profile[@income < 100000 and @income >= 30000])}</standard>
  <challenge>{count(document("auction.xml")/site/people/person/profile[@income < 30000])}</challenge>
  <na>{count(for $p in document("auction.xml")/site/people/person
             where empty($p/profile/@income)
             return $p)}</na>
</result>
"#;

/// All twenty queries, in order.
pub const ALL_QUERIES: [BenchmarkQuery; 20] = [
    BenchmarkQuery {
        number: 1,
        title: "Return the name of the person with ID 'person0'",
        concept: Concept::ExactMatch,
        text: Q1,
    },
    BenchmarkQuery {
        number: 2,
        title: "Return the initial increases of all open auctions",
        concept: Concept::OrderedAccess,
        text: Q2,
    },
    BenchmarkQuery {
        number: 3,
        title: "Open auctions whose current increase is at least twice the initial",
        concept: Concept::OrderedAccess,
        text: Q3,
    },
    BenchmarkQuery {
        number: 4,
        title: "Reserves of auctions where one person bid before another",
        concept: Concept::OrderedAccess,
        text: Q4,
    },
    BenchmarkQuery {
        number: 5,
        title: "How many sold items cost more than 40",
        concept: Concept::Casting,
        text: Q5,
    },
    BenchmarkQuery {
        number: 6,
        title: "How many items are listed on all continents",
        concept: Concept::RegularPaths,
        text: Q6,
    },
    BenchmarkQuery {
        number: 7,
        title: "How many pieces of prose are in our database",
        concept: Concept::RegularPaths,
        text: Q7,
    },
    BenchmarkQuery {
        number: 8,
        title: "Names of persons and the number of items they bought",
        concept: Concept::References,
        text: Q8,
    },
    BenchmarkQuery {
        number: 9,
        title: "Names of persons and the names of items they bought in Europe",
        concept: Concept::References,
        text: Q9,
    },
    BenchmarkQuery {
        number: 10,
        title: "List all persons according to their interest (French markup)",
        concept: Concept::Construction,
        text: Q10,
    },
    BenchmarkQuery {
        number: 11,
        title: "Items on sale whose price does not exceed 0.02% of income",
        concept: Concept::ValueJoins,
        text: Q11,
    },
    BenchmarkQuery {
        number: 12,
        title: "Q11 restricted to persons with income above 50000",
        concept: Concept::ValueJoins,
        text: Q12,
    },
    BenchmarkQuery {
        number: 13,
        title: "Names of items registered in Australia with their descriptions",
        concept: Concept::Reconstruction,
        text: Q13,
    },
    BenchmarkQuery {
        number: 14,
        title: "Names of all items whose description contains the word 'gold'",
        concept: Concept::FullText,
        text: Q14,
    },
    BenchmarkQuery {
        number: 15,
        title: "Keywords in emphasis in annotations of closed auctions",
        concept: Concept::PathTraversals,
        text: Q15,
    },
    BenchmarkQuery {
        number: 16,
        title: "Sellers of auctions with keywords in emphasis",
        concept: Concept::PathTraversals,
        text: Q16,
    },
    BenchmarkQuery {
        number: 17,
        title: "Which persons don't have a homepage",
        concept: Concept::MissingElements,
        text: Q17,
    },
    BenchmarkQuery {
        number: 18,
        title: "Convert the reserve of all open auctions to another currency",
        concept: Concept::Functions,
        text: Q18,
    },
    BenchmarkQuery {
        number: 19,
        title: "Alphabetically ordered list of all items with their location",
        concept: Concept::Sorting,
        text: Q19,
    },
    BenchmarkQuery {
        number: 20,
        title: "Group customers by income and output group cardinalities",
        concept: Concept::Aggregation,
        text: Q20,
    },
];

/// The thirteen queries the paper's Table 3 reports (Q1–Q3, Q5–Q12, Q17,
/// Q20).
pub const TABLE3_QUERIES: [usize; 13] = [1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 17, 20];

/// Look up a query by number (1-based).
///
/// # Panics
/// Panics if `number` is not in `1..=20`.
pub fn query(number: usize) -> &'static BenchmarkQuery {
    &ALL_QUERIES[number - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_queries_numbered_in_order() {
        assert_eq!(ALL_QUERIES.len(), 20);
        for (i, q) in ALL_QUERIES.iter().enumerate() {
            assert_eq!(q.number, i + 1);
            assert!(!q.text.trim().is_empty());
        }
    }

    #[test]
    fn every_query_parses() {
        for q in &ALL_QUERIES {
            xmark_query::parse_query(q.text)
                .unwrap_or_else(|e| panic!("Q{} failed to parse: {e}", q.number));
        }
    }

    #[test]
    fn table3_selection_matches_paper() {
        assert_eq!(TABLE3_QUERIES.len(), 13);
        assert!(!TABLE3_QUERIES.contains(&4));
        assert!(!TABLE3_QUERIES.contains(&13));
        assert!(TABLE3_QUERIES.contains(&11));
    }

    #[test]
    fn lookup_by_number() {
        assert_eq!(query(14).concept, Concept::FullText);
        assert!(query(7).text.contains("$p//email"));
    }
}
