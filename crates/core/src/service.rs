//! The concurrent query service: a fixed worker pool executing a
//! closed-loop mix of benchmark queries against one shared store.
//!
//! The paper's Table 3 measures single-user latency; this module extends
//! the architecture comparison to *throughput under load* — the axis a
//! production deployment cares about. Every backend is `Send + Sync`
//! (compile-time asserted in `xmark-store`), so a loaded store is shared
//! across workers behind an `Arc<dyn XmlStore>` with no copying and no
//! locking on the read path: the only runtime mutation anywhere in a
//! store is the relaxed atomic metadata counter.
//!
//! Architecture: [`QueryService::start`] spawns N OS threads. Jobs (query
//! numbers) travel over an `mpsc` channel shared through a mutexed
//! receiver; finished measurements return over a second channel. A
//! closed-loop run keeps the queue non-empty, which is equivalent to N
//! concurrent always-on client streams.
//!
//! Workers share an LRU [`PlanCache`] keyed by query text: the first
//! request for a query compiles it (parse + metadata + plan — the
//! Table 2 compile phase) and caches the [`Compiled`] artifact; every
//! subsequent request executes the cached physical plan directly. The
//! cache hit rate and the resulting cold-vs-warm throughput gap are
//! reported per run ([`ThroughputReport::plan_cache_hit_rate`]).
//!
//! Workers **stream**: each request opens a pull-based
//! [`xmark_query::ResultStream`] over the cached plan and serializes
//! items one by one into a byte sink — no materialized result sequence,
//! no output `String`. Besides the total-latency percentiles, each
//! query's [`LatencyStats`] therefore reports time-to-first-item p50/p95
//! ([`LatencyStats::ttfi_p50`]): what a streaming client waits before
//! its first byte, which for large results is far below the total.
//!
//! ```
//! use std::sync::Arc;
//! use xmark::prelude::*;
//! use xmark::service::QueryService;
//!
//! let session = Benchmark::at_scale("mini").generate();
//! let store: Arc<dyn XmlStore> = Arc::from(session.load(SystemId::D).store);
//! let service = QueryService::start(store, 2);
//! let report = service.run_mix(&[1, 6, 17], 30);
//! assert_eq!(report.requests, 30);
//! assert!(report.qps() > 0.0);
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use xmark_query::{compile, execute_scattered, Compiled};
use xmark_store::sync::lock;
use xmark_store::{IndexStats, StoreSource, SystemId, XmlStore};

use crate::queries::query;

/// Default capacity of a service's plan cache — comfortably holds the
/// twenty benchmark queries.
pub const DEFAULT_PLAN_CACHE: usize = 64;

/// A shared LRU cache of compiled plans, keyed by query text.
///
/// Compilation (parse + metadata resolution + planning) is pure per
/// (query, store), so a service serving one store caches the whole
/// [`Compiled`] artifact: a hit skips parse and plan entirely and the
/// Table 2 statistics are collected once at miss time instead of per
/// request — the free throughput the ROADMAP's million-user target needs.
///
/// Hit/miss counters are relaxed atomics; the map itself sits behind a
/// mutex taken only for the lookup/insert, never during compilation or
/// execution.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<PlanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct PlanCacheInner {
    map: HashMap<String, Arc<Compiled>>,
    /// Recency queue, least-recent first.
    order: VecDeque<String>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans. Capacity 0
    /// disables caching (every lookup misses) — the cold-path baseline
    /// the throughput comparison measures against.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            inner: Mutex::new(PlanCacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetch the plan for `text`, counting a hit or a miss.
    pub fn lookup(&self, text: &str) -> Option<Arc<Compiled>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = lock(&self.inner);
        match inner.map.get(text).cloned() {
            Some(hit) => {
                // Move to most-recent.
                if let Some(pos) = inner.order.iter().position(|k| k == text) {
                    inner.order.remove(pos);
                }
                inner.order.push_back(text.to_string());
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly compiled plan, evicting the least recently used
    /// entries past capacity.
    pub fn insert(&self, text: &str, compiled: Arc<Compiled>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        if inner.map.insert(text.to_string(), compiled).is_none() {
            inner.order.push_back(text.to_string());
        }
        while inner.map.len() > self.capacity {
            let Some(evicted) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&evicted);
        }
    }

    /// Hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached plans right now.
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// Whether the cache currently holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One completed request: which query ran and how long it took. On a
/// plan-cache miss that is compile + stream-serialize (the Table 3
/// total); on a hit it is cache lookup + stream-serialize.
#[derive(Debug, Clone, Copy)]
pub struct RequestMeasurement {
    /// Query number (1–20).
    pub query: usize,
    /// Content epoch of the snapshot the request was pinned to (always 0
    /// on a read-only store).
    pub epoch: u64,
    /// End-to-end request latency (through serialization of the last
    /// byte).
    pub latency: Duration,
    /// Time to the first serialized result item — what a streaming client
    /// waits before its first byte. Equals `latency` for empty results.
    pub first_item: Duration,
    /// Result cardinality (sanity signal: concurrent runs must agree with
    /// sequential ones).
    pub result_items: usize,
    /// Serialized result bytes the worker streamed to its sink.
    pub result_bytes: u64,
}

/// Latency distribution of one query within a throughput run.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Query number.
    pub query: usize,
    /// Requests measured.
    pub count: usize,
    /// Median latency.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median time-to-first-item: how long a streaming consumer waited
    /// for the first serialized result item.
    pub ttfi_p50: Duration,
    /// 95th-percentile time-to-first-item.
    pub ttfi_p95: Duration,
    /// Result cardinality the workers observed. Queries are deterministic
    /// per store, so every request of the same query must agree —
    /// [`QueryService::run_mix`] panics on divergence (a thread-safety
    /// bug), making this directly comparable to a sequential
    /// `measure_query`.
    pub result_items: usize,
}

/// Everything one closed-loop run produced.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The system serving the requests.
    pub system: SystemId,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Requests completed.
    pub requests: usize,
    /// Wall time from first dispatch to last completion.
    pub elapsed: Duration,
    /// Plan-cache hits during this run (requests that skipped
    /// parse + plan).
    pub plan_cache_hits: u64,
    /// Plan-cache misses during this run (cold compilations).
    pub plan_cache_misses: u64,
    /// Shared-index structures built during this run (element postings,
    /// attribute indexes, join build sides). Zero on a warm service: the
    /// whole point of the store-resident [`xmark_store::IndexManager`].
    pub index_builds: u64,
    /// Probes served from already-built shared index structures during
    /// this run.
    pub index_hits: u64,
    /// Total serialized result bytes the workers streamed.
    pub result_bytes: u64,
    /// Per-query latency distributions, ordered by query number.
    pub per_query: Vec<LatencyStats>,
}

impl ThroughputReport {
    /// Aggregate queries per second.
    pub fn qps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Fraction of requests served from the plan cache (0.0 when the
    /// cache is disabled or the run made no lookups).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }

    /// The latency stats for one query.
    pub fn stats(&self, query: usize) -> Option<&LatencyStats> {
        self.per_query.iter().find(|s| s.query == query)
    }
}

/// What a mixed read/write closed-loop run produced: the reader-side
/// throughput report plus the writer lane's commit latencies.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// The reader side, identical in shape to a read-only run.
    pub read: ThroughputReport,
    /// Commits the writer lane completed during the run.
    pub commits: usize,
    /// Median commit latency (zero when no commit ran).
    pub commit_p50: Duration,
    /// 95th-percentile commit latency.
    pub commit_p95: Duration,
    /// Slowest commit.
    pub commit_max: Duration,
    /// Distinct snapshot epochs the readers pinned — at least 2 proves
    /// reads genuinely overlapped commits.
    pub epochs_observed: usize,
}

enum Job {
    /// One query request.
    Run(usize),
    /// A batch of query requests served back-to-back by one worker: one
    /// channel round-trip and one snapshot-source touch per batch instead
    /// of per request, with one [`RequestMeasurement`] still reported per
    /// query (see [`QueryService::run_mix_batched`]).
    Batch(Vec<usize>),
}

/// A fixed pool of query workers bound to one shared store source.
///
/// Dropping the service closes the job channel; workers drain what is
/// left and exit, and the drop joins them.
pub struct QueryService {
    system: SystemId,
    workers: usize,
    /// The snapshot that was current at service start — the read-only
    /// fast path resolves to exactly this store on every request.
    store: Arc<dyn XmlStore>,
    source: Arc<dyn StoreSource>,
    cache: Arc<PlanCache>,
    jobs: Option<mpsc::Sender<Job>>,
    results: mpsc::Receiver<RequestMeasurement>,
    handles: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Spawn `workers` threads serving queries against `store`, with the
    /// default-capacity plan cache.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn start(store: Arc<dyn XmlStore>, workers: usize) -> Self {
        Self::start_with_cache(store, workers, DEFAULT_PLAN_CACHE)
    }

    /// Spawn a pool with an explicit plan-cache capacity. Capacity 0
    /// disables caching, forcing a cold parse + plan per request — the
    /// baseline the throughput comparison measures against.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn start_with_cache(
        store: Arc<dyn XmlStore>,
        workers: usize,
        cache_capacity: usize,
    ) -> Self {
        Self::start_source(Arc::new(store), workers, cache_capacity)
    }

    /// Spawn a pool over a [`StoreSource`]: every request pins whatever
    /// snapshot the source publishes at dispatch time, which is how the
    /// pool keeps serving consistent reads while a writer commits new
    /// epochs through a versioned store (see the `xmark-txn` crate).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn start_source(
        source: Arc<dyn StoreSource>,
        workers: usize,
        cache_capacity: usize,
    ) -> Self {
        assert!(workers > 0, "a query service needs at least one worker");
        let store = source.snapshot();
        let system = store.system();
        let cache = Arc::new(PlanCache::new(cache_capacity));
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::channel::<RequestMeasurement>();
        let handles = (0..workers)
            .map(|worker| {
                let source = Arc::clone(&source);
                let cache = Arc::clone(&cache);
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                thread::spawn(move || worker_loop(worker, &*source, &cache, &job_rx, &result_tx))
            })
            .collect();
        QueryService {
            system,
            workers,
            store,
            source,
            cache,
            jobs: Some(job_tx),
            results: result_rx,
            handles,
        }
    }

    /// The snapshot that was current when the service started. On a
    /// read-only store this is *the* store; on a versioned source later
    /// requests may pin newer epochs.
    pub fn store(&self) -> &Arc<dyn XmlStore> {
        &self.store
    }

    /// Explicit index warmup: eagerly build the store-walk indexes
    /// (element postings + `@id` values) off the request path, returning
    /// the build time. Join-side value indexes warm on their first
    /// probing request; after one pass of a mix, a service performs zero
    /// index builds ([`ThroughputReport::index_builds`]).
    pub fn build_indexes(&self) -> Duration {
        let start = Instant::now();
        let store = self.source.snapshot();
        store.indexes().build_all(store.as_ref());
        start.elapsed()
    }

    /// The system this pool serves.
    pub fn system(&self) -> SystemId {
        self.system
    }

    /// Pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Execute `requests` requests cycling through the query `mix`
    /// closed-loop, and aggregate latencies and QPS.
    ///
    /// # Panics
    /// Panics if the mix is empty or a query fails (all twenty canonical
    /// queries are tested to run on every backend).
    pub fn run_mix(&self, mix: &[usize], requests: usize) -> ThroughputReport {
        self.run_loop(mix, requests, 1, 0, &mut || None).read
    }

    /// [`QueryService::run_mix`] with request batching: the front end
    /// groups consecutive requests into [`Job::Batch`]es of `batch`
    /// queries, so a worker pays one channel round-trip and one snapshot
    /// pin per batch instead of per request. Latencies are still measured
    /// and reported per query; `batch == 1` is exactly `run_mix`.
    ///
    /// # Panics
    /// As [`QueryService::run_mix`]; additionally if `batch` is zero.
    pub fn run_mix_batched(
        &self,
        mix: &[usize],
        requests: usize,
        batch: usize,
    ) -> ThroughputReport {
        assert!(batch > 0, "batch size must be positive");
        self.run_loop(mix, requests, batch, 0, &mut || None).read
    }

    /// Execute a closed-loop **mixed** run: readers cycle through `mix`
    /// on the worker pool while this (collector) thread interleaves
    /// writer commits so that roughly `write_pct` commits happen per 100
    /// completed reads. `write` performs one commit against the shared
    /// versioned store and returns its latency, or `None` once the
    /// writer has nothing left to do.
    ///
    /// The reads and the commits genuinely overlap: workers keep
    /// draining the queued read jobs on their own threads while the
    /// collector blocks inside `write`. Every read measurement carries
    /// the epoch of the snapshot it pinned, and cardinality/byte counts
    /// are asserted identical **per (query, epoch)** — a read that
    /// observed a torn or partial commit would diverge from its
    /// epoch-mates and panic the run.
    ///
    /// # Panics
    /// Panics as [`QueryService::run_mix`] does, and additionally when
    /// two requests pinned to the same epoch disagree on a query's
    /// result.
    pub fn run_mixed(
        &self,
        mix: &[usize],
        requests: usize,
        write_pct: u32,
        write: &mut dyn FnMut() -> Option<Duration>,
    ) -> MixedReport {
        self.run_loop(mix, requests, 1, write_pct, write)
    }

    fn run_loop(
        &self,
        mix: &[usize],
        requests: usize,
        batch: usize,
        write_pct: u32,
        write: &mut dyn FnMut() -> Option<Duration>,
    ) -> MixedReport {
        assert!(
            !mix.is_empty(),
            "the query mix must name at least one query"
        );
        let jobs = self.jobs.as_ref().expect("service is running");
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let IndexStats {
            builds: index_builds_before,
            hits: index_hits_before,
        } = self.store.indexes().stats();
        let start = Instant::now();
        let mut i = 0;
        while i < requests {
            let end = (i + batch).min(requests);
            let job = if end - i == 1 {
                Job::Run(mix[i % mix.len()])
            } else {
                Job::Batch((i..end).map(|r| mix[r % mix.len()]).collect())
            };
            jobs.send(job).expect("workers outlive the run");
            i = end;
        }
        // Per (query, epoch): (latency, time-to-first-item) samples plus
        // the result cardinality/bytes every same-epoch request must
        // agree on — the snapshot-consistency check.
        type QuerySamples = (Vec<(Duration, Duration)>, usize, u64);
        let mut by_query: HashMap<(usize, u64), QuerySamples> = HashMap::new();
        let mut result_bytes = 0u64;
        let mut commit_latencies: Vec<Duration> = Vec::new();
        let mut writer_done = write_pct == 0;
        for received in 0..requests {
            let m = self.recv_measurement();
            result_bytes += m.result_bytes;
            let entry = by_query
                .entry((m.query, m.epoch))
                .or_insert_with(|| (Vec::new(), m.result_items, m.result_bytes));
            entry.0.push((m.latency, m.first_item));
            assert_eq!(
                entry.1, m.result_items,
                "Q{} returned differing cardinalities across concurrent requests \
                 pinned to epoch {} — snapshot-isolation bug",
                m.query, m.epoch
            );
            assert_eq!(
                entry.2, m.result_bytes,
                "Q{} streamed differing byte counts across concurrent requests \
                 pinned to epoch {} — snapshot-isolation bug",
                m.query, m.epoch
            );
            // Writer lane: commit while the workers keep reading.
            while !writer_done
                && commit_latencies.len() as u64 * 100 < (received as u64 + 1) * write_pct as u64
            {
                match write() {
                    Some(latency) => commit_latencies.push(latency),
                    None => writer_done = true,
                }
            }
        }
        let elapsed = start.elapsed();
        let epochs_observed = by_query
            .keys()
            .map(|&(_, epoch)| epoch)
            .collect::<std::collections::HashSet<u64>>()
            .len();
        // Merge epochs per query for the latency distributions; report
        // the newest epoch's cardinality.
        type Merged = (Vec<(Duration, Duration)>, u64, usize);
        let mut merged: HashMap<usize, Merged> = HashMap::new();
        for ((query, epoch), (samples, result_items, _)) in by_query {
            let entry = merged
                .entry(query)
                .or_insert((Vec::new(), epoch, result_items));
            entry.0.extend(samples);
            if epoch >= entry.1 {
                entry.1 = epoch;
                entry.2 = result_items;
            }
        }
        let mut per_query: Vec<LatencyStats> = merged
            .into_iter()
            .map(|(query, (samples, _, result_items))| latency_stats(query, samples, result_items))
            .collect();
        per_query.sort_by_key(|s| s.query);
        let index_after = self.store.indexes().stats();
        let read = ThroughputReport {
            system: self.system,
            workers: self.workers,
            requests,
            elapsed,
            plan_cache_hits: self.cache.hits() - hits_before,
            plan_cache_misses: self.cache.misses() - misses_before,
            index_builds: index_after.builds - index_builds_before,
            index_hits: index_after.hits - index_hits_before,
            result_bytes,
            per_query,
        };
        commit_latencies.sort_unstable();
        let commit_at = |p: f64| -> Duration {
            if commit_latencies.is_empty() {
                Duration::ZERO
            } else {
                let rank = ((p * commit_latencies.len() as f64).ceil() as usize)
                    .clamp(1, commit_latencies.len());
                commit_latencies[rank - 1]
            }
        };
        MixedReport {
            commits: commit_latencies.len(),
            commit_p50: commit_at(0.50),
            commit_p95: commit_at(0.95),
            commit_max: commit_latencies.last().copied().unwrap_or(Duration::ZERO),
            epochs_observed,
            read,
        }
    }

    /// Receive one measurement, detecting worker death instead of
    /// blocking forever: a panicked worker never sends its in-flight
    /// result, and the *other* live workers keep the result channel open,
    /// so a plain `recv` would deadlock.
    fn recv_measurement(&self) -> RequestMeasurement {
        loop {
            match self.results.recv_timeout(Duration::from_millis(100)) {
                Ok(m) => return m,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Workers only exit when the job channel closes, which
                    // cannot happen mid-run — a finished handle means a
                    // panic.
                    assert!(
                        !self.handles.iter().any(JoinHandle::is_finished),
                        "a worker died mid-run (query panic?)"
                    );
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("every worker died mid-run (query panic?)")
                }
            }
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Closing the sender ends every worker's receive loop.
        self.jobs.take();
        for handle in self.handles.drain(..) {
            // Propagate worker panics instead of losing them.
            if let Err(panic) = handle.join() {
                if !thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// The sink production workers stream serialized results into (a network
/// worker would hand the same `fmt::Write` surface to its socket): bytes
/// are not retained, only the instant of the first write — the
/// client-visible time-to-first-byte.
#[derive(Default)]
struct ByteSink {
    first_write: Option<Instant>,
    bytes: u64,
}

impl std::fmt::Write for ByteSink {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        if self.first_write.is_none() {
            self.first_write = Some(Instant::now());
        }
        self.bytes += s.len() as u64;
        Ok(())
    }
}

fn worker_loop(
    worker: usize,
    source: &dyn StoreSource,
    cache: &PlanCache,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    results: &mpsc::Sender<RequestMeasurement>,
) {
    // Per-shard warmup affinity: on a sharded union every worker eagerly
    // builds the store-walk indexes of *its* shard part (round-robin by
    // worker id), so warmup cost is spread across the pool instead of
    // paid serially inside the first scattered request. Monolithic
    // stores skip this — explicit warmup stays `build_indexes`.
    {
        let snap = source.snapshot();
        let parts = snap.shard_part_count();
        if parts >= 2 {
            if let Some(part) = snap.shard_part(worker % parts) {
                part.indexes().build_all(part);
            }
        }
    }
    loop {
        // Hold the lock only for the dequeue, never during execution.
        let job = lock(jobs).recv();
        let numbers: Vec<usize> = match job {
            Ok(Job::Run(number)) => vec![number],
            Ok(Job::Batch(numbers)) => numbers,
            Err(_) => return, // channel closed: the service is shutting down
        };
        // Pin one snapshot per batch: a commit landing mid-batch
        // publishes a *new* snapshot and cannot tear this one. On a
        // read-only store the pin is the store itself. (A batch of one —
        // the unbatched path — pins per request, unchanged.)
        let store = source.snapshot();
        let epoch = store.content_epoch();
        for number in numbers {
            let q = query(number);
            let start = Instant::now();
            // Plans are valid per (snapshot epoch, query): an epoch bump
            // invalidates every cached plan implicitly through the key, so
            // a plan compiled against dropped indexes is never reused.
            let key = format!("{epoch}|{}", q.text);
            // A cache hit reuses the whole compiled artifact: no parse, no
            // metadata resolution, no planning. Two workers racing on the
            // same cold query both compile — harmless, last insert wins.
            let compiled = match cache.lookup(&key) {
                Some(compiled) => compiled,
                None => {
                    let compiled = Arc::new(
                        compile(q.text, store.as_ref())
                            .unwrap_or_else(|e| panic!("Q{number} failed to compile: {e}")),
                    );
                    cache.insert(&key, Arc::clone(&compiled));
                    compiled
                }
            };
            let mut sink = ByteSink::default();
            let items = if store.shard_part_count() >= 2 {
                // Sharded union: scatter the plan across the shard parts
                // (shard-parallel modes run one thread per part, gather
                // plans fall through) and serialize the merged result.
                let seq = execute_scattered(&compiled, store.as_ref())
                    .unwrap_or_else(|e| panic!("Q{number} failed to execute: {e}"));
                let _ = xmark_query::write_sequence(store.as_ref(), &seq, &mut sink);
                seq.len()
            } else {
                // Monolithic: stream — `write_to` serializes items
                // straight off the operator cursors into the sink, no
                // materialized result sequence — and the sink's
                // first-write timestamp is the client-visible TTFB.
                let stats = xmark_query::stream(&compiled, store.as_ref())
                    .write_to(&mut sink)
                    .unwrap_or_else(|e| panic!("Q{number} failed to execute: {e}"));
                stats.items
            };
            let latency = start.elapsed();
            if results
                .send(RequestMeasurement {
                    query: number,
                    epoch,
                    latency,
                    first_item: sink
                        .first_write
                        .map_or(latency, |at| at.duration_since(start)),
                    result_items: items,
                    result_bytes: sink.bytes,
                })
                .is_err()
            {
                return; // collector gone: nothing left to report to
            }
        }
    }
}

/// Aggregate one query's `(latency, time-to-first-item)` samples.
fn latency_stats(
    query: usize,
    samples: Vec<(Duration, Duration)>,
    result_items: usize,
) -> LatencyStats {
    let count = samples.len();
    let mut latencies: Vec<Duration> = samples.iter().map(|(l, _)| *l).collect();
    let mut firsts: Vec<Duration> = samples.iter().map(|(_, f)| *f).collect();
    latencies.sort_unstable();
    firsts.sort_unstable();
    let total: Duration = latencies.iter().sum();
    let percentile = |sorted: &[Duration], p: f64| -> Duration {
        // Nearest-rank on the sorted sample.
        let rank = ((p * count as f64).ceil() as usize).clamp(1, count);
        sorted[rank - 1]
    };
    LatencyStats {
        query,
        count,
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        mean: total / count.max(1) as u32,
        ttfi_p50: percentile(&firsts, 0.50),
        ttfi_p95: percentile(&firsts, 0.95),
        result_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{canonical_output, generate_document, load_system};

    #[test]
    fn service_completes_a_closed_loop_run() {
        let doc = generate_document(0.001);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::D, &doc.xml).store);
        let service = QueryService::start(Arc::clone(&store), 2);
        assert_eq!(service.workers(), 2);
        assert_eq!(service.system(), SystemId::D);
        let report = service.run_mix(&[1, 6], 10);
        assert_eq!(report.requests, 10);
        assert_eq!(report.per_query.len(), 2);
        let q1 = report.stats(1).unwrap();
        assert_eq!(q1.count, 5);
        assert!(q1.p50 <= q1.p95 && q1.p95 <= q1.p99);
        assert!(report.qps() > 0.0);
        // The pool survives a second run on the same store.
        let again = service.run_mix(&[17], 4);
        assert_eq!(again.stats(17).unwrap().count, 4);
    }

    #[test]
    fn concurrent_results_match_sequential() {
        let doc = generate_document(0.001);
        let loaded = load_system(SystemId::G, &doc.xml);
        let expected = canonical_output(loaded.store.as_ref(), 5);
        let store: Arc<dyn XmlStore> = Arc::from(loaded.store);
        let service = QueryService::start(Arc::clone(&store), 3);
        let report = service.run_mix(&[5], 9);
        drop(service);
        // Cardinality seen by the workers matches a fresh sequential run.
        let fresh = canonical_output(store.as_ref(), 5);
        assert_eq!(fresh, expected);
        assert_eq!(report.stats(5).unwrap().count, 9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let doc = generate_document(0.001);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::G, &doc.xml).store);
        let _ = QueryService::start(store, 0);
    }

    #[test]
    fn plan_cache_hits_after_first_compilation() {
        let doc = generate_document(0.001);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::D, &doc.xml).store);
        let service = QueryService::start(store, 1);
        let report = service.run_mix(&[1, 6], 10);
        // One cold miss per distinct query, hits for everything after.
        assert_eq!(report.plan_cache_misses, 2);
        assert_eq!(report.plan_cache_hits, 8);
        assert!((report.plan_cache_hit_rate() - 0.8).abs() < 1e-9);
        assert_eq!(service.plan_cache().len(), 2);
        // A second run over the same mix is fully warm.
        let again = service.run_mix(&[1, 6], 6);
        assert_eq!(again.plan_cache_misses, 0);
        assert_eq!(again.plan_cache_hits, 6);
        assert!((again.plan_cache_hit_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_plan_cache_always_misses() {
        let doc = generate_document(0.001);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::G, &doc.xml).store);
        let service = QueryService::start_with_cache(store, 1, 0);
        let report = service.run_mix(&[17], 5);
        assert_eq!(report.plan_cache_hits, 0);
        assert_eq!(report.plan_cache_misses, 5);
        assert_eq!(report.plan_cache_hit_rate(), 0.0);
        assert!(service.plan_cache().is_empty());
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let doc = generate_document(0.001);
        let store = load_system(SystemId::G, &doc.xml).store;
        let compiled =
            |n: usize| Arc::new(compile(crate::queries::query(n).text, store.as_ref()).unwrap());
        cache.insert("a", compiled(1));
        cache.insert("b", compiled(6));
        assert!(cache.lookup("a").is_some()); // refresh "a": "b" is now LRU
        cache.insert("c", compiled(17));
        assert!(cache.lookup("b").is_none(), "LRU entry evicted");
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let stats = latency_stats(
            3,
            (1..=100)
                .map(|ms| (Duration::from_millis(ms), Duration::from_millis(ms / 2)))
                .collect::<Vec<_>>(),
            7,
        );
        assert_eq!(stats.count, 100);
        assert_eq!(stats.result_items, 7);
        assert_eq!(stats.p50, Duration::from_millis(50));
        assert_eq!(stats.p95, Duration::from_millis(95));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert_eq!(stats.ttfi_p50, Duration::from_millis(25));
        assert_eq!(stats.ttfi_p95, Duration::from_millis(47));
    }

    #[test]
    fn warm_service_performs_zero_index_builds() {
        // The acceptance probe for the store-resident index layer:
        // repeated execution of the join-heavy queries through the
        // service performs zero index rebuilds after warmup.
        let doc = generate_document(0.002);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::A, &doc.xml).store);
        let service = QueryService::start(Arc::clone(&store), 2);
        let build_time = service.build_indexes();
        assert!(build_time.as_nanos() > 0);
        let mix = [8, 9, 10, 11, 12];
        let cold = service.run_mix(&mix, mix.len());
        // The warmup pass may build the join-side value indexes once…
        let warm = service.run_mix(&mix, mix.len() * 3);
        // …after which every request probes shared structures.
        assert_eq!(
            warm.index_builds, 0,
            "warm service must not rebuild indexes (cold pass built {})",
            cold.index_builds
        );
        assert!(
            warm.index_hits > 0,
            "warm requests must probe the shared indexes"
        );
    }

    #[test]
    fn batched_runs_agree_with_unbatched() {
        let doc = generate_document(0.001);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::D, &doc.xml).store);
        let service = QueryService::start(Arc::clone(&store), 2);
        let unbatched = service.run_mix(&[1, 6, 17], 12);
        let batched = service.run_mix_batched(&[1, 6, 17], 12, 4);
        assert_eq!(batched.requests, 12);
        for q in [1, 6, 17] {
            let a = unbatched.stats(q).unwrap();
            let b = batched.stats(q).unwrap();
            assert_eq!(a.count, b.count, "Q{q} request count differs batched");
            assert_eq!(
                a.result_items, b.result_items,
                "Q{q} cardinality differs batched"
            );
        }
        // A batch larger than the whole run degenerates to one job.
        let one_job = service.run_mix_batched(&[6], 5, 64);
        assert_eq!(one_job.stats(6).unwrap().count, 5);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_is_rejected() {
        let doc = generate_document(0.001);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::D, &doc.xml).store);
        let service = QueryService::start(store, 1);
        let _ = service.run_mix_batched(&[1], 4, 0);
    }

    #[test]
    fn sharded_service_scatters_and_matches_monolithic() {
        let session = crate::spec::Benchmark::at_factor(0.001).generate();
        let mono = session.load(SystemId::A);
        // Reference: cardinality + canonical output per query, sequential.
        let mix = [1usize, 5, 6];
        let expected: Vec<String> = mix
            .iter()
            .map(|&q| canonical_output(mono.store.as_ref(), q))
            .collect();
        let sharded = session.load_sharded_shared(SystemId::A, 2);
        assert!(sharded.shard_part_count() >= 2, "union exposes its parts");
        let service = QueryService::start(Arc::clone(&sharded), 2);
        let report = service.run_mix_batched(&mix, 9, 3);
        assert_eq!(report.requests, 9);
        for (&q, want) in mix.iter().zip(&expected) {
            let got = canonical_output(sharded.as_ref(), q);
            assert_eq!(&got, want, "Q{q} sharded union output diverged");
            let stats = report.stats(q).unwrap();
            assert_eq!(stats.count, 3);
        }
    }

    #[test]
    fn workers_stream_bytes_and_report_ttfi() {
        let doc = generate_document(0.001);
        let loaded = load_system(SystemId::D, &doc.xml);
        // The sequential reference: serialized size of Q5's result.
        let compiled = compile(crate::queries::query(5).text, loaded.store.as_ref()).unwrap();
        let expected = xmark_query::serialize_sequence(
            loaded.store.as_ref(),
            &xmark_query::execute(&compiled, loaded.store.as_ref()).unwrap(),
        );
        let store: Arc<dyn XmlStore> = Arc::from(loaded.store);
        let service = QueryService::start(store, 2);
        let report = service.run_mix(&[5], 6);
        assert_eq!(report.result_bytes, 6 * expected.len() as u64);
        let stats = report.stats(5).unwrap();
        assert!(stats.ttfi_p50 <= stats.p50, "first item precedes the last");
        assert!(stats.ttfi_p95 <= stats.p95);
    }
}
