//! The concurrent query service: a fixed worker pool executing a
//! closed-loop mix of benchmark queries against one shared store.
//!
//! The paper's Table 3 measures single-user latency; this module extends
//! the architecture comparison to *throughput under load* — the axis a
//! production deployment cares about. Every backend is `Send + Sync`
//! (compile-time asserted in `xmark-store`), so a loaded store is shared
//! across workers behind an `Arc<dyn XmlStore>` with no copying and no
//! locking on the read path: the only runtime mutation anywhere in a
//! store is the relaxed atomic metadata counter.
//!
//! Architecture: [`QueryService::start`] spawns N OS threads. Jobs (query
//! numbers) travel over an `mpsc` channel shared through a mutexed
//! receiver; finished measurements return over a second channel. Each
//! request is compiled *and* executed by the worker, so a request's
//! latency matches the compile+execute total of Table 3. A closed-loop
//! run keeps the queue non-empty, which is equivalent to N concurrent
//! always-on client streams.
//!
//! ```
//! use std::sync::Arc;
//! use xmark::prelude::*;
//! use xmark::service::QueryService;
//!
//! let session = Benchmark::at_scale("mini").generate();
//! let store: Arc<dyn XmlStore> = Arc::from(session.load(SystemId::D).store);
//! let service = QueryService::start(store, 2);
//! let report = service.run_mix(&[1, 6, 17], 30);
//! assert_eq!(report.requests, 30);
//! assert!(report.qps() > 0.0);
//! ```

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use xmark_query::{compile, execute};
use xmark_store::{SystemId, XmlStore};

use crate::queries::query;

/// One completed request: which query ran and how long it took
/// (compile + execute, the Table 3 total).
#[derive(Debug, Clone, Copy)]
pub struct RequestMeasurement {
    /// Query number (1–20).
    pub query: usize,
    /// End-to-end request latency.
    pub latency: Duration,
    /// Result cardinality (sanity signal: concurrent runs must agree with
    /// sequential ones).
    pub result_items: usize,
}

/// Latency distribution of one query within a throughput run.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Query number.
    pub query: usize,
    /// Requests measured.
    pub count: usize,
    /// Median latency.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Result cardinality the workers observed. Queries are deterministic
    /// per store, so every request of the same query must agree —
    /// [`QueryService::run_mix`] panics on divergence (a thread-safety
    /// bug), making this directly comparable to a sequential
    /// `measure_query`.
    pub result_items: usize,
}

/// Everything one closed-loop run produced.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The system serving the requests.
    pub system: SystemId,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Requests completed.
    pub requests: usize,
    /// Wall time from first dispatch to last completion.
    pub elapsed: Duration,
    /// Per-query latency distributions, ordered by query number.
    pub per_query: Vec<LatencyStats>,
}

impl ThroughputReport {
    /// Aggregate queries per second.
    pub fn qps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// The latency stats for one query.
    pub fn stats(&self, query: usize) -> Option<&LatencyStats> {
        self.per_query.iter().find(|s| s.query == query)
    }
}

enum Job {
    Run(usize),
}

/// A fixed pool of query workers bound to one shared store.
///
/// Dropping the service closes the job channel; workers drain what is
/// left and exit, and the drop joins them.
pub struct QueryService {
    system: SystemId,
    workers: usize,
    jobs: Option<mpsc::Sender<Job>>,
    results: mpsc::Receiver<RequestMeasurement>,
    handles: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Spawn `workers` threads serving queries against `store`.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn start(store: Arc<dyn XmlStore>, workers: usize) -> Self {
        assert!(workers > 0, "a query service needs at least one worker");
        let system = store.system();
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::channel::<RequestMeasurement>();
        let handles = (0..workers)
            .map(|_| {
                let store = Arc::clone(&store);
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                thread::spawn(move || worker_loop(store, &job_rx, &result_tx))
            })
            .collect();
        QueryService {
            system,
            workers,
            jobs: Some(job_tx),
            results: result_rx,
            handles,
        }
    }

    /// The system this pool serves.
    pub fn system(&self) -> SystemId {
        self.system
    }

    /// Pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `requests` requests cycling through the query `mix`
    /// closed-loop, and aggregate latencies and QPS.
    ///
    /// # Panics
    /// Panics if the mix is empty or a query fails (all twenty canonical
    /// queries are tested to run on every backend).
    pub fn run_mix(&self, mix: &[usize], requests: usize) -> ThroughputReport {
        assert!(
            !mix.is_empty(),
            "the query mix must name at least one query"
        );
        let jobs = self.jobs.as_ref().expect("service is running");
        let start = Instant::now();
        for i in 0..requests {
            jobs.send(Job::Run(mix[i % mix.len()]))
                .expect("workers outlive the run");
        }
        let mut by_query: HashMap<usize, (Vec<Duration>, usize)> = HashMap::new();
        for _ in 0..requests {
            let m = self.recv_measurement();
            let entry = by_query
                .entry(m.query)
                .or_insert_with(|| (Vec::new(), m.result_items));
            entry.0.push(m.latency);
            assert_eq!(
                entry.1, m.result_items,
                "Q{} returned differing cardinalities across concurrent requests \
                 — thread-safety bug",
                m.query
            );
        }
        let elapsed = start.elapsed();
        let mut per_query: Vec<LatencyStats> = by_query
            .into_iter()
            .map(|(query, (latencies, result_items))| latency_stats(query, latencies, result_items))
            .collect();
        per_query.sort_by_key(|s| s.query);
        ThroughputReport {
            system: self.system,
            workers: self.workers,
            requests,
            elapsed,
            per_query,
        }
    }

    /// Receive one measurement, detecting worker death instead of
    /// blocking forever: a panicked worker never sends its in-flight
    /// result, and the *other* live workers keep the result channel open,
    /// so a plain `recv` would deadlock.
    fn recv_measurement(&self) -> RequestMeasurement {
        loop {
            match self.results.recv_timeout(Duration::from_millis(100)) {
                Ok(m) => return m,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Workers only exit when the job channel closes, which
                    // cannot happen mid-run — a finished handle means a
                    // panic.
                    assert!(
                        !self.handles.iter().any(JoinHandle::is_finished),
                        "a worker died mid-run (query panic?)"
                    );
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("every worker died mid-run (query panic?)")
                }
            }
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Closing the sender ends every worker's receive loop.
        self.jobs.take();
        for handle in self.handles.drain(..) {
            // Propagate worker panics instead of losing them.
            if let Err(panic) = handle.join() {
                if !thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

fn worker_loop(
    store: Arc<dyn XmlStore>,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    results: &mpsc::Sender<RequestMeasurement>,
) {
    loop {
        // Hold the lock only for the dequeue, never during execution.
        let job = jobs.lock().expect("job queue poisoned").recv();
        let Ok(Job::Run(number)) = job else {
            return; // channel closed: the service is shutting down
        };
        let q = query(number);
        let start = Instant::now();
        let compiled = compile(q.text, store.as_ref())
            .unwrap_or_else(|e| panic!("Q{number} failed to compile: {e}"));
        let result = execute(&compiled, store.as_ref())
            .unwrap_or_else(|e| panic!("Q{number} failed to execute: {e}"));
        let latency = start.elapsed();
        if results
            .send(RequestMeasurement {
                query: number,
                latency,
                result_items: result.len(),
            })
            .is_err()
        {
            return; // collector gone: nothing left to report to
        }
    }
}

fn latency_stats(query: usize, mut latencies: Vec<Duration>, result_items: usize) -> LatencyStats {
    latencies.sort_unstable();
    let count = latencies.len();
    let total: Duration = latencies.iter().sum();
    let percentile = |p: f64| -> Duration {
        // Nearest-rank on the sorted sample.
        let rank = ((p * count as f64).ceil() as usize).clamp(1, count);
        latencies[rank - 1]
    };
    LatencyStats {
        query,
        count,
        p50: percentile(0.50),
        p95: percentile(0.95),
        p99: percentile(0.99),
        mean: total / count.max(1) as u32,
        result_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{canonical_output, generate_document, load_system};

    #[test]
    fn service_completes_a_closed_loop_run() {
        let doc = generate_document(0.001);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::D, &doc.xml).store);
        let service = QueryService::start(Arc::clone(&store), 2);
        assert_eq!(service.workers(), 2);
        assert_eq!(service.system(), SystemId::D);
        let report = service.run_mix(&[1, 6], 10);
        assert_eq!(report.requests, 10);
        assert_eq!(report.per_query.len(), 2);
        let q1 = report.stats(1).unwrap();
        assert_eq!(q1.count, 5);
        assert!(q1.p50 <= q1.p95 && q1.p95 <= q1.p99);
        assert!(report.qps() > 0.0);
        // The pool survives a second run on the same store.
        let again = service.run_mix(&[17], 4);
        assert_eq!(again.stats(17).unwrap().count, 4);
    }

    #[test]
    fn concurrent_results_match_sequential() {
        let doc = generate_document(0.001);
        let loaded = load_system(SystemId::G, &doc.xml);
        let expected = canonical_output(loaded.store.as_ref(), 5);
        let store: Arc<dyn XmlStore> = Arc::from(loaded.store);
        let service = QueryService::start(Arc::clone(&store), 3);
        let report = service.run_mix(&[5], 9);
        drop(service);
        // Cardinality seen by the workers matches a fresh sequential run.
        let fresh = canonical_output(store.as_ref(), 5);
        assert_eq!(fresh, expected);
        assert_eq!(report.stats(5).unwrap().count, 9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let doc = generate_document(0.001);
        let store: Arc<dyn XmlStore> = Arc::from(load_system(SystemId::G, &doc.xml).store);
        let _ = QueryService::start(store, 0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let stats = latency_stats(
            3,
            (1..=100).map(Duration::from_millis).collect::<Vec<_>>(),
            7,
        );
        assert_eq!(stats.count, 100);
        assert_eq!(stats.result_items, 7);
        assert_eq!(stats.p50, Duration::from_millis(50));
        assert_eq!(stats.p95, Duration::from_millis(95));
        assert_eq!(stats.p99, Duration::from_millis(99));
    }
}
