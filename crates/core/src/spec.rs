//! The benchmark specification: scale presets and the workload driver.
//!
//! Fig. 3 of the paper names four document scales; [`Scale`] reproduces
//! them (plus the two miniature scales of Fig. 4's embedded-system
//! experiment). The load/measure functions tie a scale to a set of
//! systems and queries and produce the measurements the harness formats
//! into the paper's tables.

use std::time::{Duration, Instant};

use xmark_gen::{GenStats, Generator, GeneratorConfig};
use xmark_query::{compile, execute, Sequence};
use xmark_store::{build_store, SystemId, XmlStore};

use crate::queries::query;

/// A named document scale (paper Fig. 3 + the Fig. 4 miniatures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Preset name.
    pub name: &'static str,
    /// Scaling factor.
    pub factor: f64,
    /// Nominal document size, as the paper states it.
    pub nominal: &'static str,
}

/// The scales of Fig. 3, plus Fig. 4's 100 kB / 1 MB miniatures.
pub const SCALES: [Scale; 6] = [
    Scale { name: "mini", factor: 0.001, nominal: "100 kB" },
    Scale { name: "small", factor: 0.01, nominal: "1 MB" },
    Scale { name: "tiny", factor: 0.1, nominal: "10 MB" },
    Scale { name: "standard", factor: 1.0, nominal: "100 MB" },
    Scale { name: "large", factor: 10.0, nominal: "1 GB" },
    Scale { name: "huge", factor: 100.0, nominal: "10 GB" },
];

/// Look up a scale preset by name.
pub fn scale(name: &str) -> Option<Scale> {
    SCALES.iter().copied().find(|s| s.name == name)
}

/// Result of generating a document.
#[derive(Debug, Clone)]
pub struct GeneratedDocument {
    /// The XML text.
    pub xml: String,
    /// Generator statistics.
    pub stats: GenStats,
    /// Wall time the generator took.
    pub elapsed: Duration,
}

/// Generate the canonical benchmark document at `factor` (seed 0).
pub fn generate_document(factor: f64) -> GeneratedDocument {
    let start = Instant::now();
    let generator = Generator::new(GeneratorConfig::at_factor(factor));
    let xml = generator.to_string();
    let elapsed = start.elapsed();
    let stats = GenStats {
        bytes: xml.len() as u64,
        elements: 0,
        max_depth: 0,
        cardinalities: generator.cardinalities().clone(),
    };
    GeneratedDocument {
        xml,
        stats,
        elapsed,
    }
}

/// One bulkload measurement (a row of the paper's Table 1).
pub struct LoadedStore {
    /// The system.
    pub system: SystemId,
    /// The loaded store.
    pub store: Box<dyn XmlStore>,
    /// Bulkload wall time (parse + conversion + index build).
    pub load_time: Duration,
    /// Resident size of the store's structures.
    pub size_bytes: usize,
}

/// Bulkload `xml` into `system`, measuring Table 1's two columns.
///
/// # Panics
/// Panics if the canonical generated document fails to parse — that would
/// be a generator bug, not a caller error.
pub fn load_system(system: SystemId, xml: &str) -> LoadedStore {
    let start = Instant::now();
    let store = build_store(system, xml).expect("benchmark document must parse");
    let load_time = start.elapsed();
    let size_bytes = store.size_bytes();
    LoadedStore {
        system,
        store,
        load_time,
        size_bytes,
    }
}

/// One query measurement: the compile/execute split of Table 2 and the
/// total of Table 3.
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Query number (1–20).
    pub query: usize,
    /// System measured.
    pub system: SystemId,
    /// Compilation wall time (parse + metadata + optimization).
    pub compile_time: Duration,
    /// Execution wall time.
    pub execute_time: Duration,
    /// Metadata accesses during compilation.
    pub metadata_accesses: u64,
    /// Result cardinality.
    pub result_items: usize,
    /// Serialized result size in bytes (Q10's "more than 10 MB" check).
    pub result_bytes: usize,
}

impl QueryMeasurement {
    /// Total time (Table 3's cell).
    pub fn total(&self) -> Duration {
        self.compile_time + self.execute_time
    }

    /// Compilation share of the total, in percent (Table 2).
    pub fn compile_share_percent(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.compile_time.as_secs_f64() / total
        }
    }
}

/// Run query `number` against a loaded store, measuring both phases.
///
/// # Panics
/// Panics if one of the twenty canonical queries fails to compile or
/// execute — all are tested to run on every backend.
pub fn measure_query(loaded: &LoadedStore, number: usize) -> QueryMeasurement {
    let q = query(number);
    let store = loaded.store.as_ref();

    let compile_start = Instant::now();
    let compiled = compile(q.text, store)
        .unwrap_or_else(|e| panic!("Q{number} failed to compile: {e}"));
    let compile_time = compile_start.elapsed();
    let metadata_accesses = compiled.stats.metadata_accesses;

    let execute_start = Instant::now();
    let result: Sequence = execute(&compiled, store)
        .unwrap_or_else(|e| panic!("Q{number} failed on {}: {e}", loaded.system));
    let execute_time = execute_start.elapsed();

    let rendered = xmark_query::serialize_sequence(store, &result);
    QueryMeasurement {
        query: number,
        system: loaded.system,
        compile_time,
        execute_time,
        metadata_accesses,
        result_items: result.len(),
        result_bytes: rendered.len(),
    }
}

/// Run query `number` and return its canonical output (for equivalence
/// checking).
///
/// # Panics
/// Panics if the query fails to compile or execute.
pub fn canonical_output(store: &dyn XmlStore, number: usize) -> String {
    let q = query(number);
    let compiled = compile(q.text, store)
        .unwrap_or_else(|e| panic!("Q{number} failed to compile: {e}"));
    let result = execute(&compiled, store)
        .unwrap_or_else(|e| panic!("Q{number} failed to execute: {e}"));
    xmark_query::canonicalize(store, &result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_match_figure_3() {
        assert_eq!(scale("standard").unwrap().factor, 1.0);
        assert_eq!(scale("tiny").unwrap().factor, 0.1);
        assert_eq!(scale("large").unwrap().factor, 10.0);
        assert_eq!(scale("huge").unwrap().factor, 100.0);
        assert!(scale("nonsense").is_none());
    }

    #[test]
    fn generate_load_measure_roundtrip() {
        let doc = generate_document(0.001);
        assert!(doc.stats.bytes > 10_000);
        let loaded = load_system(SystemId::D, &doc.xml);
        assert!(loaded.size_bytes > 0);
        let m = measure_query(&loaded, 1);
        assert_eq!(m.query, 1);
        assert_eq!(m.result_items, 1, "Q1 returns person0's name");
        assert!(m.compile_share_percent() >= 0.0);
    }

    #[test]
    fn canonical_outputs_agree_between_two_systems() {
        let doc = generate_document(0.001);
        let d = load_system(SystemId::D, &doc.xml);
        let g = load_system(SystemId::G, &doc.xml);
        for q in [1, 5, 6, 17] {
            assert_eq!(
                canonical_output(d.store.as_ref(), q),
                canonical_output(g.store.as_ref(), q),
                "Q{q} output differs between D and G"
            );
        }
    }
}
