//! The benchmark specification: scale presets and the workload driver.
//!
//! Fig. 3 of the paper names four document scales; [`Scale`] reproduces
//! them (plus the two miniature scales of Fig. 4's embedded-system
//! experiment). The load/measure functions tie a scale to a set of
//! systems and queries and produce the measurements the harness formats
//! into the paper's tables.

use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xmark_gen::{generate_sharded, GenStats, Generator, GeneratorConfig};
use xmark_query::{
    compile, execute_scattered, parse_query, verify_plan_against, CompileStats, Compiled, PlanMode,
    ResultStream, Sequence, StreamStats, VerifyReport,
};
use xmark_store::{build_store, PagedStore, ShardedStore, SystemId, XmlStore, DEFAULT_POOL_PAGES};
use xmark_txn::VersionedStore;

use crate::queries::query;
use crate::service::{QueryService, ThroughputReport};

/// A named document scale (paper Fig. 3 + the Fig. 4 miniatures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Preset name.
    pub name: &'static str,
    /// Scaling factor.
    pub factor: f64,
    /// Nominal document size, as the paper states it.
    pub nominal: &'static str,
}

/// The scales of Fig. 3, plus Fig. 4's 100 kB / 1 MB miniatures.
pub const SCALES: [Scale; 6] = [
    Scale {
        name: "mini",
        factor: 0.001,
        nominal: "100 kB",
    },
    Scale {
        name: "small",
        factor: 0.01,
        nominal: "1 MB",
    },
    Scale {
        name: "tiny",
        factor: 0.1,
        nominal: "10 MB",
    },
    Scale {
        name: "standard",
        factor: 1.0,
        nominal: "100 MB",
    },
    Scale {
        name: "large",
        factor: 10.0,
        nominal: "1 GB",
    },
    Scale {
        name: "huge",
        factor: 100.0,
        nominal: "10 GB",
    },
];

/// Look up a scale preset by name.
pub fn scale(name: &str) -> Option<Scale> {
    SCALES.iter().copied().find(|s| s.name == name)
}

/// Result of generating a document.
#[derive(Debug, Clone)]
pub struct GeneratedDocument {
    /// The XML text.
    pub xml: String,
    /// Generator statistics.
    pub stats: GenStats,
    /// Wall time the generator took.
    pub elapsed: Duration,
}

/// Generate the canonical benchmark document at `factor` (seed 0).
pub fn generate_document(factor: f64) -> GeneratedDocument {
    let start = Instant::now();
    let generator = Generator::new(GeneratorConfig::at_factor(factor));
    let mut buf = Vec::new();
    let stats = generator
        .write(&mut buf)
        .expect("writing to a Vec cannot fail");
    let xml = String::from_utf8(buf).expect("generator emits ASCII");
    let elapsed = start.elapsed();
    GeneratedDocument {
        xml,
        stats,
        elapsed,
    }
}

/// One bulkload measurement (a row of the paper's Table 1).
pub struct LoadedStore {
    /// The system.
    pub system: SystemId,
    /// The loaded store.
    pub store: Box<dyn XmlStore>,
    /// Bulkload wall time (parse + conversion + index build).
    pub load_time: Duration,
    /// Resident size of the store's structures.
    pub size_bytes: usize,
}

/// Bulkload `xml` into `system`, measuring Table 1's two columns.
///
/// # Panics
/// Panics if the canonical generated document fails to parse — that would
/// be a generator bug, not a caller error.
pub fn load_system(system: SystemId, xml: &str) -> LoadedStore {
    let start = Instant::now();
    let store = build_store(system, xml).expect("benchmark document must parse");
    let load_time = start.elapsed();
    let size_bytes = store.size_bytes();
    LoadedStore {
        system,
        store,
        load_time,
        size_bytes,
    }
}

/// Open a previously persisted backend-H page file **cold**: no XML
/// generation, no parse — the header and catalog pages are the only
/// reads until queries arrive. `pool_pages` is the buffer-pool frame
/// budget (`None` = [`DEFAULT_POOL_PAGES`]); `load_time` in the returned
/// row is the open time.
///
/// # Errors
/// I/O failure, a torn bulkload (WAL without its end marker), or page
/// corruption in the header/catalog.
pub fn open_paged(path: &Path, pool_pages: Option<usize>) -> std::io::Result<LoadedStore> {
    let start = Instant::now();
    let store = PagedStore::open(path, pool_pages.unwrap_or(DEFAULT_POOL_PAGES))?;
    let load_time = start.elapsed();
    let size_bytes = store.size_bytes();
    Ok(LoadedStore {
        system: SystemId::H,
        store: Box::new(store),
        load_time,
        size_bytes,
    })
}

/// Open a persisted backend-H page file and wrap it as a
/// [`VersionedStore`] ready for transactions: committed structural
/// updates in the WAL are replayed ([`xmark_txn::recover_paged`]), torn
/// tails are truncated, and uncommitted transactions are discarded — the
/// cold-start crash-recovery path.
///
/// # Errors
/// As [`open_paged`], plus replay failure on a corrupted log.
pub fn open_paged_versioned(
    path: &Path,
    pool_pages: Option<usize>,
) -> std::io::Result<(Arc<VersionedStore>, xmark_txn::RecoveryReport)> {
    xmark_txn::recover_paged(path, pool_pages.unwrap_or(DEFAULT_POOL_PAGES))
}

/// One query measurement: the parse/plan/execute split of Table 2 and the
/// total of Table 3.
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Query number (1–20).
    pub query: usize,
    /// System measured.
    pub system: SystemId,
    /// Parse wall time (text → AST).
    pub parse_time: Duration,
    /// Planning wall time (metadata resolution + optimization → physical
    /// plan).
    pub plan_time: Duration,
    /// Execution wall time.
    pub execute_time: Duration,
    /// Wall time from execution start to the *first* result item leaving
    /// the operator cursors — what a streaming consumer waits before the
    /// first byte. Equals `execute_time` for empty results.
    pub first_item_time: Duration,
    /// Metadata accesses during planning.
    pub metadata_accesses: u64,
    /// Result cardinality.
    pub result_items: usize,
    /// Serialized result size in bytes (Q10's "more than 10 MB" check).
    pub result_bytes: usize,
}

impl QueryMeasurement {
    /// Total compilation time (parse + plan): Table 2's "compile" column.
    pub fn compile_time(&self) -> Duration {
        self.parse_time + self.plan_time
    }

    /// Total time (Table 3's cell).
    pub fn total(&self) -> Duration {
        self.compile_time() + self.execute_time
    }

    /// Compilation share of the total, in percent (Table 2).
    pub fn compile_share_percent(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.compile_time().as_secs_f64() / total
        }
    }
}

/// Run query `number` against a loaded store, timing all three phases
/// (parse, plan, execute) separately.
///
/// # Panics
/// Panics if one of the twenty canonical queries fails to compile or
/// execute — all are tested to run on every backend.
pub fn measure_query(loaded: &LoadedStore, number: usize) -> QueryMeasurement {
    let q = query(number);
    let store = loaded.store.as_ref();

    let parse_start = Instant::now();
    let parsed = xmark_query::parse_query(q.text)
        .unwrap_or_else(|e| panic!("Q{number} failed to parse: {e}"));
    let parse_time = parse_start.elapsed();

    let plan_start = Instant::now();
    let compiled = xmark_query::compile::plan(&parsed, store, PlanMode::Optimized);
    let plan_time = plan_start.elapsed();
    let metadata_accesses = compiled.stats.metadata_accesses;

    let execute_start = Instant::now();
    let mut stream = xmark_query::stream(&compiled, store);
    let mut result: Sequence = Vec::new();
    let mut first_item_time = None;
    while let Some(item) = stream.next_item() {
        let item = item.unwrap_or_else(|e| panic!("Q{number} failed on {}: {e}", loaded.system));
        if first_item_time.is_none() {
            first_item_time = Some(execute_start.elapsed());
        }
        result.push(item);
    }
    let execute_time = execute_start.elapsed();
    let first_item_time = first_item_time.unwrap_or(execute_time);

    let rendered = xmark_query::serialize_sequence(store, &result);
    QueryMeasurement {
        query: number,
        system: loaded.system,
        parse_time,
        plan_time,
        execute_time,
        first_item_time,
        metadata_accesses,
        result_items: result.len(),
        result_bytes: rendered.len(),
    }
}

/// Run query `number` and return its canonical output (for equivalence
/// checking).
///
/// # Panics
/// Panics if the query fails to compile or execute.
pub fn canonical_output(store: &dyn XmlStore, number: usize) -> String {
    let q = query(number);
    let compiled =
        compile(q.text, store).unwrap_or_else(|e| panic!("Q{number} failed to compile: {e}"));
    // `execute_scattered` fans the plan out across shard parts when the
    // store is a sharded union and falls through to the sequential
    // executor otherwise — one entry point for both deployments.
    let result = execute_scattered(&compiled, store)
        .unwrap_or_else(|e| panic!("Q{number} failed to execute: {e}"));
    xmark_query::canonicalize(store, &result)
}

/// A query compiled once against one shared store, ready for repeated
/// execution: re-running it skips parse and plan entirely, and the
/// Table 2 statistics (metadata accesses, estimates) are collected once
/// instead of per call.
///
/// Produced by [`Session::prepare`] or [`PreparedQuery::new`]; the
/// service layer's plan cache stores the same [`Compiled`] artifact.
pub struct PreparedQuery {
    store: Arc<dyn XmlStore>,
    compiled: Arc<Compiled>,
}

impl PreparedQuery {
    /// Compile `text` against `store`.
    ///
    /// # Panics
    /// Panics if the query does not parse — prepared statements are for
    /// known-good query text (the benchmark queries all are).
    pub fn new(store: Arc<dyn XmlStore>, text: &str) -> Self {
        let compiled = compile(text, store.as_ref())
            .unwrap_or_else(|e| panic!("query failed to compile: {e}"));
        PreparedQuery {
            store,
            compiled: Arc::new(compiled),
        }
    }

    /// Execute the prepared plan (no parse, no plan), materializing the
    /// whole result. On a sharded union store the shard-parallel plans
    /// scatter across the shard parts and merge
    /// ([`xmark_query::execute_scattered`]); on a monolithic store this
    /// is the plain sequential drain.
    ///
    /// # Panics
    /// Panics on evaluation errors, mirroring the façade's other helpers.
    pub fn execute(&self) -> Sequence {
        execute_scattered(&self.compiled, self.store.as_ref())
            .unwrap_or_else(|e| panic!("prepared query failed to execute: {e}"))
    }

    /// Open a pull-based result stream over the prepared plan: items are
    /// produced on demand, so `stream().take(n)` / `.exists()` stop
    /// executing as soon as the answer is known.
    pub fn stream(&self) -> ResultStream<'_> {
        xmark_query::stream(&self.compiled, self.store.as_ref())
    }

    /// At most the first `n` result items, pulling nothing past them.
    ///
    /// # Panics
    /// Panics on evaluation errors.
    pub fn take(&self, n: usize) -> Sequence {
        self.stream()
            .take(n)
            .unwrap_or_else(|e| panic!("prepared query failed to execute: {e}"))
    }

    /// Whether the result has at least one item — pulls at most one.
    ///
    /// # Panics
    /// Panics on evaluation errors.
    pub fn exists(&self) -> bool {
        self.stream()
            .exists()
            .unwrap_or_else(|e| panic!("prepared query failed to execute: {e}"))
    }

    /// The result cardinality, without keeping or serializing any item.
    ///
    /// # Panics
    /// Panics on evaluation errors.
    pub fn count(&self) -> usize {
        self.stream()
            .count()
            .unwrap_or_else(|e| panic!("prepared query failed to execute: {e}"))
    }

    /// Execute and serialize straight into `sink`, one item per line,
    /// byte-identical to serializing [`PreparedQuery::execute`]'s result —
    /// without materializing it.
    ///
    /// # Panics
    /// Panics on evaluation errors or sink failures.
    pub fn write_to<W: fmt::Write + ?Sized>(&self, sink: &mut W) -> StreamStats {
        self.stream()
            .write_to(sink)
            .unwrap_or_else(|e| panic!("prepared query failed to stream: {e}"))
    }

    /// The physical plan, one line per operator.
    pub fn explain(&self) -> String {
        self.compiled.explain()
    }

    /// Compile-phase statistics, collected exactly once at prepare time.
    pub fn stats(&self) -> &CompileStats {
        &self.compiled.stats
    }

    /// The underlying compiled artifact.
    pub fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    /// The store the query was planned against.
    pub fn store(&self) -> &Arc<dyn XmlStore> {
        &self.store
    }
}

/// A reusable streaming handle over one (store, compiled query) pair,
/// produced by [`Session::stream`]. Each accessor opens a fresh pull over
/// the prepared plan; nothing is materialized unless the consumer drains.
///
/// ```
/// use xmark::prelude::*;
///
/// let session = Benchmark::at_scale("mini").generate();
/// let people = session.stream(SystemId::G, "/site/people/person");
/// assert!(people.exists());            // pulls one person, stops
/// let first_two = people.take(2);      // pulls two, stops
/// assert_eq!(first_two.len(), 2);
/// ```
pub struct QueryStream {
    prepared: PreparedQuery,
}

impl QueryStream {
    /// A fresh pull-based iterator over the results.
    pub fn iter(&self) -> ResultStream<'_> {
        self.prepared.stream()
    }

    /// At most the first `n` items (see [`PreparedQuery::take`]).
    ///
    /// # Panics
    /// Panics on evaluation errors.
    pub fn take(&self, n: usize) -> Sequence {
        self.prepared.take(n)
    }

    /// Whether any result item exists — pulls at most one.
    ///
    /// # Panics
    /// Panics on evaluation errors.
    pub fn exists(&self) -> bool {
        self.prepared.exists()
    }

    /// The result cardinality, draining without keeping items.
    ///
    /// # Panics
    /// Panics on evaluation errors.
    pub fn count(&self) -> usize {
        self.prepared.count()
    }

    /// Serialize everything into `sink` (see [`PreparedQuery::write_to`]).
    ///
    /// # Panics
    /// Panics on evaluation errors or sink failures.
    pub fn write_to<W: fmt::Write + ?Sized>(&self, sink: &mut W) -> StreamStats {
        self.prepared.write_to(sink)
    }

    /// The underlying prepared query (plan, stats, store).
    pub fn prepared(&self) -> &PreparedQuery {
        &self.prepared
    }
}

// ---- the session façade ----------------------------------------------------

/// Builder-style entry point for a benchmark session.
///
/// Examples, tests and the report binaries used to hand-roll the same
/// generate → load → measure loop; `Benchmark` packages it:
///
/// ```
/// use xmark::prelude::*;
///
/// let report = Benchmark::at_scale("mini")
///     .systems(&[SystemId::D, SystemId::G])
///     .queries(1..=3)
///     .run();
/// assert_eq!(report.measurement(SystemId::D, 1).unwrap().result_items, 1);
/// ```
///
/// [`Benchmark::generate`] stops after document generation and returns a
/// [`Session`] for callers that need custom measurement (the
/// Table 2 phase split, criterion benches).
#[derive(Debug, Clone)]
pub struct Benchmark {
    scale: Option<Scale>,
    factor: f64,
    systems: Vec<SystemId>,
    queries: Vec<usize>,
    warmups: usize,
}

impl Benchmark {
    /// Start from a named scale preset (see [`SCALES`]).
    ///
    /// # Panics
    /// Panics if `name` is not one of the presets.
    pub fn at_scale(name: &str) -> Self {
        let preset = scale(name).unwrap_or_else(|| {
            let names: Vec<&str> = SCALES.iter().map(|s| s.name).collect();
            panic!("unknown scale {name:?}; presets are {names:?}")
        });
        Benchmark {
            scale: Some(preset),
            factor: preset.factor,
            systems: SystemId::ALL.to_vec(),
            queries: (1..=20).collect(),
            warmups: 0,
        }
    }

    /// Start from a raw scaling factor.
    pub fn at_factor(factor: f64) -> Self {
        Benchmark {
            scale: None,
            factor,
            systems: SystemId::ALL.to_vec(),
            queries: (1..=20).collect(),
            warmups: 0,
        }
    }

    /// Restrict the session to these systems (default: all seven).
    pub fn systems(mut self, systems: &[SystemId]) -> Self {
        self.systems = systems.to_vec();
        self
    }

    /// Restrict the session to these query numbers (default: `1..=20`).
    pub fn queries(mut self, queries: impl IntoIterator<Item = usize>) -> Self {
        self.queries = queries.into_iter().collect();
        self
    }

    /// Run each (system, query) pair `n` unrecorded times before the
    /// measured run (default: 0). The report binaries use one warm-up to
    /// de-noise the microsecond-scale Table 3 cells.
    pub fn warmups(mut self, n: usize) -> Self {
        self.warmups = n;
        self
    }

    /// Generate the document and return the open session without loading
    /// or measuring anything yet.
    pub fn generate(self) -> Session {
        let generated = generate_document(self.factor);
        Session {
            scale: self.scale,
            factor: self.factor,
            generated,
            systems: self.systems,
            queries: self.queries,
            warmups: self.warmups,
        }
    }

    /// Generate, bulkload every selected system, measure every selected
    /// query on each, and return the full report.
    pub fn run(self) -> BenchmarkReport {
        self.generate().run()
    }
}

/// An open benchmark session: one generated document plus the selected
/// systems and queries. Produced by [`Benchmark::generate`].
pub struct Session {
    scale: Option<Scale>,
    factor: f64,
    generated: GeneratedDocument,
    systems: Vec<SystemId>,
    queries: Vec<usize>,
    warmups: usize,
}

impl Session {
    /// The scale preset this session was built from, if any.
    pub fn scale(&self) -> Option<Scale> {
        self.scale
    }

    /// The scaling factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The generated XML text.
    pub fn xml(&self) -> &str {
        &self.generated.xml
    }

    /// Generator statistics (bytes, elements, depth, cardinalities).
    pub fn stats(&self) -> &GenStats {
        &self.generated.stats
    }

    /// Wall time the generator took.
    pub fn generation_time(&self) -> Duration {
        self.generated.elapsed
    }

    /// The systems selected for this session.
    pub fn systems(&self) -> &[SystemId] {
        &self.systems
    }

    /// The query numbers selected for this session.
    pub fn queries(&self) -> &[usize] {
        &self.queries
    }

    /// Bulkload one system (not necessarily a selected one).
    pub fn load(&self, system: SystemId) -> LoadedStore {
        load_system(system, &self.generated.xml)
    }

    /// Bulkload every selected system, in selection order.
    pub fn load_all(&self) -> Vec<LoadedStore> {
        self.systems.iter().map(|&s| self.load(s)).collect()
    }

    /// Bulkload the disk-resident backend H with an explicit buffer-pool
    /// frame budget (`None` = [`DEFAULT_POOL_PAGES`]). The page and WAL
    /// files land in the scratch directory and are deleted when the
    /// store drops; use [`Session::persist_paged`] for a file that
    /// outlives the session.
    pub fn load_paged(&self, pool_pages: Option<usize>) -> LoadedStore {
        let start = Instant::now();
        let store = PagedStore::load_temp(
            &self.generated.xml,
            pool_pages.unwrap_or(DEFAULT_POOL_PAGES),
        )
        .expect("benchmark document must parse");
        let load_time = start.elapsed();
        let size_bytes = store.size_bytes();
        LoadedStore {
            system: SystemId::H,
            store: Box::new(store),
            load_time,
            size_bytes,
        }
    }

    /// Bulkload backend H into a page file at `path` that outlives this
    /// session; re-open it later — cold, without re-parsing the XML —
    /// via [`open_paged`].
    ///
    /// # Errors
    /// I/O failure writing the page or WAL file.
    pub fn persist_paged(
        &self,
        path: &Path,
        pool_pages: Option<usize>,
    ) -> std::io::Result<PagedStore> {
        let doc =
            xmark_xml::parse_document(&self.generated.xml).expect("benchmark document must parse");
        PagedStore::create_at(path, &doc, pool_pages.unwrap_or(DEFAULT_POOL_PAGES))
    }

    /// Bulkload `system` and share it behind an `Arc` — the shape the
    /// concurrent service layer consumes.
    pub fn load_shared(&self, system: SystemId) -> Arc<dyn XmlStore> {
        Arc::from(self.load(system).store)
    }

    /// Re-generate this session's document as `entity_shards` shard files
    /// plus the global head (entity content byte-identical to the
    /// monolithic document — per-entity RNG streams make the split exact)
    /// and bulkload each into its own `system` store under a
    /// [`ShardedStore`] union view. Shard-parallel plans executed through
    /// the session façade or the service scatter across the shards.
    ///
    /// # Panics
    /// Panics if a shard document fails to parse or the shard skeletons
    /// mismatch — both would be generator bugs.
    pub fn load_sharded(&self, system: SystemId, entity_shards: usize) -> LoadedStore {
        let start = Instant::now();
        let files = generate_sharded(&GeneratorConfig::at_factor(self.factor), entity_shards);
        let docs: Vec<&str> = files.iter().map(|f| f.content.as_str()).collect();
        let store =
            ShardedStore::load(system, &docs).expect("sharded benchmark documents must load");
        let load_time = start.elapsed();
        let size_bytes = store.size_bytes();
        LoadedStore {
            system,
            store: Box::new(store),
            load_time,
            size_bytes,
        }
    }

    /// [`Session::load_sharded`] behind an `Arc`, for the service layer.
    pub fn load_sharded_shared(&self, system: SystemId, entity_shards: usize) -> Arc<dyn XmlStore> {
        Arc::from(self.load_sharded(system, entity_shards).store)
    }

    /// Sharded deployment of the disk-resident backend H: each shard
    /// document is bulkloaded into its **own page file**, closed, and
    /// re-opened **cold** — the union starts with every buffer pool empty
    /// and only the per-shard header/catalog pages read, exactly how a
    /// scale-out H deployment would boot. `pool_pages` is the frame
    /// budget **per shard** (`None` = [`DEFAULT_POOL_PAGES`]); the page
    /// files are deleted when the union drops.
    ///
    /// # Panics
    /// Panics on generator bugs (shard documents failing to parse) or
    /// scratch-file I/O failure, mirroring [`Session::load_paged`].
    pub fn load_sharded_paged(
        &self,
        entity_shards: usize,
        pool_pages: Option<usize>,
    ) -> LoadedStore {
        let start = Instant::now();
        let files = generate_sharded(&GeneratorConfig::at_factor(self.factor), entity_shards);
        let budget = pool_pages.unwrap_or(DEFAULT_POOL_PAGES);
        let dir = xmark_store::paged::scratch_dir();
        static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
        let union_id = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut shards: Vec<Box<dyn XmlStore>> = Vec::with_capacity(files.len());
        for (k, file) in files.iter().enumerate() {
            let doc = xmark_xml::parse_document(&file.content).expect("shard document must parse");
            let path = dir.join(format!(
                "shard-{}-{union_id}-{k:03}.pages",
                std::process::id()
            ));
            // Bulkload, drop (flushing every page), then open cold: the
            // pool the union queries through starts empty.
            drop(PagedStore::create_at(&path, &doc, budget).expect("shard page file bulkload"));
            let mut shard = PagedStore::open(&path, budget).expect("shard page file cold open");
            shard.mark_ephemeral();
            shards.push(Box::new(shard));
        }
        let store = ShardedStore::from_shards(shards).expect("shard skeletons must match");
        let load_time = start.elapsed();
        let size_bytes = store.size_bytes();
        LoadedStore {
            system: SystemId::H,
            store: Box::new(store),
            load_time,
            size_bytes,
        }
    }

    /// Spawn a [`QueryService`] worker pool over a sharded `system`
    /// deployment with `entity_shards` shards: workers take per-shard
    /// warmup affinity and shard-parallel plans scatter per request.
    pub fn serve_sharded(
        &self,
        system: SystemId,
        entity_shards: usize,
        workers: usize,
    ) -> QueryService {
        QueryService::start(self.load_sharded_shared(system, entity_shards), workers)
    }

    /// Bulkload `system` and eagerly warm its shared store-resident
    /// indexes (element postings + `@id` attribute values) so no later
    /// query — or service request — pays an index build on its critical
    /// path. Join-side value indexes warm on their first execution.
    pub fn build_indexes(&self, system: SystemId) -> Arc<dyn XmlStore> {
        let store = self.load_shared(system);
        store.indexes().build_all(store.as_ref());
        store
    }

    /// Spawn a [`QueryService`] worker pool over a freshly loaded
    /// `system`.
    pub fn serve(&self, system: SystemId, workers: usize) -> QueryService {
        QueryService::start(self.load_shared(system), workers)
    }

    /// Bulkload `system` and wrap it as a [`VersionedStore`] — the entry
    /// point for structural updates: [`VersionedStore::begin`] opens a
    /// [`xmark_txn::Transaction`], and [`VersionedStore::snapshot`] pins
    /// consistent read views while commits publish new epochs.
    pub fn load_versioned(&self, system: SystemId) -> Arc<VersionedStore> {
        VersionedStore::new(self.load_shared(system))
    }

    /// Spawn a [`QueryService`] whose workers resolve each request
    /// against the *current* snapshot of `store` — reads keep flowing,
    /// pinned per request, while transactions commit.
    pub fn serve_versioned(&self, store: &Arc<VersionedStore>, workers: usize) -> QueryService {
        QueryService::start_source(
            Arc::clone(store) as Arc<dyn xmark_store::StoreSource>,
            workers,
            crate::service::DEFAULT_PLAN_CACHE,
        )
    }

    /// Bulkload `system` and compile `text` against it once, returning a
    /// reusable prepared query: repeated [`PreparedQuery::execute`] calls
    /// skip parse and plan.
    pub fn prepare(&self, system: SystemId, text: &str) -> PreparedQuery {
        PreparedQuery::new(self.load_shared(system), text)
    }

    /// Bulkload `system`, compile `text` in `mode`, and run the
    /// post-optimizer plan verifier ([`xmark_query::verify`]) over the
    /// result: every structural invariant of the physical algebra is
    /// re-checked against the live store and reported per invariant.
    /// Debug builds verify every compile implicitly; this is the explicit
    /// entry point for release builds and audits.
    ///
    /// # Panics
    /// Panics if the query does not parse — verification is for plans,
    /// not for syntax errors.
    pub fn verify_plan(&self, system: SystemId, text: &str, mode: PlanMode) -> VerifyReport {
        let loaded = self.load(system);
        let store = loaded.store.as_ref();
        let query = parse_query(text).unwrap_or_else(|e| panic!("query failed to parse: {e}"));
        let compiled = xmark_query::compile::plan(&query, store, mode);
        verify_plan_against(&query, &compiled.plan, store)
    }

    /// Bulkload `system`, compile `text`, and return a reusable streaming
    /// handle: [`QueryStream::iter`] opens a fresh pull-based
    /// [`ResultStream`] per call, and the `take`/`exists`/`count`/
    /// `write_to` fast paths stop executing as soon as the answer is
    /// known.
    pub fn stream(&self, system: SystemId, text: &str) -> QueryStream {
        QueryStream {
            prepared: self.prepare(system, text),
        }
    }

    /// Bulkload `system`, compile `text`, and serialize the whole result
    /// into `sink` item by item (one item per line) without materializing
    /// it. Returns the item/byte counts.
    ///
    /// # Panics
    /// Panics if the query fails to compile, execute, or the sink rejects
    /// a write.
    pub fn write_to<W: fmt::Write + ?Sized>(
        &self,
        system: SystemId,
        text: &str,
        sink: &mut W,
    ) -> StreamStats {
        self.prepare(system, text).write_to(sink)
    }

    /// Bulkload `system`, spawn `workers` threads, and run `requests`
    /// closed-loop requests cycling through this session's selected
    /// queries — the Table 4 cell for one (system, worker-count) pair.
    pub fn measure_throughput(
        &self,
        system: SystemId,
        workers: usize,
        requests: usize,
    ) -> ThroughputReport {
        self.serve(system, workers).run_mix(&self.queries, requests)
    }

    /// Load everything, measure every selected query on every selected
    /// system, and close the session into a report.
    pub fn run(self) -> BenchmarkReport {
        let loads = self.load_all();
        let mut measurements = Vec::with_capacity(loads.len() * self.queries.len());
        for loaded in &loads {
            for &q in &self.queries {
                for _ in 0..self.warmups {
                    let _ = measure_query(loaded, q);
                }
                measurements.push(measure_query(loaded, q));
            }
        }
        BenchmarkReport {
            scale: self.scale,
            factor: self.factor,
            document: self.generated,
            queries: self.queries,
            loads,
            measurements,
        }
    }
}

/// Everything a benchmark session produced: the document, the loaded
/// stores (kept alive so callers can run follow-up queries), and one
/// [`QueryMeasurement`] per (system, query) pair.
pub struct BenchmarkReport {
    /// The scale preset, if the session used one.
    pub scale: Option<Scale>,
    /// The scaling factor.
    pub factor: f64,
    /// The generated document.
    pub document: GeneratedDocument,
    /// The measured query numbers, in run order.
    pub queries: Vec<usize>,
    /// One loaded store per selected system, in selection order.
    pub loads: Vec<LoadedStore>,
    /// All measurements, grouped by system in selection order.
    pub measurements: Vec<QueryMeasurement>,
}

impl BenchmarkReport {
    /// The systems measured, in selection order.
    pub fn systems(&self) -> impl Iterator<Item = SystemId> + '_ {
        self.loads.iter().map(|l| l.system)
    }

    /// The load row for `system`.
    pub fn load(&self, system: SystemId) -> Option<&LoadedStore> {
        self.loads.iter().find(|l| l.system == system)
    }

    /// The measurement for (`system`, `query`).
    pub fn measurement(&self, system: SystemId, query: usize) -> Option<&QueryMeasurement> {
        self.measurements
            .iter()
            .find(|m| m.system == system && m.query == query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_match_figure_3() {
        assert_eq!(scale("standard").unwrap().factor, 1.0);
        assert_eq!(scale("tiny").unwrap().factor, 0.1);
        assert_eq!(scale("large").unwrap().factor, 10.0);
        assert_eq!(scale("huge").unwrap().factor, 100.0);
        assert!(scale("nonsense").is_none());
    }

    #[test]
    fn generate_load_measure_roundtrip() {
        let doc = generate_document(0.001);
        assert!(doc.stats.bytes > 10_000);
        let loaded = load_system(SystemId::D, &doc.xml);
        assert!(loaded.size_bytes > 0);
        let m = measure_query(&loaded, 1);
        assert_eq!(m.query, 1);
        assert_eq!(m.result_items, 1, "Q1 returns person0's name");
        assert!(m.compile_share_percent() >= 0.0);
    }

    #[test]
    fn generator_stats_are_populated() {
        // The Table 1 report depends on real element/depth counts; they
        // used to be hardcoded to zero.
        let doc = generate_document(0.001);
        assert_eq!(doc.stats.bytes as usize, doc.xml.len());
        assert!(
            doc.stats.elements > 1000,
            "elements: {}",
            doc.stats.elements
        );
        assert!(
            doc.stats.max_depth >= 5,
            "max_depth: {}",
            doc.stats.max_depth
        );
        // The stats agree with a full parse of the document.
        let parsed = xmark_xml::parse_document(&doc.xml).unwrap();
        let elements = parsed.all_nodes().filter(|&n| parsed.is_element(n)).count() as u64;
        assert_eq!(doc.stats.elements, elements);
    }

    #[test]
    fn benchmark_facade_runs_a_session() {
        let report = Benchmark::at_scale("mini")
            .systems(&[SystemId::D, SystemId::G])
            .queries([1, 6])
            .warmups(1)
            .run();
        assert_eq!(report.scale.unwrap().name, "mini");
        assert_eq!(
            report.systems().collect::<Vec<_>>(),
            vec![SystemId::D, SystemId::G]
        );
        assert_eq!(report.measurements.len(), 4);
        let d1 = report.measurement(SystemId::D, 1).unwrap();
        assert_eq!(d1.result_items, 1);
        let g6 = report.measurement(SystemId::G, 6).unwrap();
        assert_eq!(
            g6.result_items,
            report.measurement(SystemId::D, 6).unwrap().result_items,
            "D and G disagree on Q6"
        );
        // The loaded stores stay usable after the run.
        let store = &report.load(SystemId::D).unwrap().store;
        assert!(store.node_count() > 1000);
    }

    #[test]
    fn benchmark_facade_open_session_supports_custom_measurement() {
        let session = Benchmark::at_factor(0.001)
            .systems(&[SystemId::A])
            .queries([2])
            .generate();
        assert!(session.stats().elements > 0);
        let loaded = session.load(SystemId::A);
        let m = measure_query(&loaded, 2);
        assert!(m.metadata_accesses > 0);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn benchmark_facade_rejects_unknown_scales() {
        let _ = Benchmark::at_scale("galactic");
    }

    #[test]
    fn measurements_split_all_three_phases() {
        let doc = generate_document(0.001);
        let loaded = load_system(SystemId::A, &doc.xml);
        let m = measure_query(&loaded, 1);
        assert_eq!(m.compile_time(), m.parse_time + m.plan_time);
        assert_eq!(m.total(), m.parse_time + m.plan_time + m.execute_time);
        assert!(m.metadata_accesses > 0, "planning touches the catalog");
        assert!(
            m.first_item_time <= m.execute_time,
            "the first item cannot arrive after the last"
        );
    }

    #[test]
    fn prepared_stream_agrees_with_execute_and_short_circuits() {
        let session = Benchmark::at_factor(0.001).generate();
        let prepared = session.prepare(SystemId::E, query(2).text);
        let materialized = prepared.execute();
        // Byte-identical serialization through the sink path.
        let mut sunk = String::new();
        let stats = prepared.write_to(&mut sunk);
        let store = prepared.store().as_ref();
        assert_eq!(sunk, xmark_query::serialize_sequence(store, &materialized));
        assert_eq!(stats.items, materialized.len());
        assert_eq!(stats.bytes, sunk.len() as u64);
        // Fast paths agree with the materialized result.
        assert_eq!(prepared.count(), materialized.len());
        assert_eq!(prepared.exists(), !materialized.is_empty());
        assert_eq!(prepared.take(3), materialized[..3.min(materialized.len())]);
        // And pulling one item costs strictly fewer cursor pulls than a
        // full drain.
        let mut partial = prepared.stream();
        let _ = partial.next_item();
        let partial_pulls = partial.pulls();
        let mut full = prepared.stream();
        while full.next_item().is_some() {}
        let full_pulls = full.pulls();
        assert!(
            partial_pulls < full_pulls,
            "one pulled item must cost fewer cursor pulls ({partial_pulls} vs {full_pulls})"
        );
    }

    #[test]
    fn session_stream_handle_round_trips() {
        let session = Benchmark::at_factor(0.001).generate();
        let stream = session.stream(SystemId::G, "/site/people/person");
        assert!(stream.exists());
        let two = stream.take(2);
        assert_eq!(two.len(), 2);
        assert_eq!(stream.count(), stream.prepared().execute().len());
        let mut direct = String::new();
        let stats = session.write_to(SystemId::G, "/site/people/person", &mut direct);
        assert_eq!(stats.items, stream.count());
        assert!(stats.bytes > 0 && direct.len() as u64 == stats.bytes);
        // Iterator access yields the same first item as take(1).
        let first = stream.iter().next().unwrap().unwrap();
        assert_eq!(vec![first], stream.take(1));
    }

    #[test]
    fn prepared_queries_reuse_one_plan() {
        let session = Benchmark::at_factor(0.001).generate();
        let prepared = session.prepare(SystemId::D, query(1).text);
        // Stats were collected once, at prepare time. (System D reports no
        // metadata accesses — the summary *is* the metadata — so check the
        // resolved steps.)
        assert!(prepared.stats().steps_resolved > 0);
        assert!(prepared.explain().contains("PathScan"));
        let first = prepared.execute();
        let second = prepared.execute();
        assert_eq!(first.len(), 1, "Q1 returns person0's name");
        assert_eq!(first.len(), second.len());
        // The prepared plan agrees with a one-shot run.
        let one_shot = xmark_query::run_query(query(1).text, prepared.store().as_ref()).unwrap();
        assert_eq!(
            xmark_query::canonicalize(prepared.store().as_ref(), &first),
            xmark_query::canonicalize(prepared.store().as_ref(), &one_shot)
        );
    }

    #[test]
    fn canonical_outputs_agree_between_two_systems() {
        let doc = generate_document(0.001);
        let d = load_system(SystemId::D, &doc.xml);
        let g = load_system(SystemId::G, &doc.xml);
        for q in [1, 5, 6, 17] {
            assert_eq!(
                canonical_output(d.store.as_ref(), q),
                canonical_output(g.store.as_ref(), q),
                "Q{q} output differs between D and G"
            );
        }
    }

    #[test]
    fn sharded_session_matches_monolithic_outputs() {
        let session = Benchmark::at_factor(0.001).generate();
        let mono = session.load(SystemId::A);
        let sharded = session.load_sharded(SystemId::A, 2);
        assert_eq!(
            sharded.system,
            SystemId::A,
            "union reports its shard backend"
        );
        assert!(
            sharded.store.shard_part_count() >= 3,
            "head + 2 entity shards"
        );
        // One query per scatter mode: doc-order path (Q6 count is Gather,
        // use a path via Q1's lookup instead), append FLWOR, sum, gather.
        for q in [1, 5, 8, 19] {
            assert_eq!(
                canonical_output(sharded.store.as_ref(), q),
                canonical_output(mono.store.as_ref(), q),
                "Q{q} differs sharded vs monolithic"
            );
        }
        // The prepared-query façade scatters through the same entry point.
        let shared: Arc<dyn XmlStore> = Arc::from(sharded.store);
        let prepared = PreparedQuery::new(shared, query(5).text);
        assert!(!prepared.execute().is_empty(), "Q5 count lands via scatter");
    }

    #[test]
    fn sharded_paged_session_opens_cold_per_shard() {
        let session = Benchmark::at_factor(0.001).generate();
        let mono = session.load(SystemId::A);
        let sharded = session.load_sharded_paged(2, Some(64));
        assert_eq!(sharded.system, SystemId::H);
        assert_eq!(
            canonical_output(sharded.store.as_ref(), 6),
            canonical_output(mono.store.as_ref(), 6),
            "Q6 differs on cold sharded H"
        );
    }

    #[test]
    fn paged_session_persists_and_reopens_cold() {
        let session = Benchmark::at_factor(0.001)
            .systems(&[SystemId::A])
            .queries([1])
            .generate();

        // Scratch-file load through the session façade.
        let warm = session.load_paged(Some(64));
        assert_eq!(warm.system, SystemId::H);
        let q6_warm = canonical_output(warm.store.as_ref(), 6);

        // Persist to an explicit path, then cold-open without the XML.
        let path = xmark_store::paged::scratch_dir()
            .join(format!("spec-roundtrip-{}.pages", std::process::id()));
        let persisted = session.persist_paged(&path, Some(64)).unwrap();
        drop(persisted);
        let cold = open_paged(&path, Some(64)).unwrap();
        assert_eq!(cold.system, SystemId::H);
        assert_eq!(canonical_output(cold.store.as_ref(), 6), q6_warm);
        // The pool saw real traffic and the reporting hooks are live.
        let stats = cold.store.paged_stats().expect("H exposes pool stats");
        assert!(stats.pages_read > 0);
        assert!(cold.store.disk_bytes() > 0);

        drop(cold);
        let wal = path.with_extension("wal");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&wal).unwrap();
    }
}
