//! A self-contained, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the `criterion_group!` /
//! `criterion_main!` / `benchmark_group` API surface so the workspace's
//! benches compile and run, and implements a simple adaptive timing loop:
//! a warm-up call, then batches sized to fill a small measurement window,
//! reporting the best observed mean per iteration (plus throughput when
//! one was declared). No statistics, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark measures for (after one warm-up call).
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Declared throughput of one iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing driver.
pub struct Bencher {
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Time `f`, adaptively choosing an iteration count.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < MEASURE_WINDOW {
            let start = Instant::now();
            black_box(f());
            total += start.elapsed();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iterations = iters;
    }
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, mean_ns: f64, iterations: u64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if mean_ns > 0.0 => {
            let mb_s = b as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            format!("  ({mb_s:.1} MiB/s)")
        }
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let elem_s = n as f64 / (mean_ns / 1e9);
            format!("  ({elem_s:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} time: {:>12}{rate}  [{iterations} iters]",
        human_time(mean_ns)
    );
}

fn run_one(name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean_ns: 0.0,
        iterations: 0,
    };
    f(&mut b);
    report(name, b.mean_ns, b.iterations, throughput);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own batches.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.text), self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.text),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Group runner declared by `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (`--bench`); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 7).text, "f/7");
        assert_eq!(BenchmarkId::from_parameter("D").text, "D");
    }
}
