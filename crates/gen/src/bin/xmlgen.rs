//! `xmlgen` — the XMark document generator, as a command-line tool.
//!
//! The paper (§4.5) ships xmlgen as a standalone, platform-independent
//! binary; this is that tool. Examples:
//!
//! ```text
//! xmlgen --factor 0.1 --output auction.xml       # 10 MB document
//! xmlgen --factor 1.0 --stats                    # 100 MB to stdout + stats
//! xmlgen --factor 0.01 --split 1000 --outdir db/ # §5 split mode
//! xmlgen --dtd                                   # print auction.dtd
//! ```

use std::io::{BufWriter, Write};
use std::process::ExitCode;

use xmark_gen::{generate_split, Generator, GeneratorConfig, AUCTION_DTD};

struct Options {
    factor: f64,
    seed: u64,
    output: Option<String>,
    split: Option<usize>,
    outdir: String,
    dtd: bool,
    stats: bool,
}

fn usage() -> &'static str {
    "xmlgen - XMark benchmark document generator\n\
     \n\
     USAGE: xmlgen [OPTIONS]\n\
     \n\
     OPTIONS:\n\
       --factor <f>    scaling factor (1.0 = ~100 MB)     [default: 0.01]\n\
       --seed <n>      generator seed                     [default: 0]\n\
       --output <file> write the document to a file       [default: stdout]\n\
       --split <n>     split mode: n entities per file (paper section 5)\n\
       --outdir <dir>  directory for split-mode files     [default: .]\n\
       --dtd           print the auction DTD and exit\n\
       --stats         print generation statistics to stderr\n\
       --help          show this message"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        factor: 0.01,
        seed: 0,
        output: None,
        split: None,
        outdir: ".".to_string(),
        dtd: false,
        stats: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--factor" | "-f" => {
                opts.factor = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad factor: {e}"))?
            }
            "--seed" => {
                opts.seed = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--output" | "-o" => opts.output = Some(take_value(&mut i)?),
            "--split" => {
                opts.split = Some(
                    take_value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad split count: {e}"))?,
                )
            }
            "--outdir" => opts.outdir = take_value(&mut i)?,
            "--dtd" => opts.dtd = true,
            "--stats" => opts.stats = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`\n\n{}", usage())),
        }
        i += 1;
    }
    if opts.factor <= 0.0 || !opts.factor.is_finite() {
        return Err("factor must be positive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.dtd {
        print!("{AUCTION_DTD}");
        return ExitCode::SUCCESS;
    }

    let config = GeneratorConfig {
        factor: opts.factor,
        seed: opts.seed,
    };

    if let Some(per_file) = opts.split {
        if per_file == 0 {
            eprintln!("error: --split must be at least 1");
            return ExitCode::FAILURE;
        }
        let files = generate_split(&config, per_file);
        if std::fs::create_dir_all(&opts.outdir).is_err() {
            eprintln!("error: cannot create directory {}", opts.outdir);
            return ExitCode::FAILURE;
        }
        let mut total = 0usize;
        let count = files.len();
        for f in files {
            let path = format!("{}/{}", opts.outdir, f.name);
            if let Err(e) = std::fs::write(&path, &f.content) {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            total += f.content.len();
        }
        if opts.stats {
            eprintln!("wrote {count} files, {total} bytes, to {}/", opts.outdir);
        }
        return ExitCode::SUCCESS;
    }

    let generator = Generator::new(config);
    let start = std::time::Instant::now();
    let result = match &opts.output {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error creating {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            generator.write(BufWriter::new(file))
        }
        None => {
            let stdout = std::io::stdout();
            // lint: allow(R2) StdoutLock, an io handle — not a Mutex
            let mut lock = BufWriter::new(stdout.lock());
            let r = generator.write(&mut lock);
            let _ = lock.flush();
            r
        }
    };
    match result {
        Ok(stats) => {
            if opts.stats {
                let elapsed = start.elapsed();
                eprintln!(
                    "factor {} seed {}: {} bytes, {} elements, depth {}, in {elapsed:.2?} ({:.1} MB/s)",
                    opts.factor,
                    opts.seed,
                    stats.bytes,
                    stats.elements,
                    stats.max_depth,
                    stats.bytes as f64 / 1e6 / elapsed.as_secs_f64(),
                );
                eprintln!(
                    "entities: {} items, {} persons, {} open + {} closed auctions, {} categories",
                    stats.cardinalities.items,
                    stats.cardinalities.persons,
                    stats.cardinalities.open_auctions,
                    stats.cardinalities.closed_auctions,
                    stats.cardinalities.categories,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("generation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
