//! The random distributions used by the generator.
//!
//! §4.2/§4.5 of the paper: the references in the benchmark document are
//! *"derived from uniformly, normally and exponentially distributed random
//! variables"*, implemented on top of the custom PRNG *"together with basic
//! algorithms which can be found in statistics textbooks"*. This module is
//! exactly those textbook algorithms: inverse-CDF exponential, Box–Muller
//! normal, and a cumulative-table Zipf sampler for the text model.

use crate::rng::XmarkRng;

/// Sample an exponential variate with the given `mean` (mean = 1/λ).
pub fn exponential(rng: &mut XmarkRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    // Inverse CDF; 1 - u avoids ln(0).
    -mean * (1.0 - rng.next_f64()).ln()
}

/// Sample a normal variate via the Box–Muller transform.
pub fn normal(rng: &mut XmarkRng, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0);
    let u1 = 1.0 - rng.next_f64(); // (0, 1]
    let u2 = rng.next_f64();
    let radius = (-2.0 * u1.ln()).sqrt();
    mu + sigma * radius * (std::f64::consts::TAU * u2).cos()
}

/// Sample a normal variate and clamp it into `[lo, hi]`.
pub fn clamped_normal(rng: &mut XmarkRng, mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mu, sigma).clamp(lo, hi)
}

/// Sample an index in `[0, n)` with exponentially decaying probability
/// (index 0 most likely). `mean_fraction` controls the decay: the mean of
/// the underlying exponential is `mean_fraction * n`.
///
/// Used for the skewed reference distributions of §4.2 (e.g. a few popular
/// people buy most items).
pub fn exponential_index(rng: &mut XmarkRng, n: usize, mean_fraction: f64) -> usize {
    debug_assert!(n > 0);
    loop {
        let x = exponential(rng, mean_fraction * n as f64);
        if (x as usize) < n {
            return x as usize;
        }
    }
}

/// Sample an index in `[0, n)` from a normal centred on the middle of the
/// range (σ = n/6, resampled into range).
pub fn normal_index(rng: &mut XmarkRng, n: usize) -> usize {
    debug_assert!(n > 0);
    loop {
        let x = normal(rng, n as f64 / 2.0, n as f64 / 6.0);
        if x >= 0.0 && (x as usize) < n {
            return x as usize;
        }
    }
}

/// A Zipf(s) sampler over ranks `0..n` backed by a precomputed cumulative
/// table; O(log n) per sample.
///
/// The text generator uses this to mimic the word-frequency skew the paper
/// measured in Shakespeare's plays (§4.3).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (s ≈ 1 is the
    /// classical natural-language value).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        let norm = total;
        for c in &mut cumulative {
            *c /= norm;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample a rank in `[0, n)`; rank 0 is the most probable.
    pub fn sample(&self, rng: &mut XmarkRng) -> usize {
        let u = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in table"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability of the given rank.
    pub fn probability(&self, rank: usize) -> f64 {
        let hi = self.cumulative[rank];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = XmarkRng::new(1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 100.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = XmarkRng::new(2);
        for _ in 0..10_000 {
            assert!(exponential(&mut rng, 5.0) >= 0.0);
        }
    }

    #[test]
    fn normal_mean_and_spread_converge() {
        let mut rng = XmarkRng::new(3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 50.0, 10.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.3, "mean = {mean}");
        assert!((var.sqrt() - 10.0).abs() < 0.3, "sd = {}", var.sqrt());
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut rng = XmarkRng::new(4);
        for _ in 0..10_000 {
            let x = clamped_normal(&mut rng, 0.0, 100.0, -5.0, 5.0);
            assert!((-5.0..=5.0).contains(&x));
        }
    }

    #[test]
    fn exponential_index_prefers_low_ranks() {
        let mut rng = XmarkRng::new(5);
        let n = 1000;
        let mut first_decile = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if exponential_index(&mut rng, n, 0.2) < n / 10 {
                first_decile += 1;
            }
        }
        // With mean 0.2n, P(X < 0.1n) = 1 - e^-0.5 ≈ 0.39.
        assert!(
            (0.34..0.45).contains(&(first_decile as f64 / trials as f64)),
            "fraction = {}",
            first_decile as f64 / trials as f64
        );
    }

    #[test]
    fn normal_index_centres_on_middle() {
        let mut rng = XmarkRng::new(6);
        let n = 1000;
        let trials = 20_000;
        let mid = (0..trials)
            .filter(|_| {
                let i = normal_index(&mut rng, n);
                (n / 4..3 * n / 4).contains(&i)
            })
            .count();
        // P(|Z| < 1.5σ) ≈ 0.866.
        let frac = mid as f64 / trials as f64;
        assert!((0.82..0.91).contains(&frac), "fraction = {frac}");
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = XmarkRng::new(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 20 * counts[500].max(1) / 2);
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(17, 0.9);
        let mut rng = XmarkRng::new(8);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }
}
