//! `xmlgen` — the scalable, deterministic XMark document generator.
//!
//! Faithful to the four requirements of §4.5 of the paper:
//!
//! 1. **platform independent** — no OS randomness, no floating-point
//!    environment dependence beyond IEEE-754 (`f64` everywhere);
//! 2. **accurately scalable** — entity counts derive linearly from the
//!    scaling factor ([`crate::schema::Cardinalities`]);
//! 3. **time and resource efficient** — the document streams straight to
//!    the output sink; memory is O(1) in the document size;
//! 4. **deterministic** — output depends only on `(factor, seed)`.
//!
//! The paper's multi-stream trick ("several identical streams of random
//! numbers") generalizes here to *per-entity* streams: entity `i` of each
//! section is generated from `section_stream.fork(i)`, so any entity can be
//! produced in isolation. That is what makes split mode (§5) and the
//! sold/unsold item partition work without a log of referenced identifiers.

use std::io::{self, Write};

use crate::dist;
use crate::rng::XmarkRng;
use crate::schema::Cardinalities;
use crate::text::Vocabulary;
use crate::writer::XmlWriter;

/// Stream labels for the top-level document sections.
pub(crate) mod streams {
    pub const REGIONS: u64 = 1;
    pub const CATEGORIES: u64 = 2;
    pub const CATGRAPH: u64 = 3;
    pub const PEOPLE: u64 = 4;
    pub const OPEN_AUCTIONS: u64 = 5;
    pub const CLOSED_AUCTIONS: u64 = 6;
}

/// Configuration of a generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Scaling factor; 1.0 ≈ 100 MB (paper Fig. 3).
    pub factor: f64,
    /// Master seed. The benchmark's canonical documents use seed 0.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            factor: 0.01,
            seed: 0,
        }
    }
}

impl GeneratorConfig {
    /// Config at the given factor with the canonical seed.
    pub fn at_factor(factor: f64) -> Self {
        GeneratorConfig { factor, seed: 0 }
    }
}

/// Statistics reported after generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenStats {
    /// Bytes emitted.
    pub bytes: u64,
    /// Elements emitted.
    pub elements: u64,
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// The entity counts that were generated.
    pub cardinalities: Cardinalities,
}

const COUNTRIES: &[&str] = &[
    "United States",
    "Germany",
    "Netherlands",
    "France",
    "Japan",
    "Brazil",
    "Kenya",
    "Australia",
    "Romania",
    "Canada",
    "China",
    "Italy",
];
const CITIES: &[&str] = &[
    "Amsterdam",
    "Redmond",
    "Darmstadt",
    "Le Chesnay",
    "Hong Kong",
    "San Jose",
    "Madison",
    "Leipzig",
    "Toronto",
    "Kyoto",
    "Nairobi",
    "Porto Alegre",
];
const PAYMENTS: &[&str] = &["Creditcard", "Money order", "Personal Check", "Cash"];
const SHIPPING: &[&str] = &[
    "Will ship only within country",
    "Will ship internationally",
    "Buyer pays fixed shipping charges",
    "See description for charges",
];
const EDUCATION: &[&str] = &["High School", "College", "Graduate School", "Other"];

/// The generator. Construction builds the (shared, immutable) vocabulary;
/// each [`Generator::write`] call streams one document.
pub struct Generator {
    config: GeneratorConfig,
    cards: Cardinalities,
    vocab: Vocabulary,
    master: XmarkRng,
}

impl Generator {
    /// Create a generator for `config`.
    pub fn new(config: GeneratorConfig) -> Self {
        let cards = Cardinalities::for_factor(config.factor);
        let master = XmarkRng::new(config.seed);
        Generator {
            config,
            cards,
            vocab: Vocabulary::standard(),
            master,
        }
    }

    /// The entity counts this generator will produce.
    pub fn cardinalities(&self) -> &Cardinalities {
        &self.cards
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Vocabulary in use (shared with split-mode generation).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Stream the complete benchmark document to `out`.
    pub fn write<W: Write>(&self, out: W) -> io::Result<GenStats> {
        let mut w = XmlWriter::new(out);
        w.declaration()?;
        w.open("site")?;

        self.write_regions(&mut w)?;
        self.write_categories(&mut w)?;
        self.write_catgraph(&mut w)?;
        self.write_people(&mut w)?;
        self.write_open_auctions(&mut w)?;
        self.write_closed_auctions(&mut w)?;

        w.close()?;
        w.newline()?;
        let (bytes, elements, max_depth) = w.finish()?;
        Ok(GenStats {
            bytes,
            elements,
            max_depth,
            cardinalities: self.cards.clone(),
        })
    }

    /// Generate the document into a `String` (small factors only; the
    /// benchmark harness streams to files instead).
    #[allow(clippy::inherent_to_string)] // not a Display: this *generates* the document
    pub fn to_string(&self) -> String {
        let mut buf = Vec::new();
        self.write(&mut buf).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("generator emits ASCII")
    }

    fn section_stream(&self, section: u64) -> XmarkRng {
        self.master.fork(section)
    }

    /// Per-entity stream: the heart of the reproducibility story.
    fn entity_stream(&self, section: u64, index: usize) -> XmarkRng {
        self.section_stream(section).fork(index as u64)
    }

    // ---- sections -------------------------------------------------------

    pub(crate) fn write_regions<W: Write>(&self, w: &mut XmlWriter<W>) -> io::Result<()> {
        w.open("regions")?;
        let mut item_index = 0usize;
        for &(region, count) in &self.cards.region_items {
            // Region element tags are static; match them to satisfy the
            // writer's `&'static str` stack without leaking.
            let tag = region_tag(region);
            w.open(tag)?;
            for _ in 0..count {
                self.write_item(w, item_index)?;
                item_index += 1;
            }
            w.close()?;
        }
        w.close()
    }

    pub(crate) fn write_item<W: Write>(
        &self,
        w: &mut XmlWriter<W>,
        index: usize,
    ) -> io::Result<()> {
        let mut rng = self.entity_stream(streams::REGIONS, index);
        let id = format!("item{index}");
        let featured = rng.chance(0.1);
        if featured {
            w.open_with("item", &[("id", &id), ("featured", "yes")])?;
        } else {
            w.open_with("item", &[("id", &id)])?;
        }
        let country = if rng.chance(0.75) {
            "United States"
        } else {
            COUNTRIES[rng.below(COUNTRIES.len() as u64) as usize]
        };
        w.leaf("location", country)?;
        w.leaf(
            "quantity",
            &(1 + dist::exponential_index(&mut rng, 5, 0.35)).to_string(),
        )?;
        let name_words = 2 + rng.below(3) as usize;
        w.leaf("name", &self.vocab.sentence(&mut rng, name_words))?;
        w.leaf("payment", &pick_subset(&mut rng, PAYMENTS))?;
        self.write_description(w, &mut rng, false)?;
        w.leaf("shipping", &pick_subset(&mut rng, SHIPPING))?;
        let incats = 1 + dist::exponential_index(&mut rng, 5, 0.3);
        for _ in 0..incats {
            let cat = rng.below(self.cards.categories as u64);
            w.empty("incategory", &[("category", &format!("category{cat}"))])?;
        }
        w.open("mailbox")?;
        let mails = dist::exponential_index(&mut rng, 5, 0.28);
        for _ in 0..mails {
            w.open("mail")?;
            w.leaf("from", &crate::text::person_name(&mut rng).0)?;
            w.leaf("to", &crate::text::person_name(&mut rng).0)?;
            w.leaf("date", &crate::text::date(&mut rng))?;
            self.write_text_element(w, &mut rng, 200)?;
            w.close()?;
        }
        w.close()?; // mailbox
        w.close() // item
    }

    pub(crate) fn write_categories<W: Write>(&self, w: &mut XmlWriter<W>) -> io::Result<()> {
        w.open("categories")?;
        for i in 0..self.cards.categories {
            let mut rng = self.entity_stream(streams::CATEGORIES, i);
            w.open_with("category", &[("id", &format!("category{i}"))])?;
            let name_words = 1 + rng.below(3) as usize;
            w.leaf("name", &self.vocab.sentence(&mut rng, name_words))?;
            self.write_description(w, &mut rng, false)?;
            w.close()?;
        }
        w.close()
    }

    pub(crate) fn write_catgraph<W: Write>(&self, w: &mut XmlWriter<W>) -> io::Result<()> {
        w.open("catgraph")?;
        for i in 0..self.cards.catgraph_edges {
            let mut rng = self.entity_stream(streams::CATGRAPH, i);
            let from = rng.below(self.cards.categories as u64);
            let to = rng.below(self.cards.categories as u64);
            w.empty(
                "edge",
                &[
                    ("from", &format!("category{from}")),
                    ("to", &format!("category{to}")),
                ],
            )?;
        }
        w.close()
    }

    pub(crate) fn write_people<W: Write>(&self, w: &mut XmlWriter<W>) -> io::Result<()> {
        w.open("people")?;
        for i in 0..self.cards.persons {
            self.write_person(w, i)?;
        }
        w.close()
    }

    pub(crate) fn write_person<W: Write>(
        &self,
        w: &mut XmlWriter<W>,
        index: usize,
    ) -> io::Result<()> {
        let mut rng = self.entity_stream(streams::PEOPLE, index);
        w.open_with("person", &[("id", &format!("person{index}"))])?;
        let (full, _given, family) = crate::text::person_name(&mut rng);
        w.leaf("name", &full)?;
        w.leaf("emailaddress", &crate::text::email(&mut rng, family, index))?;
        if rng.chance(0.5) {
            w.leaf("phone", &crate::text::phone(&mut rng))?;
        }
        if rng.chance(0.6) {
            w.open("address")?;
            w.leaf(
                "street",
                &format!(
                    "{} {} St",
                    rng.range_inclusive(1, 99),
                    self.vocab.sample(&mut rng)
                ),
            )?;
            w.leaf("city", CITIES[rng.below(CITIES.len() as u64) as usize])?;
            let country = if rng.chance(0.75) {
                "United States"
            } else {
                COUNTRIES[rng.below(COUNTRIES.len() as u64) as usize]
            };
            w.leaf("country", country)?;
            if rng.chance(0.3) {
                w.leaf("province", self.vocab.sample(&mut rng))?;
            }
            w.leaf("zipcode", &rng.range_inclusive(10_000, 99_999).to_string())?;
            w.close()?;
        }
        // §6.11 (Q17): "the fraction of people without a homepage is rather
        // high" — exactly half of the people get one.
        if rng.chance(0.5) {
            w.leaf("homepage", &crate::text::homepage(&mut rng, family, index))?;
        }
        if rng.chance(0.7) {
            w.leaf("creditcard", &crate::text::creditcard(&mut rng))?;
        }
        if rng.chance(0.9) {
            // Q20's four income groups need: some >= 100000, many in
            // 30000..100000, some < 30000, and some without income at all.
            let has_income = rng.chance(0.85);
            let income = dist::clamped_normal(&mut rng, 45_000.0, 30_000.0, 4_000.0, 250_000.0);
            if has_income {
                w.open_with("profile", &[("income", &format!("{income:.2}"))])?;
            } else {
                w.open("profile")?;
            }
            let interests = dist::exponential_index(&mut rng, 7, 0.25);
            for _ in 0..interests {
                let cat = rng.below(self.cards.categories as u64);
                w.empty("interest", &[("category", &format!("category{cat}"))])?;
            }
            if rng.chance(0.4) {
                w.leaf(
                    "education",
                    EDUCATION[rng.below(EDUCATION.len() as u64) as usize],
                )?;
            }
            if rng.chance(0.6) {
                w.leaf("gender", if rng.chance(0.5) { "male" } else { "female" })?;
            }
            w.leaf("business", if rng.chance(0.2) { "Yes" } else { "No" })?;
            if rng.chance(0.5) {
                let age = dist::clamped_normal(&mut rng, 38.0, 12.0, 18.0, 95.0);
                w.leaf("age", &format!("{}", age as u64))?;
            }
            w.close()?;
        }
        if rng.chance(0.6) {
            w.open("watches")?;
            let watches = dist::exponential_index(&mut rng, 12, 0.18);
            for _ in 0..watches {
                let auction = rng.below(self.cards.open_auctions as u64);
                w.empty(
                    "watch",
                    &[("open_auction", &format!("open_auction{auction}"))],
                )?;
            }
            w.close()?;
        }
        w.close()
    }

    pub(crate) fn write_open_auctions<W: Write>(&self, w: &mut XmlWriter<W>) -> io::Result<()> {
        w.open("open_auctions")?;
        for i in 0..self.cards.open_auctions {
            self.write_open_auction(w, i)?;
        }
        w.close()
    }

    pub(crate) fn write_open_auction<W: Write>(
        &self,
        w: &mut XmlWriter<W>,
        index: usize,
    ) -> io::Result<()> {
        let mut rng = self.entity_stream(streams::OPEN_AUCTIONS, index);
        w.open_with("open_auction", &[("id", &format!("open_auction{index}"))])?;
        let initial = 1.5 + dist::exponential(&mut rng, 100.0);
        w.leaf("initial", &format!("{initial:.2}"))?;
        if rng.chance(0.45) {
            let reserve = initial * (1.2 + 1.3 * rng.next_f64());
            w.leaf("reserve", &format!("{reserve:.2}"))?;
        }
        // Bid history (§6.2): an ordered list — Q2/Q3 do positional access,
        // Q4 queries the *textual order* of two bidders.
        let bidders = dist::exponential_index(&mut rng, 12, 0.2);
        let mut current = initial;
        for _ in 0..bidders {
            w.open("bidder")?;
            w.leaf("date", &crate::text::date(&mut rng))?;
            w.leaf("time", &crate::text::time(&mut rng))?;
            let person = rng.below(self.cards.persons as u64);
            w.empty("personref", &[("person", &format!("person{person}"))])?;
            // Increases grow as the auction heats up, giving Q3 ("current at
            // least twice the initial") a stable non-trivial selectivity.
            let increase = 1.5 + dist::exponential(&mut rng, 25.0);
            current += increase;
            w.leaf("increase", &format!("{increase:.2}"))?;
            w.close()?;
        }
        w.leaf("current", &format!("{current:.2}"))?;
        if rng.chance(0.3) {
            w.leaf("privacy", if rng.chance(0.5) { "Yes" } else { "No" })?;
        }
        // The arithmetic partition: open auction i sells item
        // first_open_item() + i (§4.5's identical-streams trick).
        let item = self.cards.first_open_item() + index;
        w.empty("itemref", &[("item", &format!("item{item}"))])?;
        let seller = dist::normal_index(&mut rng, self.cards.persons);
        w.empty("seller", &[("person", &format!("person{seller}"))])?;
        self.write_annotation(w, &mut rng, false)?;
        w.leaf("quantity", &(1 + rng.below(5)).to_string())?;
        w.leaf(
            "type",
            if rng.chance(0.8) {
                "Regular"
            } else {
                "Featured"
            },
        )?;
        w.open("interval")?;
        w.leaf("start", &crate::text::date(&mut rng))?;
        w.leaf("end", &crate::text::date(&mut rng))?;
        w.close()?;
        w.close()
    }

    pub(crate) fn write_closed_auctions<W: Write>(&self, w: &mut XmlWriter<W>) -> io::Result<()> {
        w.open("closed_auctions")?;
        for i in 0..self.cards.closed_auctions {
            self.write_closed_auction(w, i)?;
        }
        w.close()
    }

    pub(crate) fn write_closed_auction<W: Write>(
        &self,
        w: &mut XmlWriter<W>,
        index: usize,
    ) -> io::Result<()> {
        let mut rng = self.entity_stream(streams::CLOSED_AUCTIONS, index);
        w.open("closed_auction")?;
        let seller = dist::normal_index(&mut rng, self.cards.persons);
        w.empty("seller", &[("person", &format!("person{seller}"))])?;
        // Buyers follow the exponential reference distribution (§4.2): a few
        // people buy a lot, which is what Q8/Q9's join fan-out measures.
        let buyer = dist::exponential_index(&mut rng, self.cards.persons, 0.25);
        w.empty("buyer", &[("person", &format!("person{buyer}"))])?;
        // Closed auction i sold item i (the other half of the partition).
        w.empty("itemref", &[("item", &format!("item{index}"))])?;
        let price = 1.5 + dist::exponential(&mut rng, 100.0);
        w.leaf("price", &format!("{price:.2}"))?;
        w.leaf("date", &crate::text::date(&mut rng))?;
        w.leaf("quantity", &(1 + rng.below(5)).to_string())?;
        w.leaf(
            "type",
            if rng.chance(0.8) {
                "Regular"
            } else {
                "Featured"
            },
        )?;
        if rng.chance(0.8) {
            // Deep annotations: Q15/Q16 chase the path annotation/
            // description/parlist/listitem/parlist/listitem/text/emph/
            // keyword, so closed-auction annotations are biased towards
            // nested parlists.
            self.write_annotation(w, &mut rng, true)?;
        }
        w.close()
    }

    fn write_annotation<W: Write>(
        &self,
        w: &mut XmlWriter<W>,
        rng: &mut XmarkRng,
        deep: bool,
    ) -> io::Result<()> {
        w.open("annotation")?;
        let author = dist::exponential_index(rng, self.cards.persons, 0.3);
        w.empty("author", &[("person", &format!("person{author}"))])?;
        if rng.chance(0.85) {
            self.write_description(w, rng, deep)?;
        }
        w.leaf("happiness", &(1 + rng.below(10)).to_string())?;
        w.close()
    }

    // ---- document-centric content (§4.1's second entity group) ----------

    fn write_description<W: Write>(
        &self,
        w: &mut XmlWriter<W>,
        rng: &mut XmarkRng,
        deep: bool,
    ) -> io::Result<()> {
        w.open("description")?;
        let parlist_p = if deep { 0.55 } else { 0.3 };
        if rng.chance(parlist_p) {
            self.write_parlist(w, rng, 0, deep)?;
        } else {
            self.write_text_element(w, rng, 78)?;
        }
        w.close()
    }

    fn write_parlist<W: Write>(
        &self,
        w: &mut XmlWriter<W>,
        rng: &mut XmarkRng,
        depth: usize,
        deep: bool,
    ) -> io::Result<()> {
        w.open("parlist")?;
        let items = 1 + rng.below(3);
        for _ in 0..items {
            w.open("listitem")?;
            let nest_p = if deep { 0.45 } else { 0.2 };
            if depth < 2 && rng.chance(nest_p) {
                self.write_parlist(w, rng, depth + 1, deep)?;
            } else {
                self.write_text_element(w, rng, 55)?;
            }
            w.close()?;
        }
        w.close()
    }

    /// `<text>` mixed content: prose interspersed with `bold`, `keyword`
    /// and `emph` markup "imitating the characteristics of natural language
    /// texts" (§4.1).
    fn write_text_element<W: Write>(
        &self,
        w: &mut XmlWriter<W>,
        rng: &mut XmarkRng,
        mean_words: usize,
    ) -> io::Result<()> {
        w.open("text")?;
        let segments = 1 + rng.below(3) as usize;
        let mut sentence = String::with_capacity(mean_words * 8);
        for seg in 0..segments {
            let words =
                3 + (dist::exponential(rng, mean_words as f64 / segments as f64) as usize).min(120);
            sentence.clear();
            self.vocab.sentence_into(rng, words, &mut sentence);
            w.text(&sentence)?;
            if seg + 1 < segments || rng.chance(0.5) {
                w.text(" ")?;
                match rng.below(3) {
                    0 => w.leaf("bold", self.vocab.sample(rng))?,
                    1 => w.leaf("keyword", self.vocab.sample(rng))?,
                    _ => {
                        // `emph` sometimes wraps a `keyword`: the terminal
                        // steps of Q15's twelve-step path.
                        w.open("emph")?;
                        if rng.chance(0.55) {
                            w.open("keyword")?;
                            w.text(self.vocab.sample(rng))?;
                            w.close()?;
                        } else {
                            w.text(self.vocab.sample(rng))?;
                        }
                        w.close()?;
                    }
                }
                w.text(" ")?;
            }
        }
        w.close()
    }
}

fn region_tag(name: &str) -> &'static str {
    match name {
        "africa" => "africa",
        "asia" => "asia",
        "australia" => "australia",
        "europe" => "europe",
        "namerica" => "namerica",
        "samerica" => "samerica",
        other => panic!("unknown region {other}"),
    }
}

/// Build a random subset (at least one member) of `pool`, joined by ", ".
fn pick_subset(rng: &mut XmarkRng, pool: &[&str]) -> String {
    let mut out = String::new();
    loop {
        for item in pool {
            if rng.chance(0.4) {
                if !out.is_empty() {
                    out.push_str(", ");
                }
                out.push_str(item);
            }
        }
        if !out.is_empty() {
            return out;
        }
    }
}

/// Generate a document with `config`, returning the XML text.
pub fn generate_string(config: &GeneratorConfig) -> String {
    Generator::new(config.clone()).to_string()
}

/// Generate a document with `config` into `out`.
pub fn generate_into<W: Write>(config: &GeneratorConfig, out: W) -> io::Result<GenStats> {
    Generator::new(config.clone()).write(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GeneratorConfig {
        GeneratorConfig {
            factor: 0.001,
            seed: 0,
        }
    }

    #[test]
    fn output_is_well_formed() {
        let xml = generate_string(&tiny());
        let doc = xmark_xml::parse_document(&xml).unwrap();
        assert_eq!(doc.tag_name(doc.root_element()), "site");
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(generate_string(&tiny()), generate_string(&tiny()));
    }

    #[test]
    fn different_seed_changes_content_not_structure() {
        let a = generate_string(&tiny());
        let b = generate_string(&GeneratorConfig {
            factor: 0.001,
            seed: 1,
        });
        assert_ne!(a, b);
        let doc = xmark_xml::parse_document(&b).unwrap();
        assert_eq!(doc.tag_name(doc.root_element()), "site");
    }

    #[test]
    fn person0_exists_for_q1() {
        let xml = generate_string(&tiny());
        assert!(xml.contains("person id=\"person0\""));
    }

    #[test]
    fn sections_appear_in_dtd_order() {
        let xml = generate_string(&tiny());
        let order = [
            "<regions>",
            "<categories>",
            "<catgraph>",
            "<people>",
            "<open_auctions>",
            "<closed_auctions>",
        ];
        let mut last = 0;
        for tag in order {
            let pos = xml.find(tag).unwrap_or_else(|| panic!("{tag} missing"));
            assert!(pos > last, "{tag} out of order");
            last = pos;
        }
    }

    #[test]
    fn stats_match_cardinalities() {
        let g = Generator::new(tiny());
        let mut sink = std::io::sink();
        let stats = g.write(&mut sink).unwrap();
        assert_eq!(&stats.cardinalities, g.cardinalities());
        assert!(stats.elements > 100);
        assert!(stats.max_depth >= 8, "depth {}", stats.max_depth);
    }

    #[test]
    fn item_partition_references_are_consistent() {
        let cfg = GeneratorConfig {
            factor: 0.002,
            seed: 0,
        };
        let xml = generate_string(&cfg);
        let doc = xmark_xml::parse_document(&xml).unwrap();
        let root = doc.root_element();
        let cards = Cardinalities::for_factor(cfg.factor);
        // Every item id referenced from an auction must exist, and the two
        // auction kinds must partition the item set.
        let mut referenced = std::collections::HashSet::new();
        for n in doc.descendants(root) {
            if doc.is_element(n) && doc.tag_name(n) == "itemref" {
                let item = doc.attribute(n, "item").unwrap().to_string();
                assert!(referenced.insert(item.clone()), "{item} referenced twice");
            }
        }
        assert_eq!(referenced.len(), cards.items);
    }

    #[test]
    fn size_scales_linearly() {
        let small = generate_string(&GeneratorConfig {
            factor: 0.002,
            seed: 0,
        })
        .len();
        let large = generate_string(&GeneratorConfig {
            factor: 0.008,
            seed: 0,
        })
        .len();
        let ratio = large as f64 / small as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn calibration_factor_001_is_about_one_megabyte() {
        // Fig. 3: factor 0.01 ≈ 1 MB (and so factor 1.0 ≈ 100 MB).
        let len = generate_string(&GeneratorConfig {
            factor: 0.01,
            seed: 0,
        })
        .len();
        assert!(
            (800_000..1_400_000).contains(&len),
            "factor 0.01 produced {len} bytes; recalibrate text lengths"
        );
    }

    #[test]
    fn gold_occurs_in_descriptions_for_q14() {
        let xml = generate_string(&GeneratorConfig {
            factor: 0.01,
            seed: 0,
        });
        assert!(xml.contains("gold"));
    }

    #[test]
    fn q15_deep_path_exists() {
        // closed_auction/annotation/description/parlist/listitem/parlist/
        // listitem/text/emph/keyword must occur at factor 0.01.
        let xml = generate_string(&GeneratorConfig {
            factor: 0.01,
            seed: 0,
        });
        let doc = xmark_xml::parse_document(&xml).unwrap();
        let root = doc.root_element();
        let mut found = false;
        'outer: for n in doc.descendants(root) {
            if doc.is_element(n) && doc.tag_name(n) == "keyword" {
                let mut path = Vec::new();
                let mut cur = n;
                while let Some(p) = doc.parent(cur) {
                    path.push(doc.tag_name(p).to_string());
                    cur = p;
                }
                let want = [
                    "emph",
                    "text",
                    "listitem",
                    "parlist",
                    "listitem",
                    "parlist",
                    "description",
                    "annotation",
                    "closed_auction",
                ];
                if path.len() >= want.len() && path[..want.len()] == want.map(String::from) {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "Q15's twelve-step path never materialized");
    }

    #[test]
    fn some_persons_lack_homepages_and_incomes() {
        let xml = generate_string(&GeneratorConfig {
            factor: 0.005,
            seed: 0,
        });
        let doc = xmark_xml::parse_document(&xml).unwrap();
        let root = doc.root_element();
        let persons: Vec<_> = doc
            .descendants(root)
            .filter(|&n| doc.is_element(n) && doc.tag_name(n) == "person")
            .collect();
        let with_home = persons
            .iter()
            .filter(|&&p| {
                doc.children(p)
                    .any(|c| doc.is_element(c) && doc.tag_name(c) == "homepage")
            })
            .count();
        assert!(with_home > 0 && with_home < persons.len());
        let with_income = persons
            .iter()
            .filter(|&&p| {
                doc.children(p).any(|c| {
                    doc.is_element(c)
                        && doc.tag_name(c) == "profile"
                        && doc.attribute(c, "income").is_some()
                })
            })
            .count();
        assert!(with_income > 0 && with_income < persons.len());
    }
}
