//! `xmlgen` — the XMark benchmark document generator (paper §4).
//!
//! This crate reproduces the paper's data generator in full:
//!
//! * a platform-independent, deterministic PRNG with named sub-streams
//!   ([`rng`]) — the paper's "several identical streams of random numbers"
//!   trick that keeps generator memory constant,
//! * the textbook distributions used for reference skew ([`dist`]),
//! * the natural-language text model with a 17 000-word Zipf vocabulary
//!   ([`text`]),
//! * the auction-site schema, scaling model and DTD ([`schema`]),
//! * the streaming generator itself ([`generator`]) and the §5 split mode
//!   ([`split`]).
//!
//! # Example
//!
//! ```
//! use xmark_gen::{GeneratorConfig, generate_string};
//!
//! // factor 0.0005 ≈ 50 kB; factor 1.0 ≈ 100 MB (paper Fig. 3).
//! let xml = generate_string(&GeneratorConfig { factor: 0.0005, seed: 0 });
//! let doc = xmark_xml::parse_document(&xml).unwrap();
//! assert_eq!(doc.tag_name(doc.root_element()), "site");
//! ```

pub mod dist;
pub mod generator;
pub mod rng;
pub mod schema;
pub mod split;
pub mod text;

mod writer;

pub use generator::{generate_into, generate_string, GenStats, Generator, GeneratorConfig};
pub use rng::XmarkRng;
pub use schema::{Cardinalities, AUCTION_DTD};
pub use split::{generate_sharded, generate_split, shard_range, SplitFile, SITE_SECTIONS};
pub use text::Vocabulary;
pub use writer::XmlWriter;
