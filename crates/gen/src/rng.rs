//! The deterministic pseudo-random number generator behind `xmlgen`.
//!
//! §4.5 of the paper: *"in order to be able to reproduce the document
//! independently of the platform, we incorporated a random number generator
//! rather than relying on the operating system's built-in random number
//! generators"* — and, crucially, *"we solved this problem by modifying the
//! random number generation to produce several identical streams of random
//! numbers"*, which lets different parts of the document agree on shared
//! random choices (e.g. the sold/unsold item partition) without keeping a
//! log whose size would grow with the document.
//!
//! [`XmarkRng`] is a splitmix64-seeded xoshiro256++-style generator.
//! [`XmarkRng::fork`] derives a *named* sub-stream: forking the same parent
//! seed with the same label always yields the same stream, which is how the
//! generator's independent document sections (regions, people, auctions,
//! split-mode files) stay mutually consistent and generable in isolation —
//! the modern articulation of the paper's multi-stream trick.

/// Deterministic PRNG with named sub-streams.
#[derive(Debug, Clone)]
pub struct XmarkRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl XmarkRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        XmarkRng { state }
    }

    /// Derive an independent, reproducible sub-stream identified by
    /// `stream`. Forking does not advance `self`.
    pub fn fork(&self, stream: u64) -> XmarkRng {
        // Mix the current state with the stream label through splitmix so
        // that fork(a) and fork(b) are decorrelated for a != b.
        let mut sm = self.state[0]
            ^ self.state[1].rotate_left(17)
            ^ self.state[2].rotate_left(31)
            ^ self.state[3].rotate_left(47)
            ^ stream.wrapping_mul(0xd6e8_feb8_6659_fd93);
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        XmarkRng { state }
    }

    /// Next raw 64 random bits (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection-free in the common case; bias is negligible only for
        // tiny bounds, so do one widening multiply with rejection.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XmarkRng::new(42);
        let mut b = XmarkRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XmarkRng::new(1);
        let mut b = XmarkRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_reproducible_and_does_not_advance_parent() {
        let parent = XmarkRng::new(7);
        let mut f1 = parent.fork(3);
        let mut f2 = parent.fork(3);
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        // Parent state untouched: forking again still agrees.
        let mut f3 = parent.fork(3);
        let mut f4 = parent.fork(3);
        assert_eq!(f3.next_u64(), f4.next_u64());
    }

    #[test]
    fn distinct_fork_labels_are_decorrelated() {
        let parent = XmarkRng::new(7);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..200).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = XmarkRng::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut rng = XmarkRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = XmarkRng::new(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} deviates more than 10% from {expected}"
            );
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = XmarkRng::new(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match rng.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = XmarkRng::new(17);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }
}
