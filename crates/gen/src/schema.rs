//! The XMark auction-site schema: cardinality model and DTD.
//!
//! §4.5 of the paper: *"we scale selected sets like the number of items and
//! persons with the user defined factor … we calibrated the numbers to match
//! a total document size of slightly more than 100 MB for scaling factor
//! 1.0"*, and the integrity constraint *"the number of items organized by
//! continents equals the sum of open and closed auctions"*.

/// The six world regions and their item counts at scaling factor 1.0.
/// The totals sum to [`ITEMS_PER_FACTOR`].
pub const REGIONS: &[(&str, u32)] = &[
    ("africa", 550),
    ("asia", 2_000),
    ("australia", 2_200),
    ("europe", 6_000),
    ("namerica", 10_000),
    ("samerica", 1_000),
];

/// Items at factor 1.0 (= open + closed auctions, §4.5).
pub const ITEMS_PER_FACTOR: u32 = 21_750;
/// Persons at factor 1.0.
pub const PERSONS_PER_FACTOR: u32 = 25_500;
/// Open (in-progress) auctions at factor 1.0.
pub const OPEN_AUCTIONS_PER_FACTOR: u32 = 12_000;
/// Closed (finished) auctions at factor 1.0.
pub const CLOSED_AUCTIONS_PER_FACTOR: u32 = 9_750;
/// Categories at factor 1.0.
pub const CATEGORIES_PER_FACTOR: u32 = 1_000;
/// Category-graph edges at factor 1.0.
pub const CATGRAPH_EDGES_PER_FACTOR: u32 = 10_000;

/// Entity counts for one concrete scaling factor.
///
/// All sets scale linearly with floors so even minuscule factors yield a
/// well-formed document that every query can run against. The paper's
/// invariant `items == open + closed` is maintained exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cardinalities {
    /// Items per region, in [`REGIONS`] order.
    pub region_items: Vec<(&'static str, usize)>,
    /// Total items (sum over regions).
    pub items: usize,
    /// Persons.
    pub persons: usize,
    /// Open auctions.
    pub open_auctions: usize,
    /// Closed auctions.
    pub closed_auctions: usize,
    /// Categories.
    pub categories: usize,
    /// Category-graph edges.
    pub catgraph_edges: usize,
}

impl Cardinalities {
    /// Compute the entity counts for `factor`.
    ///
    /// # Panics
    /// Panics if `factor` is not finite and positive.
    pub fn for_factor(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scaling factor must be positive, got {factor}"
        );
        let scaled = |base: u32, floor: usize| -> usize {
            ((base as f64 * factor).round() as usize).max(floor)
        };
        let region_items: Vec<(&'static str, usize)> = REGIONS
            .iter()
            .map(|&(name, base)| (name, scaled(base, 1)))
            .collect();
        let items: usize = region_items.iter().map(|&(_, n)| n).sum();
        // Partition items into sold (closed) and on-sale (open), preserving
        // the paper's ratio 9750:12000 and the invariant open+closed=items.
        let closed_ratio = CLOSED_AUCTIONS_PER_FACTOR as f64 / ITEMS_PER_FACTOR as f64;
        let closed_auctions = ((items as f64 * closed_ratio).round() as usize).clamp(1, items - 1);
        let open_auctions = items - closed_auctions;
        Cardinalities {
            region_items,
            items,
            persons: scaled(PERSONS_PER_FACTOR, 3),
            open_auctions,
            closed_auctions,
            categories: scaled(CATEGORIES_PER_FACTOR, 2),
            catgraph_edges: scaled(CATGRAPH_EDGES_PER_FACTOR, 1),
        }
    }

    /// Index of the first item sold through an *open* auction.
    ///
    /// Items `[0, closed_auctions)` belong to closed auctions, items
    /// `[closed_auctions, items)` to open auctions — the arithmetic
    /// partition that replaces the paper's "log of referenced identifiers"
    /// (§4.5) and keeps generator memory constant.
    pub fn first_open_item(&self) -> usize {
        self.closed_auctions
    }
}

/// The document type definition shipped with the benchmark (§4.4: "A DTD
/// and schema information are provided to allow for more efficient
/// mappings"). System C derives its inlined relational schema from this.
pub const AUCTION_DTD: &str = r#"<!-- XMark auction-site DTD -->
<!ELEMENT site            (regions, categories, catgraph, people,
                           open_auctions, closed_auctions)>
<!ELEMENT regions         (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa          (item*)>
<!ELEMENT asia            (item*)>
<!ELEMENT australia       (item*)>
<!ELEMENT europe          (item*)>
<!ELEMENT namerica        (item*)>
<!ELEMENT samerica        (item*)>
<!ELEMENT item            (location, quantity, name, payment, description,
                           shipping, incategory+, mailbox)>
<!ATTLIST item            id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location        (#PCDATA)>
<!ELEMENT quantity        (#PCDATA)>
<!ELEMENT payment         (#PCDATA)>
<!ELEMENT shipping        (#PCDATA)>
<!ELEMENT name            (#PCDATA)>
<!ELEMENT incategory      EMPTY>
<!ATTLIST incategory      category IDREF #REQUIRED>
<!ELEMENT mailbox         (mail*)>
<!ELEMENT mail            (from, to, date, text)>
<!ELEMENT from            (#PCDATA)>
<!ELEMENT to              (#PCDATA)>
<!ELEMENT date            (#PCDATA)>
<!ELEMENT description     (text | parlist)>
<!ELEMENT text            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword         (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist         (listitem)*>
<!ELEMENT listitem        (text | parlist)*>
<!ELEMENT categories      (category+)>
<!ELEMENT category        (name, description)>
<!ATTLIST category        id ID #REQUIRED>
<!ELEMENT catgraph        (edge*)>
<!ELEMENT edge            EMPTY>
<!ATTLIST edge            from IDREF #REQUIRED to IDREF #REQUIRED>
<!ELEMENT people          (person*)>
<!ELEMENT person          (name, emailaddress, phone?, address?, homepage?,
                           creditcard?, profile?, watches?)>
<!ATTLIST person          id ID #REQUIRED>
<!ELEMENT emailaddress    (#PCDATA)>
<!ELEMENT phone           (#PCDATA)>
<!ELEMENT address         (street, city, country, province?, zipcode)>
<!ELEMENT street          (#PCDATA)>
<!ELEMENT city            (#PCDATA)>
<!ELEMENT country         (#PCDATA)>
<!ELEMENT province        (#PCDATA)>
<!ELEMENT zipcode         (#PCDATA)>
<!ELEMENT homepage        (#PCDATA)>
<!ELEMENT creditcard      (#PCDATA)>
<!ELEMENT profile         (interest*, education?, gender?, business, age?)>
<!ATTLIST profile         income CDATA #IMPLIED>
<!ELEMENT interest        EMPTY>
<!ATTLIST interest        category IDREF #REQUIRED>
<!ELEMENT education       (#PCDATA)>
<!ELEMENT gender          (#PCDATA)>
<!ELEMENT business        (#PCDATA)>
<!ELEMENT age             (#PCDATA)>
<!ELEMENT watches         (watch*)>
<!ELEMENT watch           EMPTY>
<!ATTLIST watch           open_auction IDREF #REQUIRED>
<!ELEMENT open_auctions   (open_auction*)>
<!ELEMENT open_auction    (initial, reserve?, bidder*, current, privacy?,
                           itemref, seller, annotation, quantity, type,
                           interval)>
<!ATTLIST open_auction    id ID #REQUIRED>
<!ELEMENT initial         (#PCDATA)>
<!ELEMENT reserve         (#PCDATA)>
<!ELEMENT current         (#PCDATA)>
<!ELEMENT privacy         (#PCDATA)>
<!ELEMENT bidder          (date, time, personref, increase)>
<!ELEMENT time            (#PCDATA)>
<!ELEMENT personref       EMPTY>
<!ATTLIST personref       person IDREF #REQUIRED>
<!ELEMENT increase        (#PCDATA)>
<!ELEMENT itemref         EMPTY>
<!ATTLIST itemref         item IDREF #REQUIRED>
<!ELEMENT seller          EMPTY>
<!ATTLIST seller          person IDREF #REQUIRED>
<!ELEMENT annotation      (author, description?, happiness)>
<!ELEMENT author          EMPTY>
<!ATTLIST author          person IDREF #REQUIRED>
<!ELEMENT happiness       (#PCDATA)>
<!ELEMENT interval        (start, end)>
<!ELEMENT start           (#PCDATA)>
<!ELEMENT end             (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction  (seller, buyer, itemref, price, date, quantity,
                           type, annotation?)>
<!ELEMENT buyer           EMPTY>
<!ATTLIST buyer           person IDREF #REQUIRED>
<!ELEMENT price           (#PCDATA)>
<!ELEMENT type            (#PCDATA)>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_one_matches_paper_cardinalities() {
        let c = Cardinalities::for_factor(1.0);
        assert_eq!(c.items, 21_750);
        assert_eq!(c.persons, 25_500);
        assert_eq!(c.open_auctions, 12_000);
        assert_eq!(c.closed_auctions, 9_750);
        assert_eq!(c.categories, 1_000);
        assert_eq!(c.catgraph_edges, 10_000);
    }

    #[test]
    fn items_equal_open_plus_closed_at_every_factor() {
        for &f in &[0.0001, 0.001, 0.01, 0.1, 0.37, 1.0, 2.5, 10.0] {
            let c = Cardinalities::for_factor(f);
            assert_eq!(
                c.items,
                c.open_auctions + c.closed_auctions,
                "invariant broken at factor {f}"
            );
            assert!(c.open_auctions >= 1);
            assert!(c.closed_auctions >= 1);
        }
    }

    #[test]
    fn regions_sum_to_items_per_factor() {
        let total: u32 = REGIONS.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, ITEMS_PER_FACTOR);
    }

    #[test]
    fn tiny_factor_keeps_floors() {
        let c = Cardinalities::for_factor(0.00001);
        assert_eq!(c.items, 6); // one per region
        assert!(c.persons >= 3);
        assert!(c.categories >= 2);
    }

    #[test]
    fn scaling_is_linear() {
        let c1 = Cardinalities::for_factor(0.1);
        let c2 = Cardinalities::for_factor(0.2);
        assert!((c2.items as f64 / c1.items as f64 - 2.0).abs() < 0.01);
        assert!((c2.persons as f64 / c1.persons as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "scaling factor")]
    fn rejects_nonpositive_factor() {
        let _ = Cardinalities::for_factor(0.0);
    }

    #[test]
    fn item_partition_is_exhaustive() {
        let c = Cardinalities::for_factor(0.01);
        assert_eq!(c.first_open_item(), c.closed_auctions);
        assert_eq!(c.items - c.first_open_item(), c.open_auctions);
    }

    #[test]
    fn dtd_mentions_every_queried_element() {
        for tag in [
            "open_auction",
            "closed_auction",
            "person",
            "item",
            "category",
            "bidder",
            "increase",
            "itemref",
            "seller",
            "buyer",
            "profile",
            "interest",
            "keyword",
            "emph",
            "parlist",
            "listitem",
            "homepage",
            "income",
            "reserve",
            "initial",
            "current",
            "location",
        ] {
            assert!(AUCTION_DTD.contains(tag), "DTD is missing {tag}");
        }
    }
}
