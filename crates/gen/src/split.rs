//! Split-mode generation (§5 of the paper).
//!
//! *"the data generator xmlgen additionally offers a mode that outputs n
//! entities (as defined in Section 4) per file where n can be chosen by the
//! user"* — for systems that cannot bulkload a single 100 MB document.
//!
//! Each emitted file is a well-formed document whose root element names the
//! section it came from (`<people>`, `<open_auctions>` …) and which contains
//! at most `entities_per_file` entities. Because every entity is generated
//! from its own named random stream (see [`crate::generator`]), the content
//! of each entity is byte-identical to its appearance in the one-document
//! version — the property §5 demands ("the semantics of the queries …
//! should not differ").

use std::io;

use crate::generator::{streams, Generator, GeneratorConfig};
use crate::writer::XmlWriter;

/// Writer callback: emits entity `i` of a section into a buffer-backed
/// [`XmlWriter`].
type EntityWriter = dyn Fn(&Generator, &mut XmlWriter<&mut Vec<u8>>, usize) -> io::Result<()>;

/// One split-mode output file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitFile {
    /// Suggested file name, e.g. `people_003.xml`.
    pub name: String,
    /// File contents (a well-formed XML document).
    pub content: String,
}

/// Generate the benchmark database as a collection of files with at most
/// `entities_per_file` entities each.
///
/// # Panics
/// Panics if `entities_per_file == 0`.
pub fn generate_split(config: &GeneratorConfig, entities_per_file: usize) -> Vec<SplitFile> {
    assert!(entities_per_file > 0, "entities_per_file must be positive");
    let generator = Generator::new(config.clone());
    let cards = generator.cardinalities().clone();
    let mut files = Vec::new();

    let mut emit_section = |section: &'static str, count: usize, write_entity: &EntityWriter| {
        let mut index = 0usize;
        let mut file_no = 0usize;
        while index < count {
            let mut buf = Vec::new();
            let mut w = XmlWriter::new(&mut buf);
            w.declaration().expect("vec write");
            w.open(section).expect("vec write");
            let end = (index + entities_per_file).min(count);
            for i in index..end {
                write_entity(&generator, &mut w, i).expect("vec write");
            }
            w.close().expect("vec write");
            w.finish().expect("vec write");
            files.push(SplitFile {
                name: format!("{section}_{file_no:03}.xml"),
                content: String::from_utf8(buf).expect("generator emits ASCII"),
            });
            index = end;
            file_no += 1;
        }
    };

    emit_section("regions", cards.items, &|g, w, i| g.write_item(w, i));
    emit_section("people", cards.persons, &|g, w, i| g.write_person(w, i));
    emit_section("open_auctions", cards.open_auctions, &|g, w, i| {
        g.write_open_auction(w, i)
    });
    emit_section("closed_auctions", cards.closed_auctions, &|g, w, i| {
        g.write_closed_auction(w, i)
    });
    // Categories and the catgraph are small; they always fit one file each.
    {
        let mut buf = Vec::new();
        let mut w = XmlWriter::new(&mut buf);
        w.declaration().expect("vec write");
        generator.write_categories(&mut w).expect("vec write");
        w.finish().expect("vec write");
        files.push(SplitFile {
            name: "categories_000.xml".to_string(),
            content: String::from_utf8(buf).expect("ASCII"),
        });
    }
    {
        let mut buf = Vec::new();
        let mut w = XmlWriter::new(&mut buf);
        w.declaration().expect("vec write");
        generator.write_catgraph(&mut w).expect("vec write");
        w.finish().expect("vec write");
        files.push(SplitFile {
            name: "catgraph_000.xml".to_string(),
            content: String::from_utf8(buf).expect("ASCII"),
        });
    }
    files
}

// ---- sharded generation --------------------------------------------------

/// The `<site>` section tags in document order — the layout contract the
/// sharded store relies on (every shard document carries all six, empty
/// where the shard owns nothing).
pub const SITE_SECTIONS: [&str; 6] = [
    "regions",
    "categories",
    "catgraph",
    "people",
    "open_auctions",
    "closed_auctions",
];

/// Balanced contiguous entity range `[start, end)` owned by shard `k` of
/// `n` (0-based). Ranges tile `0..total` exactly and differ in size by at
/// most one.
pub fn shard_range(total: usize, n: usize, k: usize) -> (usize, usize) {
    assert!(n > 0 && k < n, "shard index out of range");
    (total * k / n, total * (k + 1) / n)
}

/// Generate one logical benchmark database as `shards + 1` complete
/// `<site>` documents: file 0 is the **global head shard** (the full
/// `regions`/`categories`/`catgraph` sections every query may touch),
/// files `1..=shards` are **entity shards** holding balanced contiguous
/// ranges of the `person`/`open_auction`/`closed_auction` entities.
///
/// Every document has the same six-section skeleton (unowned sections are
/// empty elements), and because each entity is generated from its own
/// named random stream (see [`crate::generator`]), concatenating the
/// shards' section contents in shard order reproduces the monolithic
/// document's sections byte-for-byte — the invariant the sharded store's
/// union view is built on.
///
/// # Panics
/// Panics if `shards == 0`.
pub fn generate_sharded(config: &GeneratorConfig, shards: usize) -> Vec<SplitFile> {
    assert!(shards > 0, "shards must be positive");
    let generator = Generator::new(config.clone());
    let cards = generator.cardinalities().clone();
    let mut files = Vec::new();

    for k in 0..=shards {
        let mut buf = Vec::new();
        let mut w = XmlWriter::new(&mut buf);
        w.declaration().expect("vec write");
        w.open("site").expect("vec write");
        if k == 0 {
            // The global head: shared reference data, no entities.
            generator.write_regions(&mut w).expect("vec write");
            generator.write_categories(&mut w).expect("vec write");
            generator.write_catgraph(&mut w).expect("vec write");
            w.empty("people", &[]).expect("vec write");
            w.empty("open_auctions", &[]).expect("vec write");
            w.empty("closed_auctions", &[]).expect("vec write");
        } else {
            w.empty("regions", &[]).expect("vec write");
            w.empty("categories", &[]).expect("vec write");
            w.empty("catgraph", &[]).expect("vec write");
            let entity_section = |w: &mut XmlWriter<&mut Vec<u8>>,
                                  tag: &'static str,
                                  total: usize,
                                  write_entity: &EntityWriter| {
                let (start, end) = shard_range(total, shards, k - 1);
                w.open(tag).expect("vec write");
                for i in start..end {
                    write_entity(&generator, w, i).expect("vec write");
                }
                w.close().expect("vec write");
            };
            entity_section(&mut w, "people", cards.persons, &|g, w, i| {
                g.write_person(w, i)
            });
            entity_section(&mut w, "open_auctions", cards.open_auctions, &|g, w, i| {
                g.write_open_auction(w, i)
            });
            entity_section(
                &mut w,
                "closed_auctions",
                cards.closed_auctions,
                &|g, w, i| g.write_closed_auction(w, i),
            );
        }
        w.close().expect("vec write");
        w.newline().expect("vec write");
        w.finish().expect("vec write");
        let name = if k == 0 {
            "shard_global.xml".to_string()
        } else {
            format!("shard_{:03}.xml", k - 1)
        };
        files.push(SplitFile {
            name,
            content: String::from_utf8(buf).expect("generator emits ASCII"),
        });
    }
    files
}

// Re-export the stream labels privately needed above.
#[allow(unused_imports)]
use streams as _streams_doc;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GeneratorConfig {
        GeneratorConfig {
            factor: 0.001,
            seed: 0,
        }
    }

    #[test]
    fn every_split_file_is_well_formed() {
        for file in generate_split(&cfg(), 10) {
            let doc = xmark_xml::parse_document(&file.content)
                .unwrap_or_else(|e| panic!("{}: {e}", file.name));
            assert!(doc.node_count() > 0);
        }
    }

    #[test]
    fn chunking_respects_entity_budget() {
        let files = generate_split(&cfg(), 7);
        for file in &files {
            if file.name.starts_with("people_") {
                let doc = xmark_xml::parse_document(&file.content).unwrap();
                let persons = doc
                    .descendants(doc.root_element())
                    .filter(|&n| doc.is_element(n) && doc.tag_name(n) == "person")
                    .count();
                assert!(persons <= 7, "{} holds {persons} persons", file.name);
            }
        }
    }

    #[test]
    fn split_and_monolithic_entities_are_identical() {
        let config = cfg();
        let whole = crate::generator::generate_string(&config);
        let files = generate_split(&config, 5);
        // person3's serialization in the split files must appear verbatim in
        // the monolithic document.
        let person_chunk = files
            .iter()
            .find(|f| f.name.starts_with("people_000"))
            .unwrap();
        let start = person_chunk.content.find("<person id=\"person3\"").unwrap();
        let end = person_chunk.content[start..].find("</person>").unwrap();
        let fragment = &person_chunk.content[start..start + end];
        assert!(
            whole.contains(fragment),
            "split-mode person3 differs from the monolithic document"
        );
    }

    #[test]
    fn file_count_scales_with_budget() {
        let a = generate_split(&cfg(), 5).len();
        let b = generate_split(&cfg(), 50).len();
        assert!(a > b);
    }

    #[test]
    #[should_panic(expected = "entities_per_file")]
    fn zero_budget_is_rejected() {
        let _ = generate_split(&cfg(), 0);
    }
}
