//! The natural-language text model.
//!
//! §4.3 of the paper: the authors analyzed Shakespeare's plays, extracted
//! the 17 000 most frequent non-stopwords, and generate text mimicking those
//! frequencies; names and e-mail addresses came from scrambled phone
//! directories.
//!
//! **Substitution (documented in DESIGN.md):** we do not ship Shakespeare's
//! text. The queries only observe (a) string-length distributions, (b) the
//! skew of token frequencies — Q14's full-text `contains(., "gold")` must
//! select a stable, non-trivial fraction of descriptions — and (c) strict
//! determinism. We therefore synthesize a 17 000-word vocabulary from
//! deterministic syllable composition, rank it by a Zipf(1.0) law, and pin a
//! set of *anchor words* (including `gold`) at fixed ranks so keyword-search
//! selectivities are reproducible across machines, exactly like the paper's
//! fixed word list.

use crate::dist::Zipf;
use crate::rng::XmarkRng;

/// Number of words in the vocabulary, per §4.3 of the paper.
pub const VOCABULARY_SIZE: usize = 17_000;

/// Anchor words pinned to fixed ranks (rank = index × 37 + 5) so that
/// full-text queries have stable selectivity. `gold` is the Q14 keyword.
pub const ANCHOR_WORDS: &[&str] = &[
    "gold", "silver", "sword", "shield", "crown", "castle", "merchant", "voyage", "fortune",
    "garden", "winter", "summer", "honour", "duke", "queen", "king", "letter", "promise", "market",
    "harbour",
];

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p",
    "pl", "pr", "qu", "r", "s", "sh", "sl", "sp", "st", "str", "t", "th", "tr", "v", "w", "wh",
    "y", "z",
];
const NUCLEI: &[&str] = &[
    "a", "ai", "au", "e", "ea", "ee", "i", "ie", "o", "oa", "oo", "ou", "u",
];
const CODAS: &[&str] = &[
    "", "b", "ck", "d", "ft", "g", "k", "l", "ld", "ll", "m", "n", "nd", "ng", "nt", "p", "r",
    "rd", "rn", "rt", "s", "ss", "st", "t", "th", "x",
];

/// The generator's word list plus samplers for prose, names and e-mail
/// addresses.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    zipf: Zipf,
}

impl Vocabulary {
    /// Build the standard 17 000-word vocabulary. Deterministic: the word at
    /// any rank is the same on every platform and in every run.
    pub fn standard() -> Self {
        Self::with_size(VOCABULARY_SIZE)
    }

    /// Build a smaller vocabulary (used by tests).
    pub fn with_size(size: usize) -> Self {
        assert!(size >= ANCHOR_WORDS.len() * 38, "vocabulary too small");
        let mut words = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::with_capacity(size * 2);
        for anchor in ANCHOR_WORDS {
            seen.insert((*anchor).to_string());
        }

        // Deterministic enumeration of syllable compositions, ordered by a
        // fixed mixing function so adjacent ranks don't share prefixes.
        let mut rng = XmarkRng::new(0x9a7c_0c1e_5eed_f00d);
        while words.len() < size {
            let syllables = 1 + (rng.below(100) < 55) as usize + (rng.below(100) < 25) as usize;
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(ONSETS[rng.below(ONSETS.len() as u64) as usize]);
                w.push_str(NUCLEI[rng.below(NUCLEI.len() as u64) as usize]);
                w.push_str(CODAS[rng.below(CODAS.len() as u64) as usize]);
            }
            if w.len() >= 2 && seen.insert(w.clone()) {
                words.push(w);
            }
        }

        // Pin the anchors at spread-out ranks.
        for (i, anchor) in ANCHOR_WORDS.iter().enumerate() {
            let rank = i * 37 + 5;
            words[rank] = (*anchor).to_string();
        }

        let zipf = Zipf::new(size, 1.0);
        Vocabulary { words, zipf }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at a rank (rank 0 = most frequent).
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// Sample one word according to the Zipf law.
    pub fn sample<'v>(&'v self, rng: &mut XmarkRng) -> &'v str {
        &self.words[self.zipf.sample(rng)]
    }

    /// Append `n` Zipf-sampled words, space-separated, to `out`.
    pub fn sentence_into(&self, rng: &mut XmarkRng, n: usize, out: &mut String) {
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.sample(rng));
        }
    }

    /// A sentence of `n` words as a fresh string.
    pub fn sentence(&self, rng: &mut XmarkRng, n: usize) -> String {
        let mut s = String::with_capacity(n * 7);
        self.sentence_into(rng, n, &mut s);
        s
    }
}

const GIVEN_NAMES: &[&str] = &[
    "Albrecht", "Beatrice", "Cyrus", "Daniela", "Edmund", "Farida", "Gregor", "Hannah", "Ioana",
    "Jasper", "Katrin", "Laszlo", "Mirela", "Nils", "Odette", "Piotr", "Quentin", "Ralph", "Sanda",
    "Takeshi", "Ulrike", "Viktor", "Wanda", "Xenia", "Yusuf", "Zelda", "Martin", "Florian",
    "Michael", "Amira", "Bogdan", "Celine",
];
const FAMILY_NAMES: &[&str] = &[
    "Schmidt",
    "Waas",
    "Kersten",
    "Carey",
    "Manolescu",
    "Busse",
    "Okafor",
    "Tanaka",
    "Ferreira",
    "Novak",
    "Lindqvist",
    "Moreau",
    "Castillo",
    "Petrov",
    "Andersen",
    "Gallo",
    "Haugen",
    "Ibrahim",
    "Jansen",
    "Kovacs",
    "Larsen",
    "Meyer",
    "Nakamura",
    "Olsen",
    "Popescu",
    "Quinn",
    "Rossi",
    "Silva",
    "Tamm",
    "Urbano",
    "Virtanen",
    "Weber",
];
const DOMAINS: &[&str] = &[
    "cwi.nl",
    "example.com",
    "auction.example",
    "mail.example",
    "ipsi.de",
    "inria.fr",
    "acm.example",
    "vldb.example",
];

/// Generate a person name ("Given Family") — the scrambled-phone-directory
/// substitute.
pub fn person_name(rng: &mut XmarkRng) -> (String, &'static str, &'static str) {
    let given = GIVEN_NAMES[rng.below(GIVEN_NAMES.len() as u64) as usize];
    let family = FAMILY_NAMES[rng.below(FAMILY_NAMES.len() as u64) as usize];
    (format!("{given} {family}"), given, family)
}

/// E-mail address derived from a name, disambiguated with the person index.
pub fn email(rng: &mut XmarkRng, family: &str, index: usize) -> String {
    let domain = DOMAINS[rng.below(DOMAINS.len() as u64) as usize];
    format!("mailto:{family}{index}@{domain}")
}

/// A phone number string: "+NN (NNN) NNNNNNN".
pub fn phone(rng: &mut XmarkRng) -> String {
    format!(
        "+{} ({}) {}",
        rng.range_inclusive(1, 99),
        rng.range_inclusive(100, 999),
        rng.range_inclusive(1_000_000, 9_999_999)
    )
}

/// A homepage URL for the person with `family` name and `index`.
pub fn homepage(rng: &mut XmarkRng, family: &str, index: usize) -> String {
    let domain = DOMAINS[rng.below(DOMAINS.len() as u64) as usize];
    format!("http://www.{domain}/~{family}{index}")
}

/// A creditcard number "NNNN NNNN NNNN NNNN".
pub fn creditcard(rng: &mut XmarkRng) -> String {
    format!(
        "{} {} {} {}",
        rng.range_inclusive(1000, 9999),
        rng.range_inclusive(1000, 9999),
        rng.range_inclusive(1000, 9999),
        rng.range_inclusive(1000, 9999)
    )
}

/// An ISO-ish date "MM/DD/YYYY" within the benchmark's fictional window
/// (1998–2001, the era of the paper).
pub fn date(rng: &mut XmarkRng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.range_inclusive(1, 12),
        rng.range_inclusive(1, 28),
        rng.range_inclusive(1998, 2001)
    )
}

/// A time "HH:MM:SS".
pub fn time(rng: &mut XmarkRng) -> String {
    format!(
        "{:02}:{:02}:{:02}",
        rng.below(24),
        rng.below(60),
        rng.below(60)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vocabulary_has_17000_distinct_words() {
        let v = Vocabulary::standard();
        assert_eq!(v.len(), VOCABULARY_SIZE);
        let distinct: std::collections::HashSet<_> = (0..v.len()).map(|i| v.word(i)).collect();
        assert_eq!(distinct.len(), VOCABULARY_SIZE);
    }

    #[test]
    fn vocabulary_is_deterministic() {
        let a = Vocabulary::with_size(1000);
        let b = Vocabulary::with_size(1000);
        for i in 0..1000 {
            assert_eq!(a.word(i), b.word(i));
        }
    }

    #[test]
    fn gold_is_pinned_near_the_top() {
        let v = Vocabulary::with_size(1000);
        assert_eq!(v.word(5), "gold");
        assert_eq!(v.word(42), "silver");
    }

    #[test]
    fn sampling_is_zipf_skewed() {
        let v = Vocabulary::with_size(1000);
        let mut rng = XmarkRng::new(3);
        let mut top_word = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            if v.sample(&mut rng) == v.word(0) {
                top_word += 1;
            }
        }
        // Zipf(1.0) over 1000 ranks gives rank 0 probability ≈ 0.133.
        let frac = top_word as f64 / trials as f64;
        assert!((0.11..0.16).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn sentences_have_requested_word_count() {
        let v = Vocabulary::with_size(1000);
        let mut rng = XmarkRng::new(4);
        let s = v.sentence(&mut rng, 12);
        assert_eq!(s.split(' ').count(), 12);
    }

    #[test]
    fn gold_appears_in_long_text_with_expected_frequency() {
        let v = Vocabulary::standard();
        let mut rng = XmarkRng::new(5);
        // gold is at rank 5 of 17000 with Zipf(1.0): p ≈ (1/6)/H(17000) ≈ 0.0164.
        let trials = 100_000;
        let hits = (0..trials).filter(|_| v.sample(&mut rng) == "gold").count();
        let frac = hits as f64 / trials as f64;
        assert!((0.012..0.022).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn entity_strings_are_deterministic_and_well_formed() {
        let mut a = XmarkRng::new(6);
        let mut b = XmarkRng::new(6);
        assert_eq!(person_name(&mut a).0, person_name(&mut b).0);
        assert_eq!(phone(&mut a), phone(&mut b));
        let d = date(&mut a);
        assert_eq!(d.len(), 10);
        let t = time(&mut a);
        assert_eq!(t.len(), 8);
        let cc = creditcard(&mut a);
        assert_eq!(cc.split(' ').count(), 4);
        assert!(email(&mut a, "Schmidt", 17).starts_with("mailto:Schmidt17@"));
        assert!(homepage(&mut a, "Waas", 3).starts_with("http://www."));
    }
}
