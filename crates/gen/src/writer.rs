//! A streaming XML writer with O(1) memory.
//!
//! §4.5 requires the generator to be "time and resource efficient …
//! resource allocation is constant — independent of the size of the
//! generated document". The writer therefore never buffers the document: it
//! pushes escaped bytes straight into the underlying `io::Write` and only
//! keeps the open-tag stack (bounded by the DTD's nesting depth).

use std::io::{self, Write};

use xmark_xml::escape;

/// Streaming writer tracking the open-element stack and output statistics.
pub struct XmlWriter<W: Write> {
    out: W,
    stack: Vec<&'static str>,
    bytes: u64,
    elements: u64,
    max_depth: usize,
    scratch: String,
}

impl<W: Write> XmlWriter<W> {
    /// Wrap an output sink.
    pub fn new(out: W) -> Self {
        XmlWriter {
            out,
            stack: Vec::with_capacity(16),
            bytes: 0,
            elements: 0,
            max_depth: 0,
            scratch: String::with_capacity(256),
        }
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Total elements opened so far (including empty elements).
    pub fn elements_written(&self) -> u64 {
        self.elements
    }

    /// Deepest nesting level reached.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn write_str(&mut self, s: &str) -> io::Result<()> {
        self.out.write_all(s.as_bytes())?;
        self.bytes += s.len() as u64;
        Ok(())
    }

    /// Emit the XML declaration.
    pub fn declaration(&mut self) -> io::Result<()> {
        self.write_str("<?xml version=\"1.0\" standalone=\"yes\"?>\n")
    }

    /// Open `<tag>`.
    pub fn open(&mut self, tag: &'static str) -> io::Result<()> {
        self.open_with(tag, &[])
    }

    /// Open `<tag a="v" …>`. Attribute values are escaped.
    pub fn open_with(&mut self, tag: &'static str, attrs: &[(&str, &str)]) -> io::Result<()> {
        self.start_tag(tag, attrs)?;
        self.write_str(">")?;
        self.stack.push(tag);
        self.max_depth = self.max_depth.max(self.stack.len());
        Ok(())
    }

    fn start_tag(&mut self, tag: &str, attrs: &[(&str, &str)]) -> io::Result<()> {
        self.elements += 1;
        self.scratch.clear();
        self.scratch.push('<');
        self.scratch.push_str(tag);
        for (name, value) in attrs {
            self.scratch.push(' ');
            self.scratch.push_str(name);
            self.scratch.push_str("=\"");
            escape::escape_attr_into(value, &mut self.scratch);
            self.scratch.push('"');
        }
        let s = std::mem::take(&mut self.scratch);
        self.write_str(&s)?;
        self.scratch = s;
        Ok(())
    }

    /// Close the innermost open element.
    ///
    /// # Panics
    /// Panics if no element is open — a generator bug, not an I/O condition.
    pub fn close(&mut self) -> io::Result<()> {
        let tag = self.stack.pop().expect("close() with no open element");
        self.scratch.clear();
        self.scratch.push_str("</");
        self.scratch.push_str(tag);
        self.scratch.push('>');
        let s = std::mem::take(&mut self.scratch);
        self.write_str(&s)?;
        self.scratch = s;
        Ok(())
    }

    /// Emit `<tag a="v"…/>`.
    pub fn empty(&mut self, tag: &'static str, attrs: &[(&str, &str)]) -> io::Result<()> {
        self.start_tag(tag, attrs)?;
        self.max_depth = self.max_depth.max(self.stack.len() + 1);
        self.write_str("/>")
    }

    /// Emit escaped character data.
    pub fn text(&mut self, text: &str) -> io::Result<()> {
        self.scratch.clear();
        escape::escape_text_into(text, &mut self.scratch);
        let s = std::mem::take(&mut self.scratch);
        self.write_str(&s)?;
        self.scratch = s;
        Ok(())
    }

    /// Emit `<tag>text</tag>`.
    pub fn leaf(&mut self, tag: &'static str, text: &str) -> io::Result<()> {
        self.open(tag)?;
        self.text(text)?;
        self.close()
    }

    /// Emit a raw newline (the only cosmetic whitespace xmlgen produces).
    pub fn newline(&mut self) -> io::Result<()> {
        self.write_str("\n")
    }

    /// Finish writing; verifies all elements are closed and flushes.
    pub fn finish(mut self) -> io::Result<(u64, u64, usize)> {
        assert!(
            self.stack.is_empty(),
            "unclosed elements at finish: {:?}",
            self.stack
        );
        self.out.flush()?;
        Ok((self.bytes, self.elements, self.max_depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(f: impl FnOnce(&mut XmlWriter<&mut Vec<u8>>)) -> String {
        let mut buf = Vec::new();
        let mut w = XmlWriter::new(&mut buf);
        f(&mut w);
        w.finish().unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn writes_nested_elements() {
        let s = render(|w| {
            w.open("site").unwrap();
            w.open_with("person", &[("id", "person0")]).unwrap();
            w.leaf("name", "Alice").unwrap();
            w.close().unwrap();
            w.close().unwrap();
        });
        assert_eq!(
            s,
            r#"<site><person id="person0"><name>Alice</name></person></site>"#
        );
    }

    #[test]
    fn escapes_text_and_attributes() {
        let s = render(|w| {
            w.open_with("a", &[("q", "x<\"y")]).unwrap();
            w.text("1 & 2").unwrap();
            w.close().unwrap();
        });
        assert_eq!(s, "<a q=\"x&lt;&quot;y\">1 &amp; 2</a>");
    }

    #[test]
    fn tracks_statistics() {
        let mut buf = Vec::new();
        let mut w = XmlWriter::new(&mut buf);
        w.open("a").unwrap();
        w.open("b").unwrap();
        w.empty("c", &[]).unwrap();
        w.close().unwrap();
        w.close().unwrap();
        let (bytes, elements, depth) = w.finish().unwrap();
        assert_eq!(bytes, "<a><b><c/></b></a>".len() as u64);
        assert_eq!(elements, 3);
        assert_eq!(depth, 3);
    }

    #[test]
    fn output_parses_back() {
        let s = render(|w| {
            w.declaration().unwrap();
            w.open("site").unwrap();
            w.empty("itemref", &[("item", "item3")]).unwrap();
            w.leaf("price", "40.50").unwrap();
            w.close().unwrap();
        });
        let doc = xmark_xml::parse_document(&s).unwrap();
        assert_eq!(doc.tag_name(doc.root_element()), "site");
    }

    #[test]
    #[should_panic(expected = "unclosed elements")]
    fn finish_panics_on_unclosed() {
        let mut buf = Vec::new();
        let mut w = XmlWriter::new(&mut buf);
        w.open("a").unwrap();
        let _ = w.finish();
    }
}
