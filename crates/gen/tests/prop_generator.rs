//! Property tests for xmlgen: §4.5's guarantees must hold for *every*
//! (factor, seed) pair, not just the canonical ones.

use proptest::prelude::*;

use xmark_gen::{generate_split, generate_string, Cardinalities, GeneratorConfig, XmarkRng};

/// The `id` attributes of `entity`-tagged elements inside the root child
/// named `section`, in document order.
fn section_entity_ids(doc: &xmark_xml::Document, section: &str, entity: &str) -> Vec<String> {
    let root = doc.root_element();
    let sec = doc
        .descendants(root)
        .find(|&n| doc.is_element(n) && doc.tag_name(n) == section)
        .unwrap_or_else(|| panic!("no <{section}> section"));
    doc.descendants(sec)
        .filter(|&n| doc.is_element(n) && doc.tag_name(n) == entity)
        .filter_map(|n| doc.attribute(n, "id").map(str::to_string))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn output_is_deterministic(seed in any::<u64>(), factor in 0.0002f64..0.003) {
        let cfg = GeneratorConfig { factor, seed };
        prop_assert_eq!(generate_string(&cfg), generate_string(&cfg));
    }

    #[test]
    fn output_is_well_formed(seed in any::<u64>(), factor in 0.0002f64..0.003) {
        let xml = generate_string(&GeneratorConfig { factor, seed });
        let doc = xmark_xml::parse_document(&xml).unwrap();
        prop_assert_eq!(doc.tag_name(doc.root_element()), "site");
    }

    #[test]
    fn output_is_seven_bit_ascii(seed in any::<u64>()) {
        // §4.4: "We also restrict ourselves to the seven bit ASCII
        // character set."
        let xml = generate_string(&GeneratorConfig { factor: 0.0005, seed });
        prop_assert!(xml.bytes().all(|b| b < 0x80));
    }

    #[test]
    fn cardinality_invariants_hold(factor in 0.0001f64..5.0) {
        let c = Cardinalities::for_factor(factor);
        prop_assert_eq!(c.items, c.open_auctions + c.closed_auctions);
        prop_assert!(c.open_auctions >= 1);
        prop_assert!(c.closed_auctions >= 1);
        prop_assert!(c.persons >= 3);
        prop_assert_eq!(c.first_open_item(), c.closed_auctions);
    }

    #[test]
    fn split_mode_is_consistent_with_monolithic(seed in any::<u64>()) {
        let cfg = GeneratorConfig { factor: 0.0005, seed };
        let whole = generate_string(&cfg);
        let files = generate_split(&cfg, 4);
        // Every split file parses, and each item fragment occurs verbatim
        // in the monolithic document.
        for file in files {
            let doc = xmark_xml::parse_document(&file.content).unwrap();
            prop_assert!(doc.node_count() > 0);
            if file.name.starts_with("regions_000") {
                let start = file.content.find("<item ").unwrap();
                let end = file.content[start..].find("</item>").unwrap();
                prop_assert!(whole.contains(&file.content[start..start + end]));
            }
        }
    }

    #[test]
    fn sharded_partition_covers_every_entity_exactly_once(
        seed in any::<u64>(),
        factor in 0.0002f64..0.0015,
        shards in 1usize..9,
    ) {
        let cfg = GeneratorConfig { factor, seed };
        let whole = generate_string(&cfg);
        let wdoc = xmark_xml::parse_document(&whole).unwrap();
        let files = xmark_gen::generate_sharded(&cfg, shards);
        prop_assert_eq!(files.len(), shards + 1);
        // Per entity section: concatenating the shards' entity ids in
        // shard order must reproduce the monolithic list exactly — every
        // entity exactly once, document order preserved within each shard.
        for (section, entity) in [
            ("people", "person"),
            ("open_auctions", "open_auction"),
            ("closed_auctions", "closed_auction"),
        ] {
            let whole_ids = section_entity_ids(&wdoc, section, entity);
            let mut sharded_ids = Vec::new();
            for f in &files[1..] {
                let doc = xmark_xml::parse_document(&f.content).unwrap();
                sharded_ids.extend(section_entity_ids(&doc, section, entity));
            }
            prop_assert_eq!(sharded_ids, whole_ids);
        }
        // The global head shard carries every item exactly once.
        let gdoc = xmark_xml::parse_document(&files[0].content).unwrap();
        let whole_items = section_entity_ids(&wdoc, "regions", "item");
        prop_assert_eq!(section_entity_ids(&gdoc, "regions", "item"), whole_items);
    }

    #[test]
    fn rng_fork_streams_are_independent_of_consumption_order(
        seed in any::<u64>(),
        label_a in any::<u64>(),
        label_b in any::<u64>(),
    ) {
        prop_assume!(label_a != label_b);
        let parent = XmarkRng::new(seed);
        // Consume A before B.
        let mut a1 = parent.fork(label_a);
        let _ = (0..10).map(|_| a1.next_u64()).count();
        let mut b1 = parent.fork(label_b);
        let b_first: Vec<u64> = (0..10).map(|_| b1.next_u64()).collect();
        // Consume B without touching A.
        let mut b2 = parent.fork(label_b);
        let b_second: Vec<u64> = (0..10).map(|_| b2.next_u64()).collect();
        prop_assert_eq!(b_first, b_second);
    }

    #[test]
    fn uniform_below_is_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = XmarkRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn ids_are_unique_for_any_seed(seed in any::<u64>()) {
        let xml = generate_string(&GeneratorConfig { factor: 0.001, seed });
        let doc = xmark_xml::parse_document(&xml).unwrap();
        let root = doc.root_element();
        let mut ids = std::collections::HashSet::new();
        for n in doc.descendants(root) {
            if doc.is_element(n) {
                if let Some(id) = doc.attribute(n, "id") {
                    prop_assert!(ids.insert(id.to_string()), "duplicate id {}", id);
                }
            }
        }
        prop_assert!(ids.len() > 20);
    }
}
