//! A minimal Rust source model for lexer-level linting.
//!
//! The container has no network, so the linter cannot lean on `syn` or
//! dylint — instead this module reduces a source file to the three facts
//! the rules need, with a hand-rolled scanner that understands just
//! enough Rust lexical structure to be trustworthy:
//!
//! * **code** — each line's text with comments removed and string /
//!   char-literal *contents* blanked (the delimiters survive), so token
//!   searches like `.unwrap()` can never match inside a string or a doc
//!   comment;
//! * **comment** — each line's comment text, where waivers
//!   (`// lint: allow(R2) reason`) and `// ordering:` justifications
//!   live;
//! * **in_test** — whether the line sits inside a `#[cfg(test)]` item,
//!   tracked by brace depth, where the panic rules do not apply.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth, plus `b`/`br`
//! prefixes), char literals vs. lifetimes. Not handled (and not needed):
//! macro fragment specifiers, non-`cfg(test)` conditional compilation.

/// One source line, reduced to what the rules inspect.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comments removed and literal contents
    /// blanked.
    pub code: String,
    /// The line's comment text (joined if several comments share a line).
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Reduce `source` to its per-line model.
pub fn model(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut prev_code_char = ' ';
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    line.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if let Some(advance) = raw_string_open(&chars, i, prev_code_char) {
                    let hashes = advance - 1 - usize::from(chars[i] == 'b');
                    line.code.push('"');
                    state = State::RawStr(hashes as u32);
                    i += advance + 1;
                } else if c == '\'' {
                    i += char_or_lifetime(&chars, i, &mut line.code);
                } else {
                    line.code.push(c);
                    prev_code_char = c;
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    prev_code_char = '"';
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    line.code.push('"');
                    state = State::Code;
                    prev_code_char = '"';
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    mark_test_regions(&mut lines);
    lines
}

/// Does a raw-string literal open at `i`? Returns the opener length up to
/// and including everything *before* the quote (so the caller can derive
/// the hash count), or `None`. `prev` guards against the `r` of an
/// identifier like `var` being read as a prefix.
fn raw_string_open(chars: &[char], i: usize, prev: char) -> Option<usize> {
    if prev.is_alphanumeric() || prev == '_' {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(j - i)
}

/// Does the quote at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguish a char literal (`'x'`, `'\n'`) from a lifetime (`'a`).
/// Returns how many chars to consume; char-literal contents are blanked
/// to `''` in `code`, lifetimes pass through.
fn char_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        while j < chars.len() {
            if chars[j] == '\\' {
                j += 2;
            } else if chars[j] == '\'' {
                code.push_str("''");
                return j + 1 - i;
            } else {
                j += 1;
            }
        }
        code.push('\'');
        1
    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
        code.push_str("''");
        3
    } else {
        code.push('\'');
        1
    }
}

/// Mark every line inside a `#[cfg(test)]` item by tracking the brace
/// depth at which the attribute's region opens.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0usize;
    let mut pending = false;
    let mut test_start: Option<usize> = None;
    for line in lines.iter_mut() {
        let at_start = test_start.is_some();
        let code = line.code.clone();
        let bytes = code.as_bytes();
        let mut j = 0;
        while j < bytes.len() {
            if code[j..].starts_with("#[cfg(test)]") {
                pending = true;
                j += "#[cfg(test)]".len();
                continue;
            }
            match bytes[j] {
                b'{' => {
                    depth += 1;
                    if pending {
                        if test_start.is_none() {
                            test_start = Some(depth);
                        }
                        pending = false;
                    }
                }
                b'}' => {
                    if test_start == Some(depth) {
                        test_start = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
            j += 1;
        }
        line.in_test = at_start || test_start.is_some() || pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped_from_code() {
        let lines = model(
            "let x = \"contains .unwrap() inside\"; // comment .expect(\nlet y = 1; /* block\n.unwrap() */ let z = 2;",
        );
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].comment.contains(".expect("));
        assert!(!lines[2].code.contains(".unwrap()"));
        assert!(lines[2].code.contains("let z"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let lines = model("let s = r#\"a \".unwrap()\" b\"#; s.len();");
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].code.contains(".len()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = model("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lines[0].code.contains("<'a>"));
        let lines = model("let c = 'x'; let nl = '\\n'; let q = '\\''; c.is_ascii();");
        assert!(lines[0].code.contains(".is_ascii()"));
        assert!(!lines[0].code.contains('x'), "{}", lines[0].code);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn cold() {}";
        let lines = model(src);
        assert!(!lines[0].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }
}
