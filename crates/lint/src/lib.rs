//! `xmark-lint`: the workspace discipline linter.
//!
//! A self-contained, lexer-based linter (no `syn`, no dylint — the build
//! environment is offline) that pins the source-level disciplines the
//! engine's correctness rests on: no panics in the execution hot path,
//! one lock-poisoning policy, justified atomic orderings, and the paged
//! backend's flush-before-write / pin-through-the-pool contracts. Run it
//! as
//!
//! ```text
//! cargo run -p xmark-lint
//! ```
//!
//! from the workspace root: it scans every `crates/*/src/**/*.rs` file,
//! prints `file:line: Rn (rule-name): message` diagnostics, and exits
//! non-zero if anything is flagged — the CI gate.
//!
//! The rules are documented in [`rules`]; a finding is silenced by an
//! inline waiver comment that states its reason:
//!
//! ```text
//! // lint: allow(R1) the slot is written two lines up, same type
//! .expect("slot holds a JoinIndex")
//! ```
//!
//! **Adding a rule**: give it a variant in [`rules::Rule`] (code + name),
//! implement it as a function over the [`lexer`] source model, call it
//! from [`lint_file`] (per-file rules) or [`lint_files`] (workspace-wide
//! rules like R6), and add one violating + one clean fixture test beside
//! the existing ones in this crate.

pub mod lexer;
pub mod rules;

pub use rules::{Diagnostic, Rule};

/// Run the per-file rules (R1–R5, R7, R8) over one source file. `path`
/// is the repo-relative path (used both for rule scoping and
/// diagnostics).
pub fn lint_file(path: &str, source: &str) -> Vec<Diagnostic> {
    let lines = lexer::model(source);
    let mut out = Vec::new();
    out.extend(rules::hot_path_panics(path, &lines));
    out.extend(rules::lock_discipline(path, &lines));
    out.extend(rules::atomic_ordering(path, &lines));
    out.extend(rules::wal_write_back(path, &lines));
    out.extend(rules::page_guard_pins(path, &lines));
    out.extend(rules::batch_prealloc(path, &lines));
    out.extend(rules::wal_logged_mutations(path, &lines));
    out
}

/// Run every rule — the per-file R1–R5, R7 and R8 plus the
/// workspace-wide R6 — over a set of `(repo-relative path, source)`
/// pairs.
pub fn lint_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let modeled: Vec<(String, Vec<lexer::Line>)> = files
        .iter()
        .map(|(p, s)| (p.clone(), lexer::model(s)))
        .collect();
    for (path, source) in files {
        out.extend(lint_file(path, source));
    }
    out.extend(rules::send_sync_roster(&modeled));
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.code()).collect()
    }

    // ---- R1 --------------------------------------------------------------

    #[test]
    fn r1_flags_hot_path_unwrap_and_expect() {
        let src = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"msg\"); }";
        let diags = lint_file("crates/query/src/eval.rs", src);
        assert_eq!(codes(&diags), ["R1", "R1"]);
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 2);
    }

    #[test]
    fn r1_clean_outside_hot_path_tests_and_waivers() {
        // Not a hot-path module at all.
        assert!(lint_file("crates/query/src/parse.rs", "fn f() { x.unwrap(); }").is_empty());
        // Inside #[cfg(test)].
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(lint_file("crates/query/src/eval.rs", test_src).is_empty());
        // unwrap_or_else is not unwrap; a waived expect carries its reason.
        let ok = "fn f() { x.unwrap_or_else(Default::default); }\n\
                  // lint: allow(R1) slot written above, type fixed by construction\n\
                  fn g() { y.expect(\"slot type\"); }";
        assert!(lint_file("crates/store/src/paged/store.rs", ok).is_empty());
    }

    // ---- R2 --------------------------------------------------------------

    #[test]
    fn r2_flags_raw_lock() {
        let src = "fn f(m: &Mutex<u32>) { *m.lock().unwrap() += 1; }";
        let diags = lint_file("crates/core/src/service.rs", src);
        assert_eq!(codes(&diags), ["R2"]);
    }

    #[test]
    fn r2_clean_via_helper_or_in_sync_module() {
        let src = "fn f(m: &Mutex<u32>) { *lock(m) += 1; }";
        assert!(lint_file("crates/core/src/service.rs", src).is_empty());
        let raw = "pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n m.lock().unwrap_or_else(PoisonError::into_inner)\n}";
        assert!(lint_file("crates/store/src/sync.rs", raw).is_empty());
    }

    // ---- R3 --------------------------------------------------------------

    #[test]
    fn r3_flags_unjustified_strong_ordering() {
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }";
        let diags = lint_file("crates/store/src/index.rs", src);
        assert_eq!(codes(&diags), ["R3"]);
        assert!(diags[0].message.contains("SeqCst"));
    }

    #[test]
    fn r3_clean_for_relaxed_or_justified() {
        let relaxed = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(lint_file("crates/store/src/index.rs", relaxed).is_empty());
        let justified = "// ordering: Release pairs with the Acquire in reader()\n\
                         fn f(c: &AtomicU64) { c.store(1, Ordering::Release); }";
        assert!(lint_file("crates/store/src/index.rs", justified).is_empty());
    }

    // ---- R4 --------------------------------------------------------------

    #[test]
    fn r4_flags_write_back_outside_buffer() {
        let src = "fn evict(fm: &mut FileManager) { fm.write_page(id, &page).unwrap(); }";
        let diags = lint_file("crates/store/src/paged/store.rs", src);
        assert!(codes(&diags).contains(&"R4"), "{diags:?}");
    }

    #[test]
    fn r4_clean_inside_buffer() {
        let src = "fn write_back(&self) { self.flush_wal(lsn); file.write_page(id, &page)?; }";
        assert!(lint_file("crates/store/src/paged/buffer.rs", src).is_empty());
    }

    // ---- R5 --------------------------------------------------------------

    #[test]
    fn r5_flags_raw_page_read_outside_pool() {
        let src = "fn peek(fm: &mut FileManager) { fm.read_page(id, &mut page)?; }";
        let diags = lint_file("crates/store/src/paged/wal.rs", src);
        assert_eq!(codes(&diags), ["R5"]);
    }

    #[test]
    fn r5_clean_through_page_guard() {
        let src =
            "fn node(&self, pid: PageId) -> NodeRec { let g = self.pool.pin(pid)?; g.read() }";
        assert!(lint_file("crates/store/src/paged/store.rs", src).is_empty());
    }

    // ---- R7 --------------------------------------------------------------

    #[test]
    fn r7_flags_growable_vec_inside_batch_fills() {
        let src = "fn next_batch(&mut self, ev: &Evaluator, out: &mut Batch) {\n\
                   \x20 let mut buf = Vec::new();\n\
                   \x20 buf.push(1);\n\
                   }\n\
                   pub fn next_block(\n\
                   \x20 &mut self,\n\
                   \x20 out: &mut NodeBatch,\n\
                   ) -> usize {\n\
                   \x20 let runs = vec![0u32; 4];\n\
                   \x20 runs.len()\n\
                   }";
        let diags = lint_file("crates/store/src/axis.rs", src);
        assert_eq!(codes(&diags), ["R7", "R7"]);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 9, "multi-line signatures are tracked");
        assert!(diags[0].message.contains("preallocated"));
    }

    #[test]
    fn r7_clean_outside_batch_fills_with_capacity_and_waivers() {
        // The same allocation outside a batch fill is not R7's business.
        let outside = "fn build() -> Vec<u32> { let v = Vec::new(); v }\n\
                       fn next_batch(&mut self, out: &mut Batch) {\n\
                       \x20 out.push(1);\n\
                       }\n\
                       fn after() { let v = vec![1]; }";
        assert!(lint_file("crates/query/src/stream.rs", outside).is_empty());
        // Preallocation is the fix, so it stays legal; so does a waiver
        // that states its reason.
        let ok = "fn next_block(&mut self, out: &mut NodeBatch) -> usize {\n\
                  \x20 let scratch = Vec::with_capacity(out.room());\n\
                  \x20 // lint: allow(R7) one-time lazy init, reused across calls\n\
                  \x20 let first = Vec::new();\n\
                  \x20 scratch.len() + first.len()\n\
                  }";
        assert!(lint_file("crates/store/src/axis.rs", ok).is_empty());
    }

    // ---- R8 --------------------------------------------------------------

    #[test]
    fn r8_flags_unlogged_page_mutation_in_commit_paths() {
        // A function that mutates a pinned page but never appends a WAL
        // record — in both scoped locations.
        let src = "fn patch(&self, pid: PageId) -> io::Result<()> {\n\
                   \x20 let mut g = self.pool.pin(pid)?;\n\
                   \x20 g.write().set_lsn(lsn);\n\
                   \x20 Ok(())\n\
                   }";
        let diags = lint_file("crates/store/src/paged/store.rs", src);
        assert_eq!(codes(&diags), ["R8"]);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("write-ahead"));
        let diags = lint_file("crates/txn/src/versioned.rs", src);
        assert_eq!(codes(&diags), ["R8"]);
    }

    #[test]
    fn r8_clean_when_logged_out_of_scope_or_waived() {
        // The same mutation is fine when the enclosing function appends
        // the record first — including across a multi-line signature.
        let logged = "fn patch(\n\
                      \x20 &self,\n\
                      \x20 pid: PageId,\n\
                      ) -> io::Result<()> {\n\
                      \x20 let lsn = self.wal.append(&LogRecord::FormatPage { page: pid, kind });\n\
                      \x20 let mut g = self.pool.pin(pid)?;\n\
                      \x20 g.write().set_lsn(lsn);\n\
                      \x20 Ok(())\n\
                      }";
        assert!(lint_file("crates/store/src/paged/store.rs", logged).is_empty());
        // Pool internals flush WAL by LSN, not by appending; the rule
        // does not apply there, nor outside the commit paths.
        let unlogged = "fn f(&self) { self.guard.write().clear(); }";
        assert!(lint_file("crates/store/src/paged/buffer.rs", unlogged).is_empty());
        assert!(lint_file("crates/store/src/axis.rs", unlogged).is_empty());
        // A waiver with a reason, and `OpenOptions::write(true)` (an
        // option setter, not a page mutation), both stay silent.
        let ok = "fn truncate(&self) -> io::Result<()> {\n\
                  \x20 let f = OpenOptions::new().write(true).open(&p)?;\n\
                  \x20 // lint: allow(R8) recovery truncation happens before replay begins\n\
                  \x20 self.guard.write().clear();\n\
                  \x20 Ok(())\n\
                  }";
        assert!(lint_file("crates/txn/src/recovery.rs", ok).is_empty());
    }

    // ---- R6 --------------------------------------------------------------

    fn roster_fixture(assertions: &str) -> Vec<(String, String)> {
        vec![
            (
                "crates/store/src/lib.rs".to_string(),
                format!("const _: () = {{\n const fn assert_send_sync<T: Send + Sync>() {{}}\n {assertions}\n}};"),
            ),
            (
                "crates/store/src/edge.rs".to_string(),
                "impl XmlStore for EdgeStore { }".to_string(),
            ),
            (
                "crates/store/src/naive.rs".to_string(),
                "impl XmlStore for NaiveStore { }".to_string(),
            ),
        ]
    }

    #[test]
    fn r6_flags_store_missing_from_roster() {
        let files = roster_fixture("assert_send_sync::<EdgeStore>();");
        let diags = lint_files(&files);
        assert_eq!(codes(&diags), ["R6"]);
        assert!(diags[0].message.contains("NaiveStore"));
        assert_eq!(diags[0].file, "crates/store/src/naive.rs");
    }

    #[test]
    fn r6_clean_when_roster_is_complete() {
        let files =
            roster_fixture("assert_send_sync::<EdgeStore>();\n assert_send_sync::<NaiveStore>();");
        assert!(lint_files(&files).is_empty());
    }
}
