//! The `xmark-lint` binary: lint every workspace source file and exit
//! non-zero on findings (the CI gate). See the library docs for the
//! rules and the waiver syntax.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            eprintln!("xmark-lint: cannot read {}: {e}", crates_dir.display());
            return ExitCode::from(2);
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir, &root, &mut files);
    }
    files.sort();

    let sources: Vec<(String, String)> = files
        .iter()
        .filter_map(|rel| {
            let text = std::fs::read_to_string(root.join(rel)).ok()?;
            Some((rel.clone(), text))
        })
        .collect();

    let diagnostics = xmark_lint::lint_files(&sources);
    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!(
            "xmark-lint: {} files clean across {} rules",
            sources.len(),
            xmark_lint::Rule::ALL.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xmark-lint: {} finding(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest, which
/// keeps the binary runnable from any working directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Recursively collect `.rs` files under `dir` as root-relative paths
/// with `/` separators (rule scoping matches on them).
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
}
