//! The eight workspace discipline rules.
//!
//! Each rule is a lexer-level check over the [`crate::lexer`] source
//! model; all of them honor inline waivers of the form
//! `// lint: allow(R2) reason` on the flagged line or on the comment
//! lines directly above it — a waiver without a stated reason is itself
//! not a waiver (the comment must be longer than the marker).
//!
//! * **R1 hot-path-panics** — no `.unwrap()` / `.expect(…)` in the
//!   execution hot path (`eval.rs`, `stream.rs`, `paged/*`) outside
//!   `#[cfg(test)]`: a query must surface errors, not abort the process.
//! * **R2 lock-discipline** — every `.lock()` call routes through the
//!   poison-recovering helpers in `crates/store/src/sync.rs`, so the
//!   workspace has exactly one poisoning policy.
//! * **R3 atomic-ordering** — atomics use the established
//!   `Ordering::Relaxed` counter idiom; any stronger ordering carries an
//!   `// ordering:` justification comment.
//! * **R4 wal-write-back** — in `paged/`, dirty pages reach disk only
//!   through the WAL-flushing write-back in `buffer.rs` (`write_page`
//!   call sites are allowlisted to `file.rs` + `buffer.rs`).
//! * **R5 page-guard-pins** — in `paged/`, raw page reads (`read_page`)
//!   appear only in `file.rs` and `buffer.rs`; everyone else pins
//!   through the pool and holds a `PageGuard`.
//! * **R6 send-sync-roster** — every `impl XmlStore for T` appears in the
//!   compile-time `Send + Sync` assertion roster in
//!   `crates/store/src/lib.rs`.
//! * **R7 batch-prealloc** — `next_batch` / `next_block` bodies fill the
//!   caller's preallocated batch; allocating a fresh growable `Vec`
//!   (`Vec::new(…)` / `vec![…]`) per call reintroduces exactly the
//!   per-item reallocation the vectorized pull path exists to remove.
//! * **R8 wal-logged-mutations** — in the commit paths (`paged/` outside
//!   the pool internals, plus `crates/txn/`), every page mutation
//!   (`.write()` on a pinned guard) sits in a function that also appends
//!   to the WAL (`.append(`): write-ahead means no mutation path exists
//!   that cannot be replayed after a crash.

use crate::lexer::Line;

/// One of the eight lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1: no `.unwrap()` / `.expect()` in hot-path modules.
    HotPathPanics,
    /// R2: `Mutex::lock()` only through the poison-handling helper.
    LockDiscipline,
    /// R3: atomics use `Relaxed` or justify their ordering.
    AtomicOrdering,
    /// R4: dirty-page write-back only through the WAL-flushing path.
    WalWriteBack,
    /// R5: raw page reads only inside the buffer pool.
    PageGuardPins,
    /// R6: every `XmlStore` impl is in the `Send + Sync` roster.
    SendSyncRoster,
    /// R7: no fresh growable `Vec` inside `next_batch` / `next_block`.
    BatchPrealloc,
    /// R8: commit-path page mutations sit in WAL-appending functions.
    WalLoggedMutations,
}

impl Rule {
    /// All rules, in R1…R8 order.
    pub const ALL: [Rule; 8] = [
        Rule::HotPathPanics,
        Rule::LockDiscipline,
        Rule::AtomicOrdering,
        Rule::WalWriteBack,
        Rule::PageGuardPins,
        Rule::SendSyncRoster,
        Rule::BatchPrealloc,
        Rule::WalLoggedMutations,
    ];

    /// Stable short code (`"R1"`…`"R8"`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::HotPathPanics => "R1",
            Rule::LockDiscipline => "R2",
            Rule::AtomicOrdering => "R3",
            Rule::WalWriteBack => "R4",
            Rule::PageGuardPins => "R5",
            Rule::SendSyncRoster => "R6",
            Rule::BatchPrealloc => "R7",
            Rule::WalLoggedMutations => "R8",
        }
    }

    /// Kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HotPathPanics => "hot-path-panics",
            Rule::LockDiscipline => "lock-discipline",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::WalWriteBack => "wal-write-back",
            Rule::PageGuardPins => "page-guard-pins",
            Rule::SendSyncRoster => "send-sync-roster",
            Rule::BatchPrealloc => "batch-prealloc",
            Rule::WalLoggedMutations => "wal-logged-mutations",
        }
    }
}

/// One finding: rule, location, and why.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} ({}): {}",
            self.file,
            self.line,
            self.rule.code(),
            self.rule.name(),
            self.message
        )
    }
}

/// Is the finding at `idx` waived for `rule` — `// lint: allow(Rn)` with a
/// reason, on the same line or the comment lines directly above?
fn waived(lines: &[Line], idx: usize, rule: Rule) -> bool {
    let marker = format!("lint: allow({})", rule.code());
    let has = |l: &Line| {
        l.comment
            .find(&marker)
            .is_some_and(|at| l.comment[at + marker.len()..].trim().len() > 2)
    };
    if has(&lines[idx]) {
        return true;
    }
    // Scan upward through comment-only lines.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.code.trim().is_empty() && !l.comment.is_empty() {
            if has(l) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// Like [`waived`], but for R3's dedicated `// ordering:` justification.
fn ordering_justified(lines: &[Line], idx: usize) -> bool {
    let has = |l: &Line| l.comment.contains("ordering:");
    if has(&lines[idx]) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.code.trim().is_empty() && !l.comment.is_empty() {
            if has(l) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn in_paged(path: &str) -> bool {
    path.contains("/paged/")
}

/// Flag every occurrence of `token` in non-test code lines, unless
/// waived.
fn flag_token(
    out: &mut Vec<Diagnostic>,
    lines: &[Line],
    path: &str,
    rule: Rule,
    token: &str,
    message: &str,
) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !line.code.contains(token) {
            continue;
        }
        if waived(lines, idx, rule) {
            continue;
        }
        out.push(Diagnostic {
            rule,
            file: path.to_string(),
            line: idx + 1,
            message: message.to_string(),
        });
    }
}

/// R1: no `.unwrap()` / `.expect(` in hot-path modules.
pub fn hot_path_panics(path: &str, lines: &[Line]) -> Vec<Diagnostic> {
    let hot = matches!(basename(path), "eval.rs" | "stream.rs") || in_paged(path);
    let mut out = Vec::new();
    if !hot {
        return out;
    }
    flag_token(
        &mut out,
        lines,
        path,
        Rule::HotPathPanics,
        ".unwrap()",
        "`.unwrap()` in a hot-path module: propagate the error or guard the invariant",
    );
    flag_token(
        &mut out,
        lines,
        path,
        Rule::HotPathPanics,
        ".expect(",
        "`.expect()` in a hot-path module: propagate the error or guard the invariant",
    );
    out
}

/// R2: `.lock()` only inside the poison-handling helper module.
pub fn lock_discipline(path: &str, lines: &[Line]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if path.ends_with("store/src/sync.rs") {
        return out;
    }
    flag_token(
        &mut out,
        lines,
        path,
        Rule::LockDiscipline,
        ".lock()",
        "raw `.lock()`: route through `xmark_store::sync::lock` (one poisoning policy)",
    );
    out
}

/// R3: atomics use the `Relaxed` counter idiom or justify their ordering.
pub fn atomic_ordering(path: &str, lines: &[Line]) -> Vec<Diagnostic> {
    const STRONG: [&str; 4] = [
        "Ordering::SeqCst",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
    ];
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(which) = STRONG.iter().find(|t| line.code.contains(*t)) else {
            continue;
        };
        if ordering_justified(lines, idx) || waived(lines, idx, Rule::AtomicOrdering) {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::AtomicOrdering,
            file: path.to_string(),
            line: idx + 1,
            message: format!(
                "`{which}` without an `// ordering:` justification (the workspace idiom is \
                 Relaxed counters)"
            ),
        });
    }
    out
}

/// R4: in `paged/`, `write_page` call sites only in the WAL-flushing
/// write-back (`buffer.rs`) and the definition site (`file.rs`).
pub fn wal_write_back(path: &str, lines: &[Line]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !in_paged(path) || matches!(basename(path), "buffer.rs" | "file.rs") {
        return out;
    }
    flag_token(
        &mut out,
        lines,
        path,
        Rule::WalWriteBack,
        "write_page(",
        "dirty-page write-back outside `buffer.rs`: pages reach disk only through the \
         WAL-flushing path",
    );
    out
}

/// R5: in `paged/`, raw page reads only inside the pool (`buffer.rs`) and
/// the file manager (`file.rs`); everyone else holds a `PageGuard`.
pub fn page_guard_pins(path: &str, lines: &[Line]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !in_paged(path) || matches!(basename(path), "buffer.rs" | "file.rs") {
        return out;
    }
    flag_token(
        &mut out,
        lines,
        path,
        Rule::PageGuardPins,
        "read_page(",
        "raw page read outside the buffer pool: pin through the pool and hold a `PageGuard`",
    );
    out
}

/// R7: batch producers fill the caller's preallocated buffer. A fresh
/// growable `Vec` (`Vec::new(…)` / `vec![…]`) inside a `fn next_batch` /
/// `fn next_block` body grows by per-item reallocation on the hottest
/// loop in the engine — the allocation belongs in the cursor constructor
/// (or uses `Vec::with_capacity`), not in the per-batch fill.
pub fn batch_prealloc(path: &str, lines: &[Line]) -> Vec<Diagnostic> {
    const TOKENS: [&str; 2] = ["Vec::new(", "vec!["];
    let mut out = Vec::new();
    // Brace-depth tracking: `in_sig` between the `fn` token and its
    // opening brace (signatures span lines), then `depth` counts braces
    // until the body closes. Braces inside string literals would confuse
    // this, but batch fills have no business formatting strings either.
    let mut in_sig = false;
    let mut depth = 0usize;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if depth == 0
            && !in_sig
            && (code.contains("fn next_batch") || code.contains("fn next_block"))
        {
            in_sig = true;
        }
        if (in_sig || depth > 0) && !line.in_test {
            for token in TOKENS {
                if code.contains(token) && !waived(lines, idx, Rule::BatchPrealloc) {
                    out.push(Diagnostic {
                        rule: Rule::BatchPrealloc,
                        file: path.to_string(),
                        line: idx + 1,
                        message: format!(
                            "`{token}…` inside a batch fill: the buffer is preallocated by \
                             the caller — allocate in the constructor or with \
                             `Vec::with_capacity`"
                        ),
                    });
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if in_sig {
                        in_sig = false;
                        depth = 1;
                    } else if depth > 0 {
                        depth += 1;
                    }
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    out
}

/// R8: in the commit paths — `paged/` outside the pool internals
/// (`buffer.rs`, `file.rs`) plus `crates/txn/` — every page mutation
/// (`.write()` on a pinned page guard) must sit inside a function that
/// also appends to the WAL (`.append(`). Write-ahead logging is a
/// *pairing* discipline: a mutation whose enclosing function never logs
/// is a state change recovery cannot replay.
pub fn wal_logged_mutations(path: &str, lines: &[Line]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let scoped = (in_paged(path) && !matches!(basename(path), "buffer.rs" | "file.rs"))
        || path.contains("txn/src/");
    if !scoped {
        return out;
    }

    // Pass 1: function spans via brace-depth tracking (same caveats as
    // R7 — the lexer blanks string contents, so literal braces cannot
    // confuse the count). A span runs from the `fn` keyword to the `}`
    // that closes its body; nested `fn` items produce nested spans.
    struct Span {
        start: usize,
        end: usize,
    }
    let mut spans: Vec<Span> = Vec::new();
    let mut open: Vec<(usize, usize)> = Vec::new(); // (span idx, body depth)
    let mut pending_sig: Option<usize> = None;
    let mut depth = 0usize;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if pending_sig.is_none() && is_fn_def(code) {
            spans.push(Span {
                start: idx,
                end: lines.len().saturating_sub(1),
            });
            pending_sig = Some(spans.len() - 1);
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(si) = pending_sig.take() {
                        open.push((si, depth));
                    }
                }
                '}' => {
                    if let Some(&(si, d)) = open.last() {
                        if depth == d {
                            spans[si].end = idx;
                            open.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
    }

    // Pass 2: flag `.write()` lines with no WAL append anywhere in an
    // enclosing function span.
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !line.code.contains(".write()") {
            continue;
        }
        let logged = spans
            .iter()
            .filter(|s| s.start <= idx && idx <= s.end)
            .any(|s| {
                lines[s.start..=s.end]
                    .iter()
                    .any(|l| l.code.contains(".append("))
            });
        if logged || waived(lines, idx, Rule::WalLoggedMutations) {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::WalLoggedMutations,
            file: path.to_string(),
            line: idx + 1,
            message: "page mutation in a function that never appends to the WAL: log a \
                      redo/undo record before mutating (write-ahead), or route through a \
                      logging helper"
                .to_string(),
        });
    }
    out
}

/// Does this code line start a `fn` item definition (not a call or a
/// mention inside a type)? Lexer-level heuristic: the `fn` token bounded
/// by non-identifier characters, followed by an identifier.
fn is_fn_def(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = rest.find("fn ") {
        let before_ok = at == 0
            || rest[..at]
                .chars()
                .next_back()
                .is_some_and(|c| !c.is_alphanumeric() && c != '_');
        let after = &rest[at + 3..];
        if before_ok
            && after
                .trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            return true;
        }
        rest = &rest[at + 3..];
    }
    false
}

/// R6: every `impl XmlStore for T` appears in the `Send + Sync`
/// compile-time assertion roster in `crates/store/src/lib.rs`.
pub fn send_sync_roster(files: &[(String, Vec<Line>)]) -> Vec<Diagnostic> {
    let mut roster = Vec::new();
    for (path, lines) in files {
        if !path.ends_with("store/src/lib.rs") {
            continue;
        }
        for line in lines {
            let mut rest = line.code.as_str();
            while let Some(at) = rest.find("assert_send_sync::<") {
                rest = &rest[at + "assert_send_sync::<".len()..];
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    roster.push(name);
                }
            }
        }
    }
    let mut out = Vec::new();
    for (path, lines) in files {
        for (idx, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(at) = line.code.find("impl XmlStore for ") else {
                continue;
            };
            let name: String = line.code[at + "impl XmlStore for ".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() || roster.contains(&name) {
                continue;
            }
            if waived(lines, idx, Rule::SendSyncRoster) {
                continue;
            }
            out.push(Diagnostic {
                rule: Rule::SendSyncRoster,
                file: path.clone(),
                line: idx + 1,
                message: format!(
                    "`{name}` implements XmlStore but is missing from the Send + Sync \
                     assertion roster in crates/store/src/lib.rs"
                ),
            });
        }
    }
    out
}
