//! A self-contained, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `proptest` cannot be fetched. This shim implements the subset of
//! the API that the workspace's property tests use — strategies built from
//! ranges, simple regex-like string patterns, tuples, collections,
//! `prop_map`/`prop_filter`/`prop_recursive`, `prop_oneof!`, and the
//! `proptest!` test-runner macro with `prop_assert*`/`prop_assume!` — with
//! deterministic pseudo-random generation and **no shrinking**. A failing
//! case panics with the case's formatted inputs so it can be reproduced by
//! seed.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

// ---- deterministic RNG -----------------------------------------------------

/// SplitMix64-based deterministic generator. Each `proptest!` test derives
/// its stream from the test's name, so runs are reproducible.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a reproducible stream from a label (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for b in label.bytes() {
            state = state.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        TestRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- errors and config -----------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---- the Strategy trait ----------------------------------------------------

/// A generator of values (no shrinking in this shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (regenerates on rejection).
    fn prop_filter<P>(self, reason: &'static str, pred: P) -> Filter<Self, P>
    where
        Self: Sized,
        P: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Build a recursive strategy: up to `depth` applications of `recurse`
    /// over this strategy as the base case. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let base = leaf.clone();
            strat = BoxedStrategy::new(move |rng: &mut TestRng| {
                // Bias toward recursion so trees actually branch; the
                // depth-bounded chain guarantees termination.
                if rng.below(4) == 0 {
                    base.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        strat
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng: &mut TestRng| inner.generate(rng))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

// ---- combinators -----------------------------------------------------------

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, P> {
    inner: S,
    reason: &'static str,
    pred: P,
}

impl<S: Strategy, P: Fn(&S::Value) -> bool> Strategy for Filter<S, P> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from pre-boxed options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---- primitive strategies --------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.below(2) == 1
    }
}

/// Strategy for any value of `T` (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        })*
    };
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        })*
    };
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

// ---- string patterns -------------------------------------------------------

/// One repeated atom of a pattern: a set of char ranges plus `{min,max}`.
#[derive(Debug, Clone)]
struct PatternAtom {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Parse the small regex subset the tests use: sequences of `[class]` /
/// `\PC` / literal-char atoms, each with an optional `{m,n}` repetition.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let ranges: Vec<(char, char)> = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                for cc in chars.by_ref() {
                    match cc {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range: rewrite the previous literal.
                            let lo = prev.take().expect("checked");
                            class.pop();
                            // The next char closes the range.
                            continue_range(&mut class, lo, &mut prev);
                        }
                        other => {
                            if let Some(p) = prev {
                                if let Some(last) = class.last_mut() {
                                    if last.0 == p && last.1 == '\0' {
                                        last.1 = other;
                                        prev = None;
                                        continue;
                                    }
                                }
                            }
                            class.push((other, other));
                            prev = Some(other);
                        }
                    }
                }
                class
                    .into_iter()
                    .map(|(a, b)| if b == '\0' { (a, a) } else { (a, b) })
                    .collect()
            }
            '\\' => match chars.next() {
                // `\PC` — "any printable char" in the tests' usage.
                Some('P') => {
                    assert_eq!(chars.next(), Some('C'), "only \\PC is supported");
                    printable_ranges()
                }
                Some(esc) => vec![(esc, esc)],
                None => panic!("dangling escape in pattern {pattern:?}"),
            },
            lit => vec![(lit, lit)],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for cc in chars.by_ref() {
                if cc == '}' {
                    break;
                }
                spec.push(cc);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern repetition"),
                    hi.trim().parse().expect("pattern repetition"),
                ),
                None => {
                    let n = spec.trim().parse().expect("pattern repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { ranges, min, max });
    }
    atoms
}

fn continue_range(class: &mut Vec<(char, char)>, lo: char, prev: &mut Option<char>) {
    // Marker entry; the next literal read fills in the high end.
    class.push((lo, '\0'));
    *prev = Some(lo);
}

/// Printable characters for `\PC`: mostly ASCII, with a sprinkle of
/// multi-byte code points so escaping/round-trip tests see non-ASCII.
fn printable_ranges() -> Vec<(char, char)> {
    vec![
        (' ', '~'),
        (' ', '~'),
        (' ', '~'),
        ('\u{a1}', '\u{ff}'),
        ('\u{391}', '\u{3c9}'),
        ('\u{4e00}', '\u{4e2f}'),
    ]
}

fn generate_pattern(atoms: &[PatternAtom], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in atoms {
        let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
        for _ in 0..count {
            let (lo, hi) = atom.ranges[rng.below(atom.ranges.len() as u64) as usize];
            let span = hi as u32 - lo as u32 + 1;
            let picked = lo as u32 + rng.below(span as u64) as u32;
            out.push(char::from_u32(picked).unwrap_or(lo));
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(&parse_pattern(self), rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(&parse_pattern(self), rng)
    }
}

// ---- collections -----------------------------------------------------------

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// A strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min).max(1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::*;

    /// A strategy for `Option<S::Value>` (3-in-4 `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop` alias module (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

// ---- macros ----------------------------------------------------------------

/// Run a block of property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg(<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {}: {}", case, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_respect_class_and_repetition() {
        let mut rng = TestRng::deterministic("patterns");
        for _ in 0..200 {
            let s = "[a-z0-9]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = "[ -~]{0,10}".generate(&mut rng);
            assert!(t.chars().count() <= 10);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = "\\PC{0,40}".generate(&mut rng);
            assert!(u.chars().count() <= 40);
            assert!(u.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let u = (1u64..10).generate(&mut rng);
            assert!((1..10).contains(&u));
        }
    }

    #[test]
    fn recursion_terminates_and_branches() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::deterministic("recursion");
        let mut saw_branch = false;
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3 + 1);
            if depth(&t) > 1 {
                saw_branch = true;
            }
        }
        assert!(saw_branch, "recursive strategy never branched");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_machinery_runs(x in 0u64..100, s in "[a-z]{0,6}") {
            prop_assume!(x != 1000);
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), s.len(), "lengths of {} differ", s);
        }
    }
}
