//! Abstract syntax for the XQuery subset of the benchmark.
//!
//! The subset is exactly what the twenty XMark queries (§6 of the paper)
//! need: FLWOR expressions, rooted and relative path expressions with
//! child/descendant/attribute axes and positional or boolean predicates,
//! element constructors with attribute-value templates, quantified
//! expressions (`some … satisfies`), the node-order comparison `<<`
//! (Q4's `BEFORE`), arithmetic, general comparisons, the core function
//! library and user-defined functions (Q18).

/// A complete query: optional function declarations plus a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `declare function local:name($p1, …) { body };` declarations.
    pub functions: Vec<FunctionDecl>,
    /// The query body.
    pub body: Expr,
}

/// A user-defined function (Q18's currency conversion).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name, including the `local:` prefix.
    pub name: String,
    /// Parameter names (without `$`).
    pub params: Vec<String>,
    /// Function body.
    pub body: Expr,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// FLWOR expression.
    Flwor(Box<Flwor>),
    /// Logical disjunction (n-ary).
    Or(Vec<Expr>),
    /// Logical conjunction (n-ary).
    And(Vec<Expr>),
    /// General comparison with existential sequence semantics.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// A path: a base expression followed by navigation steps.
    Path {
        /// Where navigation starts.
        base: PathBase,
        /// The steps, applied left to right.
        steps: Vec<Step>,
    },
    /// Variable reference `$x`.
    Var(String),
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// Function call (built-in or user-defined).
    Call(String, Vec<Expr>),
    /// Direct element constructor.
    Element(Box<ElementCtor>),
    /// `some $x in e, … satisfies cond`.
    Some {
        /// The quantified bindings.
        bindings: Vec<(String, Expr)>,
        /// The condition.
        satisfies: Box<Expr>,
    },
    /// Node-order comparison `a << b` ("a occurs before b").
    Before(Box<Expr>, Box<Expr>),
    /// Comma sequence.
    Sequence(Vec<Expr>),
    /// Empty parentheses `()`.
    Empty,
}

/// Where a path expression starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PathBase {
    /// `document("…")` or a leading `/`: the document root.
    Root,
    /// A variable binding.
    Var(String),
    /// The predicate context item (relative paths inside `[...]`).
    Context,
    /// An arbitrary parenthesized expression.
    Expr(Box<Expr>),
}

/// One navigation step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates, applied in order.
    pub preds: Vec<Pred>,
}

/// Supported axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/tag`
    Child,
    /// `//tag`
    Descendant,
    /// `/@name`
    Attribute,
}

/// Node tests.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// A tag name.
    Tag(String),
    /// `*`
    Wildcard,
    /// `text()`
    Text,
}

/// A step predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `[3]` — 1-based position among the step's results.
    Position(usize),
    /// `[last()]`.
    Last,
    /// `[expr]` — effective-boolean-value filter.
    Expr(Expr),
}

/// Comparison operators (general comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

/// FLWOR internals.
#[derive(Debug, Clone, PartialEq)]
pub struct Flwor {
    /// `for`/`let` clauses, in source order.
    pub clauses: Vec<Clause>,
    /// Optional `where`.
    pub where_clause: Option<Expr>,
    /// Optional `order by` key and direction (`true` = ascending).
    pub order_by: Option<(Expr, bool)>,
    /// The `return` expression.
    pub ret: Expr,
}

/// A `for` or `let` binding.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `for $v in expr` — iterates item by item.
    For(String, Expr),
    /// `let $v := expr` — binds the whole sequence.
    Let(String, Expr),
}

/// A direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementCtor {
    /// Tag name.
    pub tag: String,
    /// Attributes; each value is a template of literal and `{expr}` parts.
    pub attrs: Vec<(String, Vec<AttrPart>)>,
    /// Content items in order.
    pub content: Vec<Content>,
}

/// Part of an attribute-value template.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPart {
    /// Literal text.
    Lit(String),
    /// `{expr}` — atomized and concatenated.
    Expr(Expr),
}

/// Element-constructor content.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Literal text.
    Text(String),
    /// `{expr}` — the items are copied into the element.
    Expr(Expr),
    /// A nested constructor.
    Element(ElementCtor),
}
