//! Query compilation: parse → plan.
//!
//! Table 2 of the paper splits query cost into *compilation* (parsing,
//! metadata access, optimization) and *execution*, and shows that the
//! physical mapping decides the balance: System A compiled Q1 in half the
//! time of the fragmenting System B because it touches one relation
//! descriptor instead of one per path step.
//!
//! [`compile`] reproduces that phase as a real pipeline: it parses the
//! query and hands the AST to the cost-based planner
//! ([`crate::planner::plan_query`]), which resolves every path step
//! against the store's catalog ([`xmark_store::XmlStore::estimate_step`]),
//! collects the cardinality estimates, and lowers the query into a
//! [`PhysicalPlan`] with every access-path and join decision made. The
//! benchmark harness times [`parse`](crate::parse_query), [`plan`] and
//! [`execute`] separately to regenerate the paper's Table 2 as three
//! columns.

use xmark_store::XmlStore;

use crate::ast::Query;
use crate::eval::EvalError;
use crate::parse::{parse_query, ParseError};
use crate::plan::{PhysicalPlan, PlanMode};
use crate::planner::plan_query;
use crate::result::Sequence;
use crate::stream::{ResultStream, StreamStats, WriteError};

/// Compilation statistics (the "metadata" column of Table 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Path steps resolved.
    pub steps_resolved: usize,
    /// Metadata (catalog) accesses the store performed.
    pub metadata_accesses: u64,
    /// Sum of estimated extent cardinalities (the optimizer's input).
    pub estimated_rows: u64,
}

/// A compiled query: the physical plan the planner chose plus the
/// compile statistics. Ready for repeated execution — services cache
/// this whole object keyed by query text so repeated requests skip
/// parse and plan entirely.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The physical plan (all rewrite decisions made at compile time).
    pub plan: PhysicalPlan,
    /// Compilation statistics.
    pub stats: CompileStats,
}

impl Compiled {
    /// Render the physical plan one line per operator (see
    /// [`crate::explain`]).
    pub fn explain(&self) -> String {
        crate::explain::explain_plan(&self.plan)
    }

    /// Open a pull-based [`ResultStream`] over this plan against `store`.
    /// Items are produced on demand; `stream(store).take(n)` /
    /// `.exists()` stop executing as soon as the answer is known.
    pub fn stream<'a>(&'a self, store: &'a dyn XmlStore) -> ResultStream<'a> {
        ResultStream::new(&self.plan, store)
    }

    /// Execute against `store`, serializing straight into `sink` item by
    /// item (one item per line) without materializing the result.
    pub fn write_to<W: std::fmt::Write + ?Sized>(
        &self,
        store: &dyn XmlStore,
        sink: &mut W,
    ) -> Result<StreamStats, WriteError> {
        self.stream(store).write_to(sink)
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The query text did not parse.
    Parse(ParseError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

/// Compile `text` for execution against `store` with the optimizing
/// planner.
pub fn compile(text: &str, store: &dyn XmlStore) -> Result<Compiled, CompileError> {
    compile_with_mode(text, store, PlanMode::Optimized)
}

/// Compile `text` with an explicit [`PlanMode`]. `PlanMode::Naive`
/// produces the pure nested-loop plan the optimizer oracle executes as
/// the specification.
pub fn compile_with_mode(
    text: &str,
    store: &dyn XmlStore,
    mode: PlanMode,
) -> Result<Compiled, CompileError> {
    let query = parse_query(text)?;
    Ok(plan(&query, store, mode))
}

/// The planning phase alone: lower an already-parsed query into a
/// [`Compiled`] against `store`. The harness calls this between separate
/// parse and execute timers to split Table 2 into three columns.
pub fn plan(query: &Query, store: &dyn XmlStore, mode: PlanMode) -> Compiled {
    store.begin_compile();
    let (plan, mut stats) = plan_query(query, store, mode);
    stats.metadata_accesses = store.metadata_accesses();
    // Debug builds verify every plan the planner emits (see
    // [`crate::verify`]); release callers opt in through
    // `Session::verify_plan` or the `plan_audit` binary. Runs after the
    // metadata snapshot so the verifier's own catalog touches never leak
    // into the Table 2 statistics.
    #[cfg(debug_assertions)]
    {
        use crate::verify::Invariant;
        let report = crate::verify::verify_plan_against(query, &plan, store);
        // V9 (var-scope) is excluded here: an unbound variable in the
        // source text flows through planning verbatim and surfaces as an
        // evaluation error by contract — it is a property of the query,
        // not a planner bug. Explicit verification still reports it.
        let planner_bugs = report
            .violations
            .iter()
            .filter(|v| v.invariant != Invariant::VarScope)
            .count();
        debug_assert!(
            planner_bugs == 0,
            "planner emitted an invariant-violating plan:\n{report}"
        );
    }
    Compiled { plan, stats }
}

/// Execute a compiled query, materializing the whole result — a thin
/// wrapper draining [`stream`]. Callers that can consume items
/// incrementally (or stop early) should prefer the stream.
pub fn execute(compiled: &Compiled, store: &dyn XmlStore) -> Result<Sequence, EvalError> {
    stream(compiled, store).collect_seq()
}

/// Open a pull-based [`ResultStream`] over a compiled query: the
/// streaming counterpart of [`execute`]. Draining it yields exactly the
/// sequence `execute` returns; `take(n)`/`exists()`/`count()` stop
/// pulling from the operator cursors as soon as the answer is known.
pub fn stream<'a>(compiled: &'a Compiled, store: &'a dyn XmlStore) -> ResultStream<'a> {
    ResultStream::new(&compiled.plan, store)
}

/// Compile and execute in one call.
pub fn run_query(text: &str, store: &dyn XmlStore) -> Result<Sequence, Box<dyn std::error::Error>> {
    let compiled = compile(text, store)?;
    Ok(execute(&compiled, store)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanExpr, Strategy};
    use xmark_store::{EdgeStore, FragmentedStore};

    const DOC: &str = r#"<site><people><person id="person0"><name>Alice</name></person><person id="person1"><name>Bob</name></person></people></site>"#;

    #[test]
    fn compile_counts_steps_and_metadata() {
        let store = EdgeStore::load(DOC).unwrap();
        let compiled = compile(
            r#"for $b in document("x")/site/people/person return $b/name/text()"#,
            &store,
        )
        .unwrap();
        // site, people, person, name (text() is not a tag step).
        assert_eq!(compiled.stats.steps_resolved, 4);
        // System A: two metadata accesses per step.
        assert_eq!(compiled.stats.metadata_accesses, 8);
        assert!(compiled.stats.estimated_rows >= 2);
    }

    #[test]
    fn fragmented_store_touches_more_metadata() {
        let a = EdgeStore::load(DOC).unwrap();
        let b = FragmentedStore::load(DOC).unwrap();
        let q = r#"for $b in /site/people/person return $b/name/text()"#;
        let ca = compile(q, &a).unwrap();
        let cb = compile(q, &b).unwrap();
        assert!(
            cb.stats.metadata_accesses > ca.stats.metadata_accesses,
            "B must touch more metadata than A (paper Table 2)"
        );
    }

    #[test]
    fn naive_and_optimized_modes_resolve_identical_metadata() {
        // The statistics pass is strategy-independent: the naive plan must
        // report the same catalog touches (Table 2 comparability).
        let store = EdgeStore::load(DOC).unwrap();
        let q = r#"for $b in /site/people/person return $b/name/text()"#;
        let optimized = compile_with_mode(q, &store, PlanMode::Optimized).unwrap();
        let naive = compile_with_mode(q, &store, PlanMode::Naive).unwrap();
        assert_eq!(optimized.stats, naive.stats);
    }

    #[test]
    fn naive_mode_plans_pure_nested_loops() {
        let store = EdgeStore::load(DOC).unwrap();
        let q = r#"for $a in /site/people/person, $b in /site/people/person
                   where $a/@id = $b/@id return $a"#;
        let naive = compile_with_mode(q, &store, PlanMode::Naive).unwrap();
        let PlanExpr::Flwor(f) = &naive.plan.body else {
            panic!("body is a FLWOR");
        };
        let Strategy::NestedLoop { clauses, filters } = &f.strategy else {
            panic!("naive mode must not plan joins, got {:?}", f.strategy);
        };
        // No pushdown either: the single conjunct sits at the deepest level.
        assert_eq!(clauses.len(), 2);
        assert!(filters[..2].iter().all(Vec::is_empty));
        assert_eq!(filters[2].len(), 1);

        let optimized = compile(q, &store).unwrap();
        let PlanExpr::Flwor(f) = &optimized.plan.body else {
            panic!("body is a FLWOR");
        };
        assert!(
            matches!(f.strategy, Strategy::HashJoin { .. }),
            "optimized mode plans the equi-join as a hash join"
        );
    }

    #[test]
    fn compile_then_execute_roundtrip() {
        let store = EdgeStore::load(DOC).unwrap();
        let compiled = compile("count(/site/people/person)", &store).unwrap();
        let result = execute(&compiled, &store).unwrap();
        let rendered = crate::result::serialize_sequence(&store, &result);
        assert_eq!(rendered, "2");
    }

    #[test]
    fn parse_errors_surface() {
        let store = EdgeStore::load(DOC).unwrap();
        assert!(matches!(
            compile("for $x in", &store),
            Err(CompileError::Parse(_))
        ));
    }
}
