//! Query compilation: parsing plus the metadata-resolution pass.
//!
//! Table 2 of the paper splits query cost into *compilation* (parsing,
//! metadata access, optimization) and *execution*, and shows that the
//! physical mapping decides the balance: System A compiled Q1 in half the
//! time of the fragmenting System B because it touches one relation
//! descriptor instead of one per path step.
//!
//! [`compile`] reproduces that phase: it parses the query and then walks
//! every path step, asking the store to resolve the step's metadata
//! ([`XmlStore::compile_step`]) and collecting the cardinality estimates a
//! cost-based optimizer would use. The benchmark harness times this
//! function separately from [`execute`] to regenerate Table 2.

use xmark_store::XmlStore;

use crate::ast::*;
use crate::eval::{EvalError, Evaluator};
use crate::parse::{parse_query, ParseError};
use crate::result::Sequence;

/// Compilation statistics (the "metadata" column of Table 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Path steps resolved.
    pub steps_resolved: usize,
    /// Metadata (catalog) accesses the store performed.
    pub metadata_accesses: u64,
    /// Sum of estimated extent cardinalities (the optimizer's input).
    pub estimated_rows: u64,
}

/// A compiled query, ready for repeated execution.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The parsed query.
    pub query: Query,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The query text did not parse.
    Parse(ParseError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

/// Compile `text` for execution against `store`.
pub fn compile(text: &str, store: &dyn XmlStore) -> Result<Compiled, CompileError> {
    let query = parse_query(text)?;
    store.begin_compile();
    let mut stats = CompileStats::default();
    for f in &query.functions {
        resolve_expr(&f.body, store, &mut stats);
    }
    resolve_expr(&query.body, store, &mut stats);
    stats.metadata_accesses = store.metadata_accesses();
    Ok(Compiled { query, stats })
}

/// Execute a compiled query.
pub fn execute(compiled: &Compiled, store: &dyn XmlStore) -> Result<Sequence, EvalError> {
    let evaluator = Evaluator::new(store, &compiled.query);
    evaluator.run(&compiled.query)
}

/// Compile and execute in one call.
pub fn run_query(text: &str, store: &dyn XmlStore) -> Result<Sequence, Box<dyn std::error::Error>> {
    let compiled = compile(text, store)?;
    Ok(execute(&compiled, store)?)
}

fn resolve_steps(steps: &[Step], store: &dyn XmlStore, stats: &mut CompileStats) {
    for step in steps {
        if let NodeTest::Tag(tag) = &step.test {
            if step.axis != Axis::Attribute {
                stats.steps_resolved += 1;
                stats.estimated_rows += store.compile_step(tag) as u64;
            }
        }
        for pred in &step.preds {
            if let Pred::Expr(e) = pred {
                resolve_expr(e, store, stats);
            }
        }
    }
}

fn resolve_expr(expr: &Expr, store: &dyn XmlStore, stats: &mut CompileStats) {
    match expr {
        Expr::Path { base, steps } => {
            if let PathBase::Expr(e) = base {
                resolve_expr(e, store, stats);
            }
            resolve_steps(steps, store, stats);
        }
        Expr::Flwor(f) => {
            for c in &f.clauses {
                match c {
                    Clause::For(_, e) | Clause::Let(_, e) => resolve_expr(e, store, stats),
                }
            }
            if let Some(w) = &f.where_clause {
                resolve_expr(w, store, stats);
            }
            if let Some((k, _)) = &f.order_by {
                resolve_expr(k, store, stats);
            }
            resolve_expr(&f.ret, store, stats);
        }
        Expr::Or(parts) | Expr::And(parts) | Expr::Sequence(parts) => {
            for p in parts {
                resolve_expr(p, store, stats);
            }
        }
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::Before(a, b) => {
            resolve_expr(a, store, stats);
            resolve_expr(b, store, stats);
        }
        Expr::Neg(e) => resolve_expr(e, store, stats),
        Expr::Call(_, args) => {
            for a in args {
                resolve_expr(a, store, stats);
            }
        }
        Expr::Some {
            bindings,
            satisfies,
        } => {
            for (_, e) in bindings {
                resolve_expr(e, store, stats);
            }
            resolve_expr(satisfies, store, stats);
        }
        Expr::Element(ctor) => resolve_ctor(ctor, store, stats),
        Expr::Var(_) | Expr::Str(_) | Expr::Num(_) | Expr::Empty => {}
    }
}

fn resolve_ctor(ctor: &ElementCtor, store: &dyn XmlStore, stats: &mut CompileStats) {
    for (_, parts) in &ctor.attrs {
        for p in parts {
            if let AttrPart::Expr(e) = p {
                resolve_expr(e, store, stats);
            }
        }
    }
    for c in &ctor.content {
        match c {
            Content::Expr(e) => resolve_expr(e, store, stats),
            Content::Element(nested) => resolve_ctor(nested, store, stats),
            Content::Text(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmark_store::{EdgeStore, FragmentedStore};

    const DOC: &str = r#"<site><people><person id="person0"><name>Alice</name></person><person id="person1"><name>Bob</name></person></people></site>"#;

    #[test]
    fn compile_counts_steps_and_metadata() {
        let store = EdgeStore::load(DOC).unwrap();
        let compiled = compile(
            r#"for $b in document("x")/site/people/person return $b/name/text()"#,
            &store,
        )
        .unwrap();
        // site, people, person, name (text() is not a tag step).
        assert_eq!(compiled.stats.steps_resolved, 4);
        // System A: two metadata accesses per step.
        assert_eq!(compiled.stats.metadata_accesses, 8);
        assert!(compiled.stats.estimated_rows >= 2);
    }

    #[test]
    fn fragmented_store_touches_more_metadata() {
        let a = EdgeStore::load(DOC).unwrap();
        let b = FragmentedStore::load(DOC).unwrap();
        let q = r#"for $b in /site/people/person return $b/name/text()"#;
        let ca = compile(q, &a).unwrap();
        let cb = compile(q, &b).unwrap();
        assert!(
            cb.stats.metadata_accesses > ca.stats.metadata_accesses,
            "B must touch more metadata than A (paper Table 2)"
        );
    }

    #[test]
    fn compile_then_execute_roundtrip() {
        let store = EdgeStore::load(DOC).unwrap();
        let compiled = compile("count(/site/people/person)", &store).unwrap();
        let result = execute(&compiled, &store).unwrap();
        let rendered = crate::result::serialize_sequence(&store, &result);
        assert_eq!(rendered, "2");
    }

    #[test]
    fn parse_errors_surface() {
        let store = EdgeStore::load(DOC).unwrap();
        assert!(matches!(
            compile("for $x in", &store),
            Err(CompileError::Parse(_))
        ));
    }
}
