//! The query evaluator.
//!
//! A tuple-at-a-time FLWOR interpreter over the backend-neutral
//! [`XmlStore`] interface. Architecture-specific speed comes exclusively
//! from the access paths the store offers:
//!
//! * `lookup_id` for `[@id = "…"]` rewrites (Q1),
//! * `positional_child` for `bidder[1]` / `bidder[last()]` (Q2/Q3 — the
//!   paper's "set-valued aggregates on the index attribute"),
//! * `typed_child_value` for `…/tag/text()` tails (System C's inlined
//!   columns),
//! * the streaming axis cursors (`children_named_iter`,
//!   `descendants_named_iter`) for path steps — predicate-free steps
//!   stream matches straight into the output sequence with no
//!   intermediate `Vec<Node>` — and `count_descendants_named` for
//!   `count(//tag)` (System D's structural summary).
//!
//! Loop-invariant absolute paths are memoized per execution — the
//! materialization every system in the paper performs before joining.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use xmark_store::{Node, PositionSpec, XmlStore};

use crate::ast::*;
use crate::result::{atomize, number, CElem, Item, Sequence};

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Reference to an unbound variable.
    UndefinedVariable(String),
    /// Call to an unknown function.
    UnknownFunction(String),
    /// `zero-or-one` applied to a longer sequence.
    Cardinality(&'static str),
    /// A path step applied to a constructed element or atomic.
    PathOverNonNode,
    /// A syntactically valid step form the evaluator does not implement
    /// (`@*`, `@text()`). Carries the offending step's rendering.
    UnsupportedStep(String),
    /// Relative path with no context item.
    NoContext,
    /// Wrong number of arguments to a function.
    Arity(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UndefinedVariable(v) => write!(f, "undefined variable ${v}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function {n}()"),
            EvalError::Cardinality(what) => write!(f, "cardinality violation in {what}"),
            EvalError::PathOverNonNode => write!(f, "path step applied to a non-node item"),
            EvalError::UnsupportedStep(step) => {
                write!(f, "unsupported path step {step}")
            }
            EvalError::NoContext => write!(f, "relative path without a context item"),
            EvalError::Arity(n) => write!(f, "wrong number of arguments to {n}()"),
        }
    }
}

impl std::error::Error for EvalError {}

type EResult<T> = Result<T, EvalError>;

/// A lookup index for decorrelated joins: canonical key → (source
/// position, item) pairs in source order.
type JoinIndex = HashMap<String, Vec<(usize, Item)>>;

/// Variable environment with lexical scoping.
#[derive(Default)]
struct Env {
    bindings: Vec<(String, Arc<Sequence>)>,
}

impl Env {
    fn push(&mut self, name: &str, value: Arc<Sequence>) {
        self.bindings.push((name.to_string(), value));
    }

    fn pop(&mut self) {
        self.bindings.pop();
    }

    fn get(&self, name: &str) -> Option<&Arc<Sequence>> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// The evaluator, bound to one store and one compiled query's functions.
pub struct Evaluator<'s> {
    store: &'s dyn XmlStore,
    functions: HashMap<String, FunctionDecl>,
    /// Memo for loop-invariant absolute paths.
    path_cache: RefCell<HashMap<String, Arc<Sequence>>>,
    /// Memo for decorrelated lookup indexes (`try_correlated_lookup`) and
    /// hash-join build sides (`try_hash_join`).
    index_cache: RefCell<HashMap<String, Arc<JoinIndex>>>,
    /// Memo for hash-join probe-side key lists, aligned with the cached
    /// source sequence.
    key_cache: RefCell<HashMap<String, Arc<Vec<Vec<String>>>>>,
    /// Whether the join/decorrelation rewrites are enabled. Disabling
    /// forces pure nested-loop semantics — used by the oracle tests that
    /// prove the rewrites preserve results.
    optimize: bool,
}

impl<'s> Evaluator<'s> {
    /// Create an evaluator for `query` against `store`.
    pub fn new(store: &'s dyn XmlStore, query: &Query) -> Self {
        Self::with_optimizations(store, query, true)
    }

    /// Create an evaluator with the FLWOR rewrites (hash join,
    /// decorrelation, predicate pushdown) switched on or off.
    pub fn with_optimizations(store: &'s dyn XmlStore, query: &Query, optimize: bool) -> Self {
        Evaluator {
            store,
            functions: query
                .functions
                .iter()
                .map(|f| (f.name.clone(), f.clone()))
                .collect(),
            path_cache: RefCell::new(HashMap::new()),
            index_cache: RefCell::new(HashMap::new()),
            key_cache: RefCell::new(HashMap::new()),
            optimize,
        }
    }

    /// Evaluate the query body.
    pub fn run(&self, query: &Query) -> EResult<Sequence> {
        let mut env = Env::default();
        self.eval(&query.body, &mut env, None)
    }

    fn eval(&self, expr: &Expr, env: &mut Env, ctx: Option<&Item>) -> EResult<Sequence> {
        match expr {
            Expr::Str(s) => Ok(vec![Item::str(s)]),
            Expr::Num(n) => Ok(vec![Item::Num(*n)]),
            Expr::Empty => Ok(Vec::new()),
            Expr::Var(name) => env
                .get(name)
                .map(|s| s.as_ref().clone())
                .ok_or_else(|| EvalError::UndefinedVariable(name.clone())),
            Expr::Sequence(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(self.eval(p, env, ctx)?);
                }
                Ok(out)
            }
            Expr::Or(parts) => {
                for p in parts {
                    if ebv(&self.eval(p, env, ctx)?) {
                        return Ok(vec![Item::Bool(true)]);
                    }
                }
                Ok(vec![Item::Bool(false)])
            }
            Expr::And(parts) => {
                for p in parts {
                    if !ebv(&self.eval(p, env, ctx)?) {
                        return Ok(vec![Item::Bool(false)]);
                    }
                }
                Ok(vec![Item::Bool(true)])
            }
            Expr::Cmp(op, lhs, rhs) => {
                let l = self.eval(lhs, env, ctx)?;
                let r = self.eval(rhs, env, ctx)?;
                Ok(vec![Item::Bool(self.general_compare(*op, &l, &r))])
            }
            Expr::Before(lhs, rhs) => {
                let l = self.eval(lhs, env, ctx)?;
                let r = self.eval(rhs, env, ctx)?;
                let before = l.iter().any(|a| {
                    r.iter().any(|b| match (a, b) {
                        (Item::Node(x), Item::Node(y)) => x < y,
                        _ => false,
                    })
                });
                Ok(vec![Item::Bool(before)])
            }
            Expr::Arith(op, lhs, rhs) => {
                let l = self.eval(lhs, env, ctx)?;
                let r = self.eval(rhs, env, ctx)?;
                let (Some(a), Some(b)) = (
                    singleton_number(self.store, &l),
                    singleton_number(self.store, &r),
                ) else {
                    return Ok(Vec::new());
                };
                let v = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                    ArithOp::Mod => a % b,
                };
                Ok(vec![Item::Num(v)])
            }
            Expr::Neg(inner) => {
                let v = self.eval(inner, env, ctx)?;
                Ok(match singleton_number(self.store, &v) {
                    Some(n) => vec![Item::Num(-n)],
                    None => Vec::new(),
                })
            }
            Expr::Path { base, steps } => self.eval_path(base, steps, env, ctx),
            Expr::Flwor(f) => self.eval_flwor(f, env, ctx),
            Expr::Some {
                bindings,
                satisfies,
            } => {
                let found = self.eval_some(bindings, 0, satisfies, env, ctx)?;
                Ok(vec![Item::Bool(found)])
            }
            Expr::Call(name, args) => self.eval_call(name, args, env, ctx),
            Expr::Element(ctor) => {
                let elem = self.build_element(ctor, env, ctx)?;
                Ok(vec![Item::Elem(Arc::new(elem))])
            }
        }
    }

    // ---- FLWOR -----------------------------------------------------------

    fn eval_flwor(&self, f: &Flwor, env: &mut Env, ctx: Option<&Item>) -> EResult<Sequence> {
        let mut tuples: Vec<(Option<OrderKey>, Sequence)> = Vec::new();
        let rewritten = self.optimize
            && (self.try_correlated_lookup(f, env, ctx, &mut tuples)?
                || self.try_hash_join(f, env, ctx, &mut tuples)?);
        if !rewritten {
            // Predicate pushdown: schedule each where-conjunct at the
            // earliest clause depth where its variables are bound, so
            // selective filters prune before expensive bindings run (the
            // optimization that makes the paper's Q12 cheaper than Q11 on
            // every system).
            let conjuncts: Vec<&Expr> = match &f.where_clause {
                None => Vec::new(),
                Some(Expr::And(parts)) => parts.iter().collect(),
                Some(other) => vec![other],
            };
            let mut scheduled: Vec<Vec<&Expr>> = vec![Vec::new(); f.clauses.len() + 1];
            for conjunct in conjuncts {
                let mut depth = 0;
                for (i, clause) in f.clauses.iter().enumerate() {
                    let var = match clause {
                        Clause::For(v, _) | Clause::Let(v, _) => v,
                    };
                    if expr_uses_var(conjunct, var) {
                        depth = i + 1;
                    }
                }
                if !self.optimize {
                    depth = f.clauses.len();
                }
                scheduled[depth].push(conjunct);
            }
            self.flwor_rec(f, 0, &scheduled, env, ctx, &mut tuples)?;
        }
        if let Some((_, ascending)) = &f.order_by {
            tuples.sort_by(|a, b| {
                let ord = compare_keys(a.0.as_ref(), b.0.as_ref());
                if *ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        let mut out = Vec::new();
        for (_, seq) in tuples {
            out.extend(seq);
        }
        Ok(out)
    }

    /// Decorrelation rewrite: a FLWOR of the shape
    /// `for $t in <absolute path> where path($t) = <outer expr> return …`
    /// — Q8's correlated inner query — is answered through a lookup index
    /// on `path($t)`, built once per execution and cached. This is the
    /// index-nested-loop plan a relational optimizer produces for
    /// reference chasing.
    fn try_correlated_lookup(
        &self,
        f: &Flwor,
        env: &mut Env,
        ctx: Option<&Item>,
        out: &mut Vec<(Option<OrderKey>, Sequence)>,
    ) -> EResult<bool> {
        let [Clause::For(v, src)] = f.clauses.as_slice() else {
            return Ok(false);
        };
        // The source must be a memoizable absolute path (same criterion as
        // the path cache), so the index is valid across invocations.
        let Expr::Path {
            base: PathBase::Root,
            steps: src_steps,
        } = src
        else {
            return Ok(false);
        };
        if src_steps.iter().any(|s| !s.preds.is_empty()) {
            return Ok(false);
        }
        let Some(where_clause) = &f.where_clause else {
            return Ok(false);
        };
        let conjuncts: Vec<&Expr> = match where_clause {
            Expr::And(parts) => parts.iter().collect(),
            other => vec![other],
        };
        // Find `path($v) = outer` (or mirrored).
        let mut found: Option<(usize, &Expr, &Expr)> = None;
        for (i, conjunct) in conjuncts.iter().enumerate() {
            let Expr::Cmp(CmpOp::Eq, a, b) = conjunct else {
                continue;
            };
            let is_inner_key = |e: &Expr| match e {
                Expr::Path {
                    base: PathBase::Var(var),
                    steps,
                } => var == v && steps.iter().all(|s| s.preds.is_empty()),
                _ => false,
            };
            if is_inner_key(a) && !expr_uses_var(b, v) {
                found = Some((i, a, b));
                break;
            }
            if is_inner_key(b) && !expr_uses_var(a, v) {
                found = Some((i, b, a));
                break;
            }
        }
        let Some((join_idx, inner_key, outer_key)) = found else {
            return Ok(false);
        };
        let residual: Vec<&Expr> = conjuncts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != join_idx)
            .map(|(_, e)| *e)
            .collect();

        // Build (or reuse) the lookup index: canonical key → (position,
        // item) pairs in source order.
        let inner_key_steps = match inner_key {
            Expr::Path { steps, .. } => steps,
            _ => unreachable!("is_inner_key matched a path"),
        };
        let index_sig = format!(
            "{}|{}",
            path_signature(src_steps),
            path_signature(inner_key_steps)
        );
        let cached = self.index_cache.borrow().get(&index_sig).cloned();
        let index = if let Some(cached) = cached {
            cached
        } else {
            let source = self.eval(src, env, ctx)?;
            let mut map: JoinIndex = HashMap::new();
            for (i, item) in source.into_iter().enumerate() {
                env.push(v, Arc::new(vec![item.clone()]));
                let keys = self.eval(inner_key, env, ctx);
                env.pop();
                for key in keys? {
                    map.entry(canonical_key(&atomize(self.store, &key)))
                        .or_default()
                        .push((i, item.clone()));
                }
            }
            let rc = Arc::new(map);
            self.index_cache
                .borrow_mut()
                .insert(index_sig, Arc::clone(&rc));
            rc
        };

        // Probe with the outer key(s).
        let outer_keys = self.eval(outer_key, env, ctx)?;
        let mut matched: Vec<(usize, Item)> = Vec::new();
        for key in outer_keys {
            if let Some(items) = index.get(&canonical_key(&atomize(self.store, &key))) {
                matched.extend(items.iter().cloned());
            }
        }
        matched.sort_by_key(|(i, _)| *i);
        matched.dedup_by_key(|(i, _)| *i);
        for (_, item) in matched {
            env.push(v, Arc::new(vec![item]));
            let result = self.join_tail(f, &residual, env, ctx, out);
            env.pop();
            result?;
        }
        Ok(true)
    }

    /// Equi-join rewrite: a FLWOR of the shape
    /// `for $a in s1, $b in s2 where path($a) = path($b) [and rest] …`
    /// executes as a hash join instead of a nested loop — §7 of the paper:
    /// "Queries Q8 and Q9 are usually implemented as joins … chasing the
    /// references basically amounted to executing equi-joins on strings."
    ///
    /// Returns `false` (leaving `out` untouched) when the FLWOR does not
    /// have the joinable shape.
    fn try_hash_join(
        &self,
        f: &Flwor,
        env: &mut Env,
        ctx: Option<&Item>,
        out: &mut Vec<(Option<OrderKey>, Sequence)>,
    ) -> EResult<bool> {
        // Exactly two `for` clauses, the second independent of the first.
        let [Clause::For(v1, s1), Clause::For(v2, s2)] = f.clauses.as_slice() else {
            return Ok(false);
        };
        if expr_uses_var(s2, v1) {
            return Ok(false);
        }
        // A conjunct `path($v1) = path($v2)` in the where clause.
        let Some(where_clause) = &f.where_clause else {
            return Ok(false);
        };
        let conjuncts: Vec<&Expr> = match where_clause {
            Expr::And(parts) => parts.iter().collect(),
            other => vec![other],
        };
        let mut join_idx = None;
        let mut key1: Option<&Expr> = None;
        let mut key2: Option<&Expr> = None;
        for (i, conjunct) in conjuncts.iter().enumerate() {
            let Expr::Cmp(CmpOp::Eq, a, b) = conjunct else {
                continue;
            };
            let var_of = |e: &Expr| match e {
                Expr::Path {
                    base: PathBase::Var(v),
                    steps,
                } if steps.iter().all(|s| s.preds.is_empty()) => Some(v.clone()),
                _ => None,
            };
            match (var_of(a), var_of(b)) {
                (Some(va), Some(vb)) if va == *v1 && vb == *v2 => {
                    join_idx = Some(i);
                    key1 = Some(a);
                    key2 = Some(b);
                    break;
                }
                (Some(va), Some(vb)) if va == *v2 && vb == *v1 => {
                    join_idx = Some(i);
                    key1 = Some(b);
                    key2 = Some(a);
                    break;
                }
                _ => {}
            }
        }
        let (Some(join_idx), Some(key1), Some(key2)) = (join_idx, key1, key2) else {
            return Ok(false);
        };
        let residual: Vec<&Expr> = conjuncts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != join_idx)
            .map(|(_, e)| *e)
            .collect();

        // Build side: hash the (canonicalized) keys of s2's items. When the
        // source and key are loop-invariant, the table is built once and
        // reused — the hoisting a relational optimizer performs when the
        // join sits inside a correlated subquery (Q9).
        let table = self.join_build_side(v2, s2, key2, env, ctx)?;

        // Probe side, with the per-item key lists likewise memoizable.
        let left = self.eval(s1, env, ctx)?;
        let probe_keys = self.join_probe_keys(v1, s1, key1, &left, env, ctx)?;
        for (li, litem) in left.iter().enumerate() {
            // Distinct matched right items, preserving right order (the
            // nested loop visits right items in order for each left item).
            let mut matched: Vec<(usize, &Item)> = Vec::new();
            for key in &probe_keys[li] {
                if let Some(entries) = table.get(key) {
                    matched.extend(entries.iter().map(|(i, item)| (*i, item)));
                }
            }
            matched.sort_by_key(|(i, _)| *i);
            matched.dedup_by_key(|(i, _)| *i);
            env.push(v1, Arc::new(vec![litem.clone()]));
            for (_, ritem) in matched {
                env.push(v2, Arc::new(vec![ritem.clone()]));
                let result = self.join_tail(f, &residual, env, ctx, out);
                env.pop();
                if let Err(e) = result {
                    env.pop();
                    return Err(e);
                }
            }
            env.pop();
        }
        Ok(true)
    }

    /// Build (or fetch from cache) a hash table `canonical key → (index,
    /// item)` over the items of `src`, keyed by `key_expr` evaluated with
    /// `var` bound to each item.
    fn join_build_side(
        &self,
        var: &str,
        src: &Expr,
        key_expr: &Expr,
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<Arc<JoinIndex>> {
        let signature = invariant_join_signature(src, key_expr);
        if let Some(sig) = &signature {
            if let Some(cached) = self.index_cache.borrow().get(sig) {
                return Ok(Arc::clone(cached));
            }
        }
        let source = self.eval(src, env, ctx)?;
        let mut map: JoinIndex = HashMap::with_capacity(source.len());
        for (i, item) in source.into_iter().enumerate() {
            env.push(var, Arc::new(vec![item.clone()]));
            let keys = self.eval(key_expr, env, ctx);
            env.pop();
            for key in keys? {
                map.entry(canonical_key(&atomize(self.store, &key)))
                    .or_default()
                    .push((i, item.clone()));
            }
        }
        let rc = Arc::new(map);
        if let Some(sig) = signature {
            self.index_cache.borrow_mut().insert(sig, Arc::clone(&rc));
        }
        Ok(rc)
    }

    /// Per-item canonical key lists for the probe side, memoized when
    /// loop-invariant (aligned with the path-cached source sequence).
    fn join_probe_keys(
        &self,
        var: &str,
        src: &Expr,
        key_expr: &Expr,
        left: &[Item],
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<Arc<Vec<Vec<String>>>> {
        let signature = invariant_join_signature(src, key_expr).map(|s| s + "#probe");
        if let Some(sig) = &signature {
            if let Some(cached) = self.key_cache.borrow().get(sig) {
                if cached.len() == left.len() {
                    return Ok(Arc::clone(cached));
                }
            }
        }
        let mut keys = Vec::with_capacity(left.len());
        for item in left {
            env.push(var, Arc::new(vec![item.clone()]));
            let evaluated = self.eval(key_expr, env, ctx);
            env.pop();
            keys.push(
                evaluated?
                    .iter()
                    .map(|k| canonical_key(&atomize(self.store, k)))
                    .collect::<Vec<String>>(),
            );
        }
        let rc = Arc::new(keys);
        if let Some(sig) = signature {
            self.key_cache.borrow_mut().insert(sig, Arc::clone(&rc));
        }
        Ok(rc)
    }

    /// Evaluate residual predicates, order key and return expression for
    /// one joined tuple.
    fn join_tail(
        &self,
        f: &Flwor,
        residual: &[&Expr],
        env: &mut Env,
        ctx: Option<&Item>,
        out: &mut Vec<(Option<OrderKey>, Sequence)>,
    ) -> EResult<()> {
        for pred in residual {
            if !ebv(&self.eval(pred, env, ctx)?) {
                return Ok(());
            }
        }
        let key = match &f.order_by {
            Some((key_expr, _)) => {
                let key_seq = self.eval(key_expr, env, ctx)?;
                key_seq.first().map(|item| {
                    let s = atomize(self.store, item);
                    let n = s.trim().parse::<f64>().ok();
                    OrderKey { text: s, num: n }
                })
            }
            None => None,
        };
        let result = self.eval(&f.ret, env, ctx)?;
        out.push((key, result));
        Ok(())
    }

    fn flwor_rec(
        &self,
        f: &Flwor,
        depth: usize,
        scheduled: &[Vec<&Expr>],
        env: &mut Env,
        ctx: Option<&Item>,
        out: &mut Vec<(Option<OrderKey>, Sequence)>,
    ) -> EResult<()> {
        // Conjuncts whose variables are all bound by now.
        for conjunct in &scheduled[depth] {
            if !ebv(&self.eval(conjunct, env, ctx)?) {
                return Ok(());
            }
        }
        if depth == f.clauses.len() {
            let key = match &f.order_by {
                Some((key_expr, _)) => {
                    let key_seq = self.eval(key_expr, env, ctx)?;
                    key_seq.first().map(|item| {
                        let s = atomize(self.store, item);
                        let n = s.trim().parse::<f64>().ok();
                        OrderKey { text: s, num: n }
                    })
                }
                None => None,
            };
            let result = self.eval(&f.ret, env, ctx)?;
            out.push((key, result));
            return Ok(());
        }
        match &f.clauses[depth] {
            Clause::For(var, source) => {
                let seq = self.eval(source, env, ctx)?;
                for item in seq {
                    env.push(var, Arc::new(vec![item]));
                    let r = self.flwor_rec(f, depth + 1, scheduled, env, ctx, out);
                    env.pop();
                    r?;
                }
            }
            Clause::Let(var, source) => {
                let seq = self.eval(source, env, ctx)?;
                env.push(var, Arc::new(seq));
                let r = self.flwor_rec(f, depth + 1, scheduled, env, ctx, out);
                env.pop();
                r?;
            }
        }
        Ok(())
    }

    fn eval_some(
        &self,
        bindings: &[(String, Expr)],
        depth: usize,
        satisfies: &Expr,
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<bool> {
        if depth == bindings.len() {
            return Ok(ebv(&self.eval(satisfies, env, ctx)?));
        }
        let (var, source) = &bindings[depth];
        let seq = self.eval(source, env, ctx)?;
        for item in seq {
            env.push(var, Arc::new(vec![item]));
            let found = self.eval_some(bindings, depth + 1, satisfies, env, ctx);
            env.pop();
            if found? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    // ---- paths -----------------------------------------------------------

    fn eval_path(
        &self,
        base: &PathBase,
        steps: &[Step],
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        // Loop-invariant absolute paths are memoized (predicate-free ones
        // only: predicates may reference outer variables).
        if matches!(base, PathBase::Root) && steps.iter().all(|s| s.preds.is_empty()) {
            let key = path_signature(steps);
            if let Some(cached) = self.path_cache.borrow().get(&key) {
                return Ok(cached.as_ref().clone());
            }
            let result = self.eval_path_uncached(base, steps, env, ctx)?;
            self.path_cache
                .borrow_mut()
                .insert(key, Arc::new(result.clone()));
            return Ok(result);
        }
        self.eval_path_uncached(base, steps, env, ctx)
    }

    fn eval_path_uncached(
        &self,
        base: &PathBase,
        steps: &[Step],
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        let mut start_index = 0;
        let mut current: Sequence = match base {
            PathBase::Root => {
                // Paths start at the virtual document node: the first step
                // matches against the root *element* itself.
                let root = self.store.root();
                match steps.first() {
                    None => vec![Item::Node(root)],
                    Some(first) => {
                        start_index = 1;
                        let mut seq: Sequence = Vec::new();
                        match (&first.axis, &first.test) {
                            (Axis::Child, NodeTest::Tag(tag)) => {
                                if self.store.tag_of(root) == Some(tag) {
                                    seq.push(Item::Node(root));
                                }
                            }
                            (Axis::Descendant, NodeTest::Tag(tag)) => {
                                if self.store.tag_of(root) == Some(tag) {
                                    seq.push(Item::Node(root));
                                }
                                seq.extend(
                                    self.store.descendants_named_iter(root, tag).map(Item::Node),
                                );
                            }
                            _ => {
                                // Rare forms (`/*`, `/@x`): evaluate the
                                // step against the root element generically.
                                start_index = 0;
                                seq.push(Item::Node(root));
                            }
                        }
                        if start_index == 1 && !first.preds.is_empty() {
                            let nodes: Vec<Node> = seq
                                .into_iter()
                                .filter_map(|i| match i {
                                    Item::Node(n) => Some(n),
                                    _ => None,
                                })
                                .collect();
                            seq = self
                                .apply_predicates(nodes, &first.preds, env, ctx)?
                                .into_iter()
                                .map(Item::Node)
                                .collect();
                        }
                        seq
                    }
                }
            }
            PathBase::Var(name) => env
                .get(name)
                .map(|s| s.as_ref().clone())
                .ok_or_else(|| EvalError::UndefinedVariable(name.clone()))?,
            PathBase::Context => vec![ctx.ok_or(EvalError::NoContext)?.clone()],
            PathBase::Expr(e) => self.eval(e, env, ctx)?,
        };

        let mut i = start_index;
        while i < steps.len() {
            let step = &steps[i];

            // Fast path: `…/tag/text()` tail answered from inlined entity
            // columns (System C).
            if i + 2 == steps.len()
                && step.axis == Axis::Child
                && step.preds.is_empty()
                && steps[i + 1].axis == Axis::Child
                && steps[i + 1].test == NodeTest::Text
                && steps[i + 1].preds.is_empty()
            {
                if let NodeTest::Tag(tag) = &step.test {
                    if let Some(shortcut) = self.try_inlined_tail(&current, tag)? {
                        return Ok(shortcut);
                    }
                }
            }

            // Fast path: `person[@id = "…"]` via the store's ID index.
            if let Some(rewritten) = self.try_id_lookup(&current, step)? {
                current = rewritten;
                i += 1;
                continue;
            }

            current = self.apply_step(&current, step, env, ctx)?;
            i += 1;
        }
        Ok(current)
    }

    /// `…/tag/text()` over inlined columns. Returns `Some` only if *every*
    /// context node could be answered from the entity tables.
    fn try_inlined_tail(&self, current: &[Item], tag: &str) -> EResult<Option<Sequence>> {
        let mut out = Vec::new();
        for item in current {
            let Item::Node(n) = item else {
                return Err(EvalError::PathOverNonNode);
            };
            match self.store.typed_child_value(*n, tag) {
                Some(Some(v)) => out.push(Item::str(v)),
                Some(None) => {}
                None => return Ok(None),
            }
        }
        Ok(Some(out))
    }

    /// Rewrite `tag[@id = "literal"]` to an ID-index probe when the store
    /// has one — the access path behind every mass-storage system's Q1.
    fn try_id_lookup(&self, current: &[Item], step: &Step) -> EResult<Option<Sequence>> {
        if step.preds.len() != 1 || step.axis == Axis::Attribute {
            return Ok(None);
        }
        let NodeTest::Tag(tag) = &step.test else {
            return Ok(None);
        };
        let Pred::Expr(Expr::Cmp(CmpOp::Eq, lhs, rhs)) = &step.preds[0] else {
            return Ok(None);
        };
        let (attr_path, literal) = match (lhs.as_ref(), rhs.as_ref()) {
            (
                Expr::Path {
                    base: PathBase::Context,
                    steps,
                },
                Expr::Str(s),
            ) => (steps, s),
            (
                Expr::Str(s),
                Expr::Path {
                    base: PathBase::Context,
                    steps,
                },
            ) => (steps, s),
            _ => return Ok(None),
        };
        if attr_path.len() != 1
            || attr_path[0].axis != Axis::Attribute
            || attr_path[0].test != NodeTest::Tag("id".to_string())
        {
            return Ok(None);
        }
        let Some(hit) = self.store.lookup_id(literal) else {
            return Ok(None); // No ID index: evaluate generically (System G).
        };
        let Some(node) = hit else {
            return Ok(Some(Vec::new()));
        };
        // Verify the hit is the right tag and actually below the context.
        if self.store.tag_of(node) != Some(tag) {
            return Ok(Some(Vec::new()));
        }
        let reachable = current.iter().any(|item| match item {
            Item::Node(c) => {
                if *c == self.store.root() {
                    true
                } else {
                    self.store.parent(node) == Some(*c) || {
                        let mut cur = node;
                        let mut found = false;
                        while let Some(p) = self.store.parent(cur) {
                            if p == *c {
                                found = true;
                                break;
                            }
                            cur = p;
                        }
                        found
                    }
                }
            }
            _ => false,
        });
        Ok(Some(if reachable {
            vec![Item::Node(node)]
        } else {
            Vec::new()
        }))
    }

    fn apply_step(
        &self,
        current: &[Item],
        step: &Step,
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        let mut out: Sequence = Vec::new();
        let multi_context = current.len() > 1;
        for item in current {
            let Item::Node(n) = item else {
                return Err(EvalError::PathOverNonNode);
            };
            // Where this context node's matches begin: predicates are
            // per-context (positional `[1]` selects within each node's
            // children, not across the merged output).
            let context_start = out.len();
            match (&step.axis, &step.test) {
                (Axis::Attribute, NodeTest::Tag(name)) => {
                    if let Some(v) = self.store.attribute(*n, name) {
                        out.push(Item::str(v));
                    }
                }
                (Axis::Attribute, test) => {
                    // `@*` / `@text()`: a real step form we don't implement —
                    // say so, instead of the misleading `PathOverNonNode`.
                    let rendered = match test {
                        NodeTest::Wildcard => "@*",
                        NodeTest::Text => "@text()",
                        NodeTest::Tag(_) => unreachable!("handled by the arm above"),
                    };
                    return Err(EvalError::UnsupportedStep(rendered.to_string()));
                }
                (Axis::Child, NodeTest::Text) => {
                    for c in self.store.children_iter(*n) {
                        if self.store.text(c).is_some() {
                            out.push(Item::Node(c));
                        }
                    }
                }
                (Axis::Child, NodeTest::Wildcard) => {
                    for c in self.store.children_iter(*n) {
                        if self.store.tag_of(c).is_some() {
                            out.push(Item::Node(c));
                        }
                    }
                }
                (Axis::Child, NodeTest::Tag(tag)) => {
                    // Positional fast path (Q2/Q3 on System C).
                    if step.preds.len() == 1 {
                        let spec = match step.preds[0] {
                            Pred::Position(k) => Some(PositionSpec::First(k)),
                            Pred::Last => Some(PositionSpec::Last),
                            _ => None,
                        };
                        if let Some(spec) = spec {
                            if let Some(hit) = self.store.positional_child(*n, tag, spec) {
                                if let Some(node) = hit {
                                    out.push(Item::Node(node));
                                }
                                continue;
                            }
                        }
                    }
                    if step.preds.is_empty() {
                        // The hot path: stream matches straight into the
                        // output — no intermediate Vec<Node> per step.
                        out.extend(self.store.children_named_iter(*n, tag).map(Item::Node));
                        continue;
                    }
                    let matched: Vec<Node> = self.store.children_named_iter(*n, tag).collect();
                    let filtered = self.apply_predicates(matched, &step.preds, env, ctx)?;
                    out.extend(filtered.into_iter().map(Item::Node));
                    continue;
                }
                (Axis::Descendant, NodeTest::Tag(tag)) => {
                    if step.preds.is_empty() {
                        out.extend(self.store.descendants_named_iter(*n, tag).map(Item::Node));
                        continue;
                    }
                    let matched: Vec<Node> = self.store.descendants_named_iter(*n, tag).collect();
                    let filtered = self.apply_predicates(matched, &step.preds, env, ctx)?;
                    out.extend(filtered.into_iter().map(Item::Node));
                    continue;
                }
                (Axis::Descendant, NodeTest::Text) => {
                    collect_descendant_text(self.store, *n, &mut out);
                }
                (Axis::Descendant, NodeTest::Wildcard) => {
                    let mut stack: Vec<Node> = self.store.children_iter(*n).collect();
                    while let Some(c) = stack.pop() {
                        if self.store.tag_of(c).is_some() {
                            out.push(Item::Node(c));
                            stack.extend(self.store.children_iter(c));
                        }
                    }
                    out[context_start..].sort_by(node_order);
                }
            }
            // Predicates for the non-tag axes above, applied to this
            // context node's matches only.
            if !step.preds.is_empty()
                && !matches!(
                    (&step.axis, &step.test),
                    (Axis::Child | Axis::Descendant, NodeTest::Tag(_))
                )
            {
                let nodes: Vec<Node> = out
                    .drain(context_start..)
                    .filter_map(|i| match i {
                        Item::Node(n) => Some(n),
                        _ => None,
                    })
                    .collect();
                let filtered = self.apply_predicates(nodes, &step.preds, env, ctx)?;
                out.extend(filtered.into_iter().map(Item::Node));
            }
        }
        // Document order + set semantics across merged contexts.
        if multi_context && out.iter().all(|i| matches!(i, Item::Node(_))) {
            out.sort_by(node_order);
            out.dedup();
        }
        Ok(out)
    }

    fn apply_predicates(
        &self,
        mut nodes: Vec<Node>,
        preds: &[Pred],
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<Vec<Node>> {
        let _ = ctx;
        for pred in preds {
            nodes = match pred {
                Pred::Position(k) => {
                    if *k >= 1 && *k <= nodes.len() {
                        vec![nodes[*k - 1]]
                    } else {
                        Vec::new()
                    }
                }
                Pred::Last => match nodes.last() {
                    Some(&n) => vec![n],
                    None => Vec::new(),
                },
                Pred::Expr(e) => {
                    let mut kept = Vec::new();
                    for n in nodes {
                        let item = Item::Node(n);
                        if ebv(&self.eval(e, env, Some(&item))?) {
                            kept.push(n);
                        }
                    }
                    kept
                }
            };
        }
        Ok(nodes)
    }

    // ---- functions ---------------------------------------------------------

    fn eval_call(
        &self,
        name: &str,
        args: &[Expr],
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        // Count with a descendant-tail path gets the summary fast path
        // (Q6/Q7 on System D): count(//tag) needs no node materialization.
        if name == "count" && args.len() == 1 {
            if let Expr::Path { base, steps } = &args[0] {
                if let Some(n) = self.try_count_fast(base, steps, env, ctx)? {
                    return Ok(vec![Item::Num(n as f64)]);
                }
            }
        }

        let mut evaluated: Vec<Sequence> = Vec::with_capacity(args.len());
        for a in args {
            evaluated.push(self.eval(a, env, ctx)?);
        }

        match name {
            "count" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::Num(evaluated[0].len() as f64)])
            }
            "sum" => {
                expect_arity(name, &evaluated, 1)?;
                let total: f64 = evaluated[0]
                    .iter()
                    .filter_map(|i| number(self.store, i))
                    .sum();
                Ok(vec![Item::Num(total)])
            }
            "not" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::Bool(!ebv(&evaluated[0]))])
            }
            "empty" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::Bool(evaluated[0].is_empty())])
            }
            "exists" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::Bool(!evaluated[0].is_empty())])
            }
            "contains" => {
                expect_arity(name, &evaluated, 2)?;
                let hay = join_atomized(self.store, &evaluated[0]);
                let needle = join_atomized(self.store, &evaluated[1]);
                Ok(vec![Item::Bool(hay.contains(&needle))])
            }
            "string" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::str(join_atomized(self.store, &evaluated[0]))])
            }
            "data" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(evaluated[0]
                    .iter()
                    .map(|i| Item::str(atomize(self.store, i)))
                    .collect())
            }
            "distinct-values" => {
                expect_arity(name, &evaluated, 1)?;
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for i in &evaluated[0] {
                    let v = atomize(self.store, i);
                    if seen.insert(v.clone()) {
                        out.push(Item::str(v));
                    }
                }
                Ok(out)
            }
            "zero-or-one" => {
                expect_arity(name, &evaluated, 1)?;
                if evaluated[0].len() > 1 {
                    return Err(EvalError::Cardinality("zero-or-one"));
                }
                Ok(evaluated[0].clone())
            }
            "number" => {
                expect_arity(name, &evaluated, 1)?;
                // XQuery `fn:number`: unparseable input (and the empty
                // sequence) is NaN, not the empty sequence.
                let n = evaluated[0]
                    .first()
                    .and_then(|i| number(self.store, i))
                    .unwrap_or(f64::NAN);
                Ok(vec![Item::Num(n)])
            }
            _ => {
                let Some(decl) = self.functions.get(name) else {
                    return Err(EvalError::UnknownFunction(name.to_string()));
                };
                if decl.params.len() != evaluated.len() {
                    return Err(EvalError::Arity(name.to_string()));
                }
                for (param, value) in decl.params.iter().zip(evaluated) {
                    env.push(param, Arc::new(value));
                }
                let result = self.eval(&decl.body, env, ctx);
                for _ in &decl.params {
                    env.pop();
                }
                result
            }
        }
    }

    /// `count(path)` where the path's final step is a predicate-free tag
    /// test: answered by `count_descendants_named` when the prefix yields
    /// plain nodes, without materializing the counted extent.
    fn try_count_fast(
        &self,
        base: &PathBase,
        steps: &[Step],
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<Option<usize>> {
        let Some(last) = steps.last() else {
            return Ok(None);
        };
        if last.axis != Axis::Descendant || !last.preds.is_empty() {
            return Ok(None);
        }
        let NodeTest::Tag(tag) = &last.test else {
            return Ok(None);
        };
        let prefix = &steps[..steps.len() - 1];
        if prefix.iter().any(|s| !s.preds.is_empty()) {
            return Ok(None);
        }
        let contexts = self.eval_path(base, prefix, env, ctx)?;
        let mut total = 0usize;
        for item in contexts {
            let Item::Node(n) = item else {
                return Err(EvalError::PathOverNonNode);
            };
            total += self.store.count_descendants_named(n, tag);
        }
        Ok(Some(total))
    }

    // ---- constructors ------------------------------------------------------

    fn build_element(
        &self,
        ctor: &ElementCtor,
        env: &mut Env,
        ctx: Option<&Item>,
    ) -> EResult<CElem> {
        let mut attrs = Vec::with_capacity(ctor.attrs.len());
        for (name, parts) in &ctor.attrs {
            let mut value = String::new();
            for part in parts {
                match part {
                    AttrPart::Lit(s) => value.push_str(s),
                    AttrPart::Expr(e) => {
                        let seq = self.eval(e, env, ctx)?;
                        // AVT: items joined with single spaces.
                        for (i, item) in seq.iter().enumerate() {
                            if i > 0 {
                                value.push(' ');
                            }
                            value.push_str(&atomize(self.store, item));
                        }
                    }
                }
            }
            attrs.push((name.clone(), value));
        }
        let mut children = Vec::new();
        for content in &ctor.content {
            match content {
                Content::Text(t) => children.push(Item::str(t)),
                Content::Expr(e) => children.extend(self.eval(e, env, ctx)?),
                Content::Element(nested) => {
                    children.push(Item::Elem(Arc::new(self.build_element(nested, env, ctx)?)));
                }
            }
        }
        Ok(CElem {
            tag: ctor.tag.clone(),
            attrs,
            children,
        })
    }

    fn general_compare(&self, op: CmpOp, l: &[Item], r: &[Item]) -> bool {
        for a in l {
            let sa = atomize(self.store, a);
            let ta = sa.trim();
            let na = ta.parse::<f64>().ok();
            for b in r {
                let sb = atomize(self.store, b);
                let tb = sb.trim();
                // Both branches compare the *trimmed* values: the numeric
                // path already parsed from trimmed text, so the string
                // fallback must trim too, or whitespace-padded text nodes
                // would fail equality against their trimmed value.
                let matched = match (na, tb.parse::<f64>().ok()) {
                    (Some(x), Some(y)) => compare_ord(op, x.partial_cmp(&y)),
                    _ => compare_ord(op, Some(ta.cmp(tb))),
                };
                if matched {
                    return true;
                }
            }
        }
        false
    }
}

/// XQuery order key: numeric when the value parses, else string.
struct OrderKey {
    text: String,
    num: Option<f64>,
}

fn compare_keys(a: Option<&OrderKey>, b: Option<&OrderKey>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less, // empty least
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => match (x.num, y.num) {
            (Some(nx), Some(ny)) => nx.total_cmp(&ny),
            _ => x.text.cmp(&y.text),
        },
    }
}

fn compare_ord(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    match ord {
        None => false,
        Some(o) => match op {
            CmpOp::Eq => o == Equal,
            CmpOp::Ne => o != Equal,
            CmpOp::Lt => o == Less,
            CmpOp::Le => o != Greater,
            CmpOp::Gt => o == Greater,
            CmpOp::Ge => o != Less,
        },
    }
}

fn node_order(a: &Item, b: &Item) -> std::cmp::Ordering {
    match (a, b) {
        (Item::Node(x), Item::Node(y)) => x.cmp(y),
        _ => std::cmp::Ordering::Equal,
    }
}

fn collect_descendant_text(store: &dyn XmlStore, n: Node, out: &mut Sequence) {
    for c in store.children_iter(n) {
        if store.text(c).is_some() {
            out.push(Item::Node(c));
        } else {
            collect_descendant_text(store, c, out);
        }
    }
}

/// Effective boolean value.
pub fn ebv(seq: &[Item]) -> bool {
    match seq.first() {
        None => false,
        Some(Item::Bool(b)) => *b && seq.len() == 1 || seq.len() > 1,
        Some(Item::Num(n)) if seq.len() == 1 => *n != 0.0 && !n.is_nan(),
        Some(Item::Str(s)) if seq.len() == 1 => !s.is_empty(),
        Some(_) => true,
    }
}

fn singleton_number(store: &dyn XmlStore, seq: &[Item]) -> Option<f64> {
    match seq {
        [item] => number(store, item),
        _ => None,
    }
}

fn join_atomized(store: &dyn XmlStore, seq: &[Item]) -> String {
    let mut out = String::new();
    for (i, item) in seq.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&atomize(store, item));
    }
    out
}

/// A cache signature for a (source, key-path) pair, or `None` when either
/// is not loop-invariant.
fn invariant_join_signature(src: &Expr, key_expr: &Expr) -> Option<String> {
    let Expr::Path {
        base: PathBase::Root,
        steps: src_steps,
    } = src
    else {
        return None;
    };
    if src_steps.iter().any(|s| !s.preds.is_empty()) {
        return None;
    }
    let Expr::Path {
        base: PathBase::Var(_),
        steps: key_steps,
    } = key_expr
    else {
        return None;
    };
    if key_steps.iter().any(|s| !s.preds.is_empty()) {
        return None;
    }
    Some(format!(
        "{}|{}",
        path_signature(src_steps),
        path_signature(key_steps)
    ))
}

/// Canonical hash-join key: numeric values are normalized so that the
/// join agrees with the general comparison's numeric equality ("40" and
/// "40.0" join).
fn canonical_key(s: &str) -> String {
    match s.trim().parse::<f64>() {
        Ok(n) => crate::result::format_number(n),
        Err(_) => s.to_string(),
    }
}

/// Does `expr` reference the variable `var` anywhere?
fn expr_uses_var(expr: &Expr, var: &str) -> bool {
    match expr {
        Expr::Var(v) => v == var,
        Expr::Path { base, steps } => {
            let base_uses = match base {
                PathBase::Var(v) => v == var,
                PathBase::Expr(e) => expr_uses_var(e, var),
                PathBase::Root | PathBase::Context => false,
            };
            base_uses
                || steps.iter().any(|s| {
                    s.preds.iter().any(|p| match p {
                        Pred::Expr(e) => expr_uses_var(e, var),
                        _ => false,
                    })
                })
        }
        Expr::Flwor(f) => {
            f.clauses.iter().any(|c| match c {
                Clause::For(_, e) | Clause::Let(_, e) => expr_uses_var(e, var),
            }) || f
                .where_clause
                .as_ref()
                .is_some_and(|w| expr_uses_var(w, var))
                || f.order_by
                    .as_ref()
                    .is_some_and(|(k, _)| expr_uses_var(k, var))
                || expr_uses_var(&f.ret, var)
        }
        Expr::Or(parts) | Expr::And(parts) | Expr::Sequence(parts) => {
            parts.iter().any(|p| expr_uses_var(p, var))
        }
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::Before(a, b) => {
            expr_uses_var(a, var) || expr_uses_var(b, var)
        }
        Expr::Neg(e) => expr_uses_var(e, var),
        Expr::Call(_, args) => args.iter().any(|a| expr_uses_var(a, var)),
        Expr::Some {
            bindings,
            satisfies,
        } => bindings.iter().any(|(_, e)| expr_uses_var(e, var)) || expr_uses_var(satisfies, var),
        Expr::Element(ctor) => ctor_uses_var(ctor, var),
        Expr::Str(_) | Expr::Num(_) | Expr::Empty => false,
    }
}

fn ctor_uses_var(ctor: &ElementCtor, var: &str) -> bool {
    ctor.attrs.iter().any(|(_, parts)| {
        parts.iter().any(|p| match p {
            AttrPart::Expr(e) => expr_uses_var(e, var),
            AttrPart::Lit(_) => false,
        })
    }) || ctor.content.iter().any(|c| match c {
        Content::Expr(e) => expr_uses_var(e, var),
        Content::Element(nested) => ctor_uses_var(nested, var),
        Content::Text(_) => false,
    })
}

fn path_signature(steps: &[Step]) -> String {
    let mut sig = String::new();
    for s in steps {
        sig.push(match s.axis {
            Axis::Child => '/',
            Axis::Descendant => 'D',
            Axis::Attribute => '@',
        });
        match &s.test {
            NodeTest::Tag(t) => sig.push_str(t),
            NodeTest::Wildcard => sig.push('*'),
            NodeTest::Text => sig.push_str("#t"),
        }
    }
    sig
}

fn expect_arity(name: &str, args: &[Sequence], n: usize) -> EResult<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(EvalError::Arity(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use crate::result::serialize_sequence;
    use xmark_store::NaiveStore;

    const DOC: &str = r#"<site><regions><europe><item id="item0"><name>gold ring</name><description><text>pure gold</text></description></item><item id="item1"><name>cup</name><description><text>plain tin</text></description></item></europe></regions><people><person id="person0"><name>Alice</name><profile income="95000.00"><age>30</age></profile></person><person id="person1"><name>Bob</name><homepage>http://b</homepage></person></people><open_auctions><open_auction id="open_auction0"><initial>10.00</initial><bidder><personref person="person0"/><increase>5.00</increase></bidder><bidder><personref person="person1"/><increase>20.00</increase></bidder><current>35.00</current></open_auction></open_auctions></site>"#;

    fn run(q: &str) -> String {
        let store = NaiveStore::load(DOC).unwrap();
        let query = parse_query(q).unwrap();
        let eval = Evaluator::new(&store, &query);
        let result = eval.run(&query).unwrap();
        serialize_sequence(&store, &result)
    }

    #[test]
    fn q1_shape_exact_match() {
        let out = run(
            r#"for $b in document("x")/site/people/person[@id = "person0"] return $b/name/text()"#,
        );
        assert_eq!(out, "Alice");
    }

    #[test]
    fn positional_access() {
        let out = run(
            r#"for $b in /site/open_auctions/open_auction return <i>{$b/bidder[1]/increase/text()}</i>"#,
        );
        assert_eq!(out, "<i>5.00</i>");
        let out = run(
            r#"for $b in /site/open_auctions/open_auction return <i>{$b/bidder[last()]/increase/text()}</i>"#,
        );
        assert_eq!(out, "<i>20.00</i>");
    }

    #[test]
    fn where_with_arithmetic() {
        let out = run(
            r#"for $b in /site/open_auctions/open_auction where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text() return <hit/>"#,
        );
        assert_eq!(out, "<hit/>");
    }

    #[test]
    fn descendant_counting() {
        assert_eq!(run("count(/site//item)"), "2");
        assert_eq!(run("count(/site//nothing)"), "0");
        assert_eq!(
            run("for $p in /site return count($p//item) + count($p//person)"),
            "4"
        );
    }

    #[test]
    fn contains_fulltext() {
        let out = run(
            r#"for $i in /site//item where contains(string($i/description), "gold") return $i/name/text()"#,
        );
        assert_eq!(out, "gold ring");
    }

    #[test]
    fn missing_elements() {
        let out = run(
            r#"for $p in /site/people/person where empty($p/homepage/text()) return <person name="{$p/name/text()}"/>"#,
        );
        assert_eq!(out, r#"<person name="Alice"/>"#);
    }

    #[test]
    fn join_on_values() {
        let out = run(
            r#"for $p in /site/people/person let $a := for $t in /site/open_auctions/open_auction/bidder/personref where $t/@person = $p/@id return $t return <n name="{$p/name/text()}">{count($a)}</n>"#,
        );
        assert_eq!(out, "<n name=\"Alice\">1</n>\n<n name=\"Bob\">1</n>");
    }

    #[test]
    fn order_by_sorts() {
        let out =
            run(r#"for $i in /site//item order by zero-or-one($i/name) return $i/name/text()"#);
        assert_eq!(out, "cup\ngold ring");
        let out = run(
            r#"for $i in /site//item order by zero-or-one($i/name) descending return $i/name/text()"#,
        );
        assert_eq!(out, "gold ring\ncup");
    }

    #[test]
    fn quantified_before() {
        let out = run(
            r#"for $b in /site/open_auctions/open_auction where some $x in $b/bidder/personref[@person = "person0"], $y in $b/bidder/personref[@person = "person1"] satisfies $x << $y return <yes/>"#,
        );
        assert_eq!(out, "<yes/>");
        let out = run(
            r#"for $b in /site/open_auctions/open_auction where some $x in $b/bidder/personref[@person = "person1"], $y in $b/bidder/personref[@person = "person0"] satisfies $x << $y return <yes/>"#,
        );
        assert_eq!(out, "");
    }

    #[test]
    fn udf_application() {
        let out = run(
            "declare function local:convert($v) { 2.20371 * $v }; for $i in /site/open_auctions/open_auction return local:convert(zero-or-one($i/initial/text()))",
        );
        let value: f64 = out.parse().unwrap();
        assert!((value - 22.0371).abs() < 1e-9);
    }

    #[test]
    fn predicate_on_attributes_numeric() {
        assert_eq!(
            run(r#"count(/site/people/person/profile[@income >= 90000])"#),
            "1"
        );
        assert_eq!(
            run(r#"count(/site/people/person/profile[@income < 90000])"#),
            "0"
        );
    }

    #[test]
    fn distinct_values_dedups() {
        let out = run(
            r#"for $x in distinct-values(/site/open_auctions/open_auction/bidder/personref/@person) return <p>{$x}</p>"#,
        );
        assert_eq!(out, "<p>person0</p>\n<p>person1</p>");
    }

    #[test]
    fn reconstruction_copies_subtrees() {
        let out = run(
            r#"for $i in /site/regions/europe/item[@id = "item1"] return <item name="{$i/name/text()}">{$i/description}</item>"#,
        );
        assert_eq!(
            out,
            r#"<item name="cup"><description><text>plain tin</text></description></item>"#
        );
    }

    #[test]
    fn arithmetic_with_empty_is_empty() {
        assert_eq!(
            run("count(2 * /site/people/person[@id = \"ghost\"]/name)"),
            "0"
        );
    }

    #[test]
    fn sum_and_number_functions() {
        assert_eq!(
            run("sum(/site/open_auctions/open_auction/bidder/increase)"),
            "25"
        );
        assert_eq!(run("sum(())"), "0");
        assert_eq!(
            run("number(/site/open_auctions/open_auction/initial)"),
            "10"
        );
    }

    #[test]
    fn number_of_unparseable_is_nan() {
        // XQuery: number("x") is NaN, not the empty sequence.
        assert_eq!(run("number(/site/people/person/name)"), "NaN");
        assert_eq!(run("count(number(/site/people/person/name))"), "1");
        // The empty sequence coerces to NaN too.
        assert_eq!(run("number(/site/ghosts)"), "NaN");
        // NaN formats canonically and compares unequal to everything,
        // including itself.
        assert_eq!(crate::result::format_number(f64::NAN), "NaN");
        assert_eq!(
            run("number(/site/people/person/name) = number(/site/people/person/name)"),
            "false"
        );
        assert_eq!(run("number(/site/ghosts) = 0"), "false");
        assert_eq!(run("number(/site/ghosts) < 0"), "false");
    }

    #[test]
    fn general_compare_trims_both_paths() {
        // Whitespace-padded text nodes equal their trimmed value in both
        // the numeric branch and the string fallback (which used to
        // compare untrimmed).
        let doc = r#"<a><n>  42  </n><s>  gold  </s></a>"#;
        let store = NaiveStore::load(doc).unwrap();
        for (q, expected) in [
            (r#"/a/n = "42""#, "true"),
            (r#"/a/n = 42"#, "true"),
            (r#"/a/s = "gold""#, "true"),
            (r#"/a/s = "  gold  ""#, "true"),
            (r#"/a/s = "silver""#, "false"),
            (r#"/a/s < "halt""#, "true"),
        ] {
            let query = parse_query(q).unwrap();
            let eval = Evaluator::new(&store, &query);
            let result = eval.run(&query).unwrap();
            assert_eq!(serialize_sequence(&store, &result), expected, "query {q}");
        }
    }

    #[test]
    fn unsupported_attribute_steps_are_named() {
        for (q, step) in [
            ("/site/people/person/@*", "@*"),
            ("/site/people/person/@text()", "@text()"),
        ] {
            let store = NaiveStore::load(DOC).unwrap();
            let query = parse_query(q).unwrap();
            let eval = Evaluator::new(&store, &query);
            match eval.run(&query) {
                Err(EvalError::UnsupportedStep(s)) => {
                    assert_eq!(s, step);
                    assert!(
                        EvalError::UnsupportedStep(s).to_string().contains(step),
                        "message names the step"
                    );
                }
                other => panic!("expected UnsupportedStep for {q}, got {other:?}"),
            }
        }
    }

    #[test]
    fn exists_and_not() {
        assert_eq!(run("exists(/site/people/person)"), "true");
        assert_eq!(run("exists(/site/ghosts)"), "false");
        assert_eq!(run("not(empty(/site/people/person))"), "true");
    }

    #[test]
    fn data_atomizes_attributes() {
        assert_eq!(run("data(/site/people/person/profile/@income)"), "95000.00");
    }

    #[test]
    fn zero_or_one_rejects_long_sequences() {
        let store = NaiveStore::load(DOC).unwrap();
        let query = parse_query("zero-or-one(/site/people/person)").unwrap();
        let eval = Evaluator::new(&store, &query);
        assert!(matches!(
            eval.run(&query),
            Err(EvalError::Cardinality("zero-or-one"))
        ));
    }

    #[test]
    fn wrong_arity_is_reported() {
        let store = NaiveStore::load(DOC).unwrap();
        let query = parse_query("count(1, 2)").unwrap();
        let eval = Evaluator::new(&store, &query);
        assert!(matches!(eval.run(&query), Err(EvalError::Arity(_))));
    }

    #[test]
    fn wildcard_and_descendant_text_steps() {
        assert_eq!(
            run("count(/site/regions/europe/item[@id = \"item0\"]/*)"),
            "2"
        );
        let out = run(r#"for $t in /site/regions/europe/item[@id = "item0"]//text() return $t"#);
        assert_eq!(out, "gold ring\npure gold");
    }

    #[test]
    fn positional_predicates_on_wildcard_steps_are_per_context() {
        // Two persons, so `person/*[1]` is the *first child of each*, not
        // the first node of the merged output (a former bug: predicates
        // drained the accumulated output across context nodes).
        assert_eq!(run("count(/site/people/person)"), "2");
        assert_eq!(run("count(/site/people/person/*[1])"), "2");
        let out = run(r#"for $n in /site/people/person/*[1] return $n/text()"#);
        assert_eq!(out, "Alice\nBob");
        // Same per-context rule on text() steps.
        assert_eq!(run("count(/site/people/person/name/text()[1])"), "2");
    }

    #[test]
    fn or_expressions_shortcircuit() {
        assert_eq!(
            run(
                r#"count(for $p in /site/people/person where $p/@id = "person0" or $p/homepage return $p)"#
            ),
            "2"
        );
    }

    #[test]
    fn errors_are_reported() {
        let store = NaiveStore::load(DOC).unwrap();
        let query = parse_query("$undefined").unwrap();
        let eval = Evaluator::new(&store, &query);
        assert!(matches!(
            eval.run(&query),
            Err(EvalError::UndefinedVariable(_))
        ));
        let query = parse_query("nosuchfn(1)").unwrap();
        let eval = Evaluator::new(&store, &query);
        assert!(matches!(
            eval.run(&query),
            Err(EvalError::UnknownFunction(_))
        ));
    }
}
