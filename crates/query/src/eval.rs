//! The plan executor.
//!
//! [`Evaluator`] walks a [`PhysicalPlan`] produced by the compile-time
//! planner ([`crate::planner`]). It contains **no strategy decisions**:
//! which FLWOR runs as a hash join, where predicates are filtered, and
//! which store access path answers a step were all chosen when the query
//! was compiled and are visible via [`crate::explain`]. What remains here
//! is mechanism:
//!
//! * operator execution — the pipelining operators (PathScan, NestedLoop,
//!   HashJoin probe sides, IndexLookup probes, Project) run as pull-based
//!   cursors defined in [`crate::stream`]; this module supplies the
//!   shared per-context mechanics they call into (step expansion,
//!   predicate application, join build sides, order keys),
//! * per-execution memos (loop-invariant path materialization, join hash
//!   tables, probe key lists) keyed by the signatures the planner
//!   computed,
//! * graceful fallbacks where a plan annotation turns out not to cover a
//!   node (an un-inlined value, an unsupported positional probe) — the
//!   generic cursor path always remains correct.
//!
//! Scalar contexts (comparison operands, arithmetic, function arguments)
//! still evaluate to materialized [`Sequence`]s via [`Evaluator::eval`];
//! boolean contexts (where-filters, predicates, quantifiers, `and`/`or`)
//! go through the short-circuiting `eval_ebv`, which pulls at most two
//! items from a streaming cursor instead of draining the operand.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use xmark_store::{ChildValues, DescendantsNamed, IndexManager, Node, XmlStore};

use crate::ast::{Axis, CmpOp, NodeTest};
use crate::plan::*;
use crate::result::{atomize, number, CElem, Item, Sequence};
use crate::stream::{flwor_cursor, path_cursor, Cursor};

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Reference to an unbound variable.
    UndefinedVariable(String),
    /// Call to an unknown function.
    UnknownFunction(String),
    /// `zero-or-one` applied to a longer sequence.
    Cardinality(&'static str),
    /// A path step applied to a constructed element or atomic.
    PathOverNonNode,
    /// A syntactically valid step form the evaluator does not implement
    /// (`@*`, `@text()`). Carries the offending step's rendering.
    UnsupportedStep(String),
    /// Relative path with no context item.
    NoContext,
    /// Wrong number of arguments to a function.
    Arity(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UndefinedVariable(v) => write!(f, "undefined variable ${v}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function {n}()"),
            EvalError::Cardinality(what) => write!(f, "cardinality violation in {what}"),
            EvalError::PathOverNonNode => write!(f, "path step applied to a non-node item"),
            EvalError::UnsupportedStep(step) => {
                write!(f, "unsupported path step {step}")
            }
            EvalError::NoContext => write!(f, "relative path without a context item"),
            EvalError::Arity(n) => write!(f, "wrong number of arguments to {n}()"),
        }
    }
}

impl std::error::Error for EvalError {}

pub(crate) type EResult<T> = Result<T, EvalError>;

/// A lookup index for join operators: canonical key → (source position,
/// item) pairs in source order.
pub(crate) type JoinIndex = HashMap<String, Vec<(usize, Item)>>;

/// Variable environment with lexical scoping, borrowing its names from
/// the plan (`'a`).
///
/// Bindings hold `&'a str` names and `Arc<Sequence>` values, so pushing
/// a binding and cloning an environment (operator cursors own a snapshot
/// each, once per tuple) copy a few pointers — no per-tuple name
/// allocations, and never the bound sequences.
#[derive(Default, Clone)]
pub(crate) struct Env<'a> {
    bindings: Vec<(&'a str, Arc<Sequence>)>,
}

impl<'a> Env<'a> {
    pub(crate) fn push(&mut self, name: &'a str, value: Arc<Sequence>) {
        self.bindings.push((name, value));
    }

    pub(crate) fn pop(&mut self) {
        self.bindings.pop();
    }

    pub(crate) fn get(&self, name: &str) -> Option<&Arc<Sequence>> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }
}

/// The executor, bound to one store and one physical plan's functions.
pub struct Evaluator<'a> {
    pub(crate) store: &'a dyn XmlStore,
    /// The store's persistent index subsystem: shared element postings
    /// (IndexScan), the `@id` attribute index, and the cross-execution
    /// value indexes the join operators probe.
    indexes: &'a IndexManager,
    /// Whether this execution consults (and feeds) the shared value
    /// indexes: requires both the backend capability
    /// ([`xmark_store::PlannerCaps::value_index`]) and an optimized
    /// plan. Naive-mode executions stay fully independent of every
    /// shared structure, so the planned-vs-naive oracles compare two
    /// genuinely separate evaluations — the specification must never
    /// replay the implementation's cached results. The per-execution
    /// memos below remain as a lock-free first level either way.
    shared_values: bool,
    functions: HashMap<&'a str, &'a PlanFunction>,
    /// Memo for loop-invariant absolute paths — the materialization every
    /// system in the paper performs before joining.
    path_cache: RefCell<HashMap<String, Arc<Sequence>>>,
    /// Per-execution (L1) memo for IndexLookup indexes and HashJoin build
    /// sides, keyed by the planner's signatures. Populated from the
    /// store-resident value indexes (L2) when those are enabled, so after
    /// warmup an execution performs zero builds — only probes.
    index_cache: RefCell<HashMap<String, Arc<JoinIndex>>>,
    /// Per-execution (L1) memo for hash-join probe-side key lists,
    /// aligned with the cached source sequence.
    key_cache: RefCell<HashMap<String, Arc<Vec<Vec<String>>>>>,
    /// The element index, resolved once per execution (see
    /// [`Evaluator::index_postings`]).
    element_index: std::cell::OnceCell<&'a xmark_store::ElementIndex>,
    /// Per-execution memo of resolved child-value indexes by tag
    /// (`None` = unavailable), so the per-open resolution never touches
    /// the manager's locks on the hot path.
    child_values_cache: RefCell<HashMap<String, Option<Arc<ChildValues>>>>,
    /// Items pulled through operator cursors (path-step expansions and
    /// clause bindings). The probe behind the early-termination tests:
    /// `exists()`/`take(n)` must pull strictly fewer items than a full
    /// evaluation.
    pulls: Cell<u64>,
    /// Memoized-path signatures already opened by a streaming cursor
    /// this execution. A second open proves the loop-invariant path is
    /// being re-evaluated (an inner FLWOR clause restarted per outer
    /// binding), at which point it materializes into `path_cache`; first
    /// opens stay lazy so one-shot top-level paths keep their
    /// time-to-first-item.
    streamed_paths: RefCell<HashSet<String>>,
}

impl<'a> Evaluator<'a> {
    /// Create an executor for `plan` against `store`.
    pub fn new(store: &'a dyn XmlStore, plan: &'a PhysicalPlan) -> Self {
        Evaluator {
            store,
            indexes: store.indexes(),
            shared_values: store.planner_caps().value_index
                && plan.mode == crate::plan::PlanMode::Optimized,
            functions: plan
                .functions
                .iter()
                .map(|f| (f.name.as_str(), f))
                .collect(),
            path_cache: RefCell::new(HashMap::new()),
            index_cache: RefCell::new(HashMap::new()),
            key_cache: RefCell::new(HashMap::new()),
            element_index: std::cell::OnceCell::new(),
            child_values_cache: RefCell::new(HashMap::new()),
            pulls: Cell::new(0),
            streamed_paths: RefCell::new(HashSet::new()),
        }
    }

    /// Execute the plan body, materializing the whole result — equivalent
    /// to draining [`crate::stream::ResultStream`].
    pub fn run(&self, plan: &'a PhysicalPlan) -> EResult<Sequence> {
        let mut env = Env::default();
        self.eval(&plan.body, &mut env, None)
    }

    /// Items pulled through operator cursors so far (see
    /// [`crate::stream::ResultStream::pulls`]).
    pub fn pulls(&self) -> u64 {
        self.pulls.get()
    }

    /// Record `n` items pulled through an operator cursor.
    pub(crate) fn count_pulls(&self, n: u64) {
        self.pulls.set(self.pulls.get() + n);
    }

    /// Drain a cursor into a materialized sequence.
    pub(crate) fn drain(&self, mut cur: Cursor<'a>) -> EResult<Sequence> {
        let mut out = Vec::new();
        while let Some(r) = cur.next(self) {
            out.push(r?);
        }
        Ok(out)
    }

    pub(crate) fn eval(
        &self,
        expr: &'a PlanExpr,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        match expr {
            PlanExpr::Str(s) => Ok(vec![Item::str(s)]),
            PlanExpr::Num(n) => Ok(vec![Item::Num(*n)]),
            PlanExpr::Empty => Ok(Vec::new()),
            PlanExpr::Var(name) => env
                .get(name)
                .map(|s| s.as_ref().clone())
                .ok_or_else(|| EvalError::UndefinedVariable(name.clone())),
            PlanExpr::Sequence(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(self.eval(p, env, ctx)?);
                }
                Ok(out)
            }
            PlanExpr::Or(parts) => {
                for p in parts {
                    if self.eval_ebv(p, env, ctx)? {
                        return Ok(vec![Item::Bool(true)]);
                    }
                }
                Ok(vec![Item::Bool(false)])
            }
            PlanExpr::And(parts) => {
                for p in parts {
                    if !self.eval_ebv(p, env, ctx)? {
                        return Ok(vec![Item::Bool(false)]);
                    }
                }
                Ok(vec![Item::Bool(true)])
            }
            PlanExpr::Cmp(op, lhs, rhs) => {
                let l = self.eval(lhs, env, ctx)?;
                let r = self.eval(rhs, env, ctx)?;
                Ok(vec![Item::Bool(self.general_compare(*op, &l, &r))])
            }
            PlanExpr::Before(lhs, rhs) => {
                let l = self.eval(lhs, env, ctx)?;
                let r = self.eval(rhs, env, ctx)?;
                let before = l.iter().any(|a| {
                    r.iter().any(|b| match (a, b) {
                        // Compare order *keys*, not raw ids: MVCC
                        // snapshots number inserted nodes above the base
                        // range but interleave them by rank.
                        (Item::Node(x), Item::Node(y)) => {
                            self.store.doc_order_key(*x) < self.store.doc_order_key(*y)
                        }
                        _ => false,
                    })
                });
                Ok(vec![Item::Bool(before)])
            }
            PlanExpr::Arith(op, lhs, rhs) => {
                let l = self.eval(lhs, env, ctx)?;
                let r = self.eval(rhs, env, ctx)?;
                let (Some(a), Some(b)) = (
                    singleton_number(self.store, &l),
                    singleton_number(self.store, &r),
                ) else {
                    return Ok(Vec::new());
                };
                use crate::ast::ArithOp;
                let v = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                    ArithOp::Mod => a % b,
                };
                Ok(vec![Item::Num(v)])
            }
            PlanExpr::Neg(inner) => {
                let v = self.eval(inner, env, ctx)?;
                Ok(match singleton_number(self.store, &v) {
                    Some(n) => vec![Item::Num(-n)],
                    None => Vec::new(),
                })
            }
            PlanExpr::Path(p) => self.eval_path(p, env, ctx),
            PlanExpr::Aggregate(a) => self.eval_aggregate(a, env, ctx),
            PlanExpr::Flwor(f) => self.drain(flwor_cursor(f, env, ctx, false)),
            PlanExpr::Some {
                bindings,
                satisfies,
            } => {
                let found = self.eval_some(bindings, 0, satisfies, env, ctx)?;
                Ok(vec![Item::Bool(found)])
            }
            PlanExpr::Call(name, args) => self.eval_call(name, args, env, ctx),
            PlanExpr::Element(ctor) => {
                let elem = self.build_element(ctor, env, ctx)?;
                Ok(vec![Item::Elem(Arc::new(elem))])
            }
        }
    }

    /// Effective boolean value of `expr`, short-circuiting: for the
    /// streamable operators (paths, FLWORs, comma sequences) this pulls at
    /// most two items from a cursor instead of draining the operand — an
    /// existential predicate like `[bidder]` stops at the first child.
    ///
    /// Consequence (shared with the `exists`/`empty` fast paths and
    /// permitted by XQuery's errors-and-optimization rules): an
    /// evaluation error lurking in the *un-pulled tail* of the operand is
    /// never raised — `exists((/site/a, $undefined))` answers `true`
    /// from the first item without touching `$undefined`. Pinned by
    /// `short_circuits_skip_errors_in_unpulled_tails`.
    pub(crate) fn eval_ebv(
        &self,
        expr: &'a PlanExpr,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<bool> {
        match expr {
            PlanExpr::Path(_) | PlanExpr::Flwor(_) | PlanExpr::Sequence(_) => {
                // `order by` cannot change whether any tuple exists, so the
                // EBV cursor for a FLWOR skips the Sort buffer entirely.
                let mut cur = match expr {
                    PlanExpr::Flwor(f) => flwor_cursor(f, env, ctx, true),
                    _ => Cursor::build(self, expr, env, ctx),
                };
                let Some(first) = cur.next(self).transpose()? else {
                    return Ok(false);
                };
                match first {
                    Item::Node(_) | Item::Elem(_) => Ok(true),
                    atom => {
                        // A second item of any kind makes the sequence true;
                        // a singleton atom follows the atomic EBV rules.
                        if cur.next(self).transpose()?.is_some() {
                            Ok(true)
                        } else {
                            Ok(ebv(&[atom]))
                        }
                    }
                }
            }
            _ => Ok(ebv(&self.eval(expr, env, ctx)?)),
        }
    }

    // ---- FLWOR support ---------------------------------------------------

    /// Fetch — or build exactly once — the hash table `canonical key →
    /// (index, item)` over the items of `src`, keyed by `key_expr`
    /// evaluated with `var` bound to each item. Blocking by nature: the
    /// build side of a hash join buffers before the first probe.
    ///
    /// Lookup order: the per-execution memo (L1, lock-free), then the
    /// store-resident value index (L2, [`IndexManager`]) when the planner
    /// produced a loop-invariance signature and the backend persists
    /// values — so after warmup, repeated executions (and every worker of
    /// a service pool) probe one shared structure and never rebuild.
    pub(crate) fn join_build_side(
        &self,
        var: &'a str,
        src: &'a PlanExpr,
        key_expr: &'a PlanExpr,
        sig: Option<&str>,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Arc<JoinIndex>> {
        if let Some(sig) = sig {
            if let Some(cached) = self.index_cache.borrow().get(sig) {
                return Ok(Arc::clone(cached));
            }
        }
        let rc = match sig.filter(|_| self.shared_values) {
            Some(sig) => {
                let erased = self.indexes.value_or_build(&format!("idx|{sig}"), || {
                    let map = self.build_join_index(var, src, key_expr, env, ctx)?;
                    let bytes = join_index_bytes(&map);
                    Ok::<_, EvalError>((Arc::new(map) as Arc<dyn Any + Send + Sync>, bytes))
                })?;
                erased
                    .downcast::<JoinIndex>()
                    // lint: allow(R1) slot key "idx|…" is written only by the
                    // closure above, so the type is fixed by construction
                    .expect("value slot idx|… holds a JoinIndex")
            }
            None => Arc::new(self.build_join_index(var, src, key_expr, env, ctx)?),
        };
        if let Some(sig) = sig {
            self.index_cache
                .borrow_mut()
                .insert(sig.to_string(), Arc::clone(&rc));
        }
        Ok(rc)
    }

    /// The IndexLookup operator's index over `source`: canonical key →
    /// (position, item) pairs in source order. Identical structure and
    /// identical caching discipline to a hash-join build side, so it *is*
    /// one — the planner's signature makes it persistent.
    pub(crate) fn lookup_index(
        &self,
        var: &'a str,
        source: &'a PlanExpr,
        inner_key: &'a PlanExpr,
        sig: &str,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Arc<JoinIndex>> {
        self.join_build_side(var, source, inner_key, Some(sig), env, ctx)
    }

    /// The actual build walk behind [`Evaluator::join_build_side`].
    fn build_join_index(
        &self,
        var: &'a str,
        src: &'a PlanExpr,
        key_expr: &'a PlanExpr,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<JoinIndex> {
        let source = self.eval(src, env, ctx)?;
        #[cfg(feature = "parallel")]
        if let Some(map) = self.parallel_join_build(var, key_expr, &source, env, ctx)? {
            return Ok(map);
        }
        let mut map: JoinIndex = HashMap::with_capacity(source.len());
        for (i, item) in source.into_iter().enumerate() {
            env.push(var, Arc::new(vec![item.clone()]));
            let keys = self.eval(key_expr, env, ctx);
            env.pop();
            for key in keys? {
                if let Some(canonical) = canonical_key(&atomize(self.store, &key)) {
                    map.entry(canonical).or_default().push((i, item.clone()));
                }
            }
        }
        Ok(map)
    }

    /// Intra-query parallel build: partition the build side across a
    /// scoped thread pool, each worker computing its partition's
    /// canonical key lists with its own forked evaluator (this type is
    /// `!Sync` by design — per-execution memos are plain `Cell`s), then
    /// merge in partition order so the resulting index is byte-identical
    /// to the sequential build. Compiled only under the `parallel`
    /// feature so the single-core benchmark container keeps the exact
    /// sequential execution profile; returns `None` (sequential
    /// fallback) for small builds or single-core hosts.
    #[cfg(feature = "parallel")]
    fn parallel_join_build(
        &self,
        var: &'a str,
        key_expr: &'a PlanExpr,
        source: &[Item],
        env: &Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Option<JoinIndex>> {
        /// Below this many build items the per-thread setup dominates.
        const MIN_PARALLEL_BUILD: usize = 256;
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let workers = workers.min(source.len() / MIN_PARALLEL_BUILD).min(8);
        if workers < 2 {
            return Ok(None);
        }
        let chunk = source.len().div_ceil(workers);
        let store = self.store;
        let functions = &self.functions;
        let results: Vec<EResult<(Vec<Vec<String>>, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = source
                .chunks(chunk)
                .map(|part| {
                    let mut env = env.clone();
                    let ctx = ctx.cloned();
                    scope.spawn(move || {
                        let ev = Evaluator::fork(store, functions.clone());
                        let mut keys = Vec::with_capacity(part.len());
                        for item in part {
                            env.push(var, Arc::new(vec![item.clone()]));
                            let evaluated = ev.eval(key_expr, &mut env, ctx.as_ref());
                            env.pop();
                            let canon: Vec<String> = evaluated?
                                .iter()
                                .filter_map(|key| canonical_key(&atomize(store, key)))
                                .collect();
                            keys.push(canon);
                        }
                        Ok((keys, ev.pulls()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        let mut map: JoinIndex = HashMap::with_capacity(source.len());
        let mut i = 0usize;
        for res in results {
            let (keys, pulls) = res?;
            // Workers counted pulls on their own forks; fold them back so
            // the probe totals match the sequential build exactly.
            self.count_pulls(pulls);
            for canon in keys {
                for canonical in canon {
                    map.entry(canonical)
                        .or_default()
                        .push((i, source[i].clone()));
                }
                i += 1;
            }
        }
        Ok(Some(map))
    }

    /// A fresh evaluator for a parallel worker: same store, same plan
    /// functions, but private per-execution memos and `shared_values`
    /// off — workers never write the store-resident value slots, the
    /// parent publishes the merged result once.
    #[cfg(feature = "parallel")]
    fn fork(store: &'a dyn XmlStore, functions: HashMap<&'a str, &'a PlanFunction>) -> Self {
        Evaluator {
            store,
            indexes: store.indexes(),
            shared_values: false,
            functions,
            path_cache: RefCell::new(HashMap::new()),
            index_cache: RefCell::new(HashMap::new()),
            key_cache: RefCell::new(HashMap::new()),
            element_index: std::cell::OnceCell::new(),
            child_values_cache: RefCell::new(HashMap::new()),
            pulls: Cell::new(0),
            streamed_paths: RefCell::new(HashSet::new()),
        }
    }

    /// Per-item canonical key lists for the probe side, memoized like the
    /// build sides: per-execution first, store-resident when
    /// loop-invariant (aligned with the deterministic source sequence).
    pub(crate) fn join_probe_keys(
        &self,
        var: &'a str,
        key_expr: &'a PlanExpr,
        sig: Option<&str>,
        left: &[Item],
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Arc<Vec<Vec<String>>>> {
        if let Some(sig) = sig {
            if let Some(cached) = self.key_cache.borrow().get(sig) {
                if cached.len() == left.len() {
                    return Ok(Arc::clone(cached));
                }
            }
        }
        let rc = match sig.filter(|_| self.shared_values) {
            Some(sig) => {
                let erased = self.indexes.value_or_build(&format!("keys|{sig}"), || {
                    let keys = self.build_probe_keys(var, key_expr, left, env, ctx)?;
                    let bytes: usize = keys
                        .iter()
                        .flatten()
                        .map(|k| k.capacity() + 24)
                        .sum::<usize>()
                        + keys.capacity() * 24;
                    Ok::<_, EvalError>((Arc::new(keys) as Arc<dyn Any + Send + Sync>, bytes))
                })?;
                let shared = erased
                    .downcast::<Vec<Vec<String>>>()
                    // lint: allow(R1) slot key "keys|…" is written only by the
                    // closure above, so the type is fixed by construction
                    .expect("value slot keys|… holds probe key lists");
                if shared.len() == left.len() {
                    shared
                } else {
                    // Defensive: a probe side whose cardinality diverged
                    // from the shared structure rebuilds locally.
                    Arc::new(self.build_probe_keys(var, key_expr, left, env, ctx)?)
                }
            }
            None => Arc::new(self.build_probe_keys(var, key_expr, left, env, ctx)?),
        };
        if let Some(sig) = sig {
            self.key_cache
                .borrow_mut()
                .insert(sig.to_string(), Arc::clone(&rc));
        }
        Ok(rc)
    }

    /// The actual key-evaluation walk behind [`Evaluator::join_probe_keys`].
    fn build_probe_keys(
        &self,
        var: &'a str,
        key_expr: &'a PlanExpr,
        left: &[Item],
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Vec<Vec<String>>> {
        let mut keys = Vec::with_capacity(left.len());
        for item in left {
            env.push(var, Arc::new(vec![item.clone()]));
            let evaluated = self.eval(key_expr, env, ctx);
            env.pop();
            keys.push(
                evaluated?
                    .iter()
                    .filter_map(|k| canonical_key(&atomize(self.store, k)))
                    .collect::<Vec<String>>(),
            );
        }
        Ok(keys)
    }

    /// Canonicalize an atomized value for join lookup (`None` = NaN,
    /// which matches nothing).
    pub(crate) fn canonical_join_key(&self, item: &Item) -> Option<String> {
        canonical_key(&atomize(self.store, item))
    }

    /// Evaluate the Sort operator's key for the current tuple.
    pub(crate) fn order_key(
        &self,
        f: &'a FlworPlan,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Option<OrderKey>> {
        match &f.order_by {
            Some((key_expr, _)) => {
                let key_seq = self.eval(key_expr, env, ctx)?;
                Ok(key_seq.first().map(|item| {
                    let s = atomize(self.store, item);
                    let n = s.trim().parse::<f64>().ok();
                    OrderKey { text: s, num: n }
                }))
            }
            None => Ok(None),
        }
    }

    fn eval_some(
        &self,
        bindings: &'a [(String, PlanExpr)],
        depth: usize,
        satisfies: &'a PlanExpr,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<bool> {
        if depth == bindings.len() {
            return self.eval_ebv(satisfies, env, ctx);
        }
        let (var, source) = &bindings[depth];
        // Pull bindings lazily: the quantifier stops at the first witness
        // without draining the binding sequence.
        let mut cur = Cursor::build(self, source, env, ctx);
        while let Some(next) = cur.next(self) {
            let item = next?;
            self.count_pulls(1);
            env.push(var, Arc::new(vec![item]));
            let found = self.eval_some(bindings, depth + 1, satisfies, env, ctx);
            env.pop();
            if found? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    // ---- PathScan --------------------------------------------------------

    /// The shared element index, resolved (and hit-counted) once per
    /// execution instead of once per expanded context node — IndexScan
    /// expansion is the hottest path in the executor and must not
    /// contend on the manager's counters across worker threads.
    fn element_index(&self) -> &'a xmark_store::ElementIndex {
        self.element_index
            .get_or_init(|| self.indexes.element(self.store))
    }

    /// The shared element index's posting slice for `tag` under `n`, or
    /// `None` when subtree stabbing cannot serve this store.
    pub(crate) fn index_postings(&self, n: Node, tag: &str) -> Option<&'a [u32]> {
        self.element_index().postings_in(tag, n)
    }

    /// The descendant cursor for one planned step: an IndexScan streams
    /// the stabbed posting slice; everything else (and the fallback when
    /// stabbing is invalid) walks the store's native axis cursor.
    pub(crate) fn descendant_iter(
        &self,
        n: Node,
        tag: &'a str,
        access: &StepAccess,
    ) -> DescendantsNamed<'a> {
        if matches!(access, StepAccess::IndexScan) {
            if let Some(slice) = self.index_postings(n, tag) {
                return DescendantsNamed::Extent(slice.iter());
            }
        }
        self.store.descendants_named_iter(n, tag)
    }

    /// Materializing path evaluation with the loop-invariant memo; drains
    /// a [`crate::stream`] path cursor on a miss and publishes the result
    /// to the store-resident value index, so later executions replay a
    /// shared sequence instead of re-walking the store.
    pub(crate) fn eval_path(
        &self,
        p: &'a PathPlan,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        if let Some(sig) = &p.memo {
            if let Some(cached) = self.cached_path(sig) {
                return Ok(cached.as_ref().clone());
            }
            let result = self.drain(path_cursor(self, p, env, ctx, true))?;
            let shared = Arc::new(result);
            self.publish_path(sig, Arc::clone(&shared));
            return Ok(shared.as_ref().clone());
        }
        self.drain(path_cursor(self, p, env, ctx, true))
    }

    /// The memoized path sequence for `sig`, if already materialized —
    /// this execution (L1) or any earlier one (the store-resident L2).
    pub(crate) fn cached_path(&self, sig: &str) -> Option<Arc<Sequence>> {
        if let Some(cached) = self.path_cache.borrow().get(sig) {
            return Some(Arc::clone(cached));
        }
        if self.shared_values {
            if let Some(erased) = self.indexes.value_if_built(&format!("path|{sig}")) {
                let shared = erased
                    .downcast::<Sequence>()
                    // lint: allow(R1) slot key "path|…" is written only by
                    // cache_path, so the type is fixed by construction
                    .expect("value slot path|… holds a Sequence");
                self.path_cache
                    .borrow_mut()
                    .insert(sig.to_string(), Arc::clone(&shared));
                return Some(shared);
            }
        }
        None
    }

    /// Record a fully materialized loop-invariant path in both memo
    /// levels. Streaming cursors call this when a lazy first open drains
    /// to completion (the tee in [`crate::stream`]); `eval_path` calls it
    /// on every materializing miss.
    pub(crate) fn publish_path(&self, sig: &str, seq: Arc<Sequence>) {
        self.path_cache
            .borrow_mut()
            .insert(sig.to_string(), Arc::clone(&seq));
        if self.shared_values {
            let bytes = seq.len() * std::mem::size_of::<Item>() + 24;
            let result: Result<_, std::convert::Infallible> =
                self.indexes.value_or_build(&format!("path|{sig}"), || {
                    Ok((Arc::clone(&seq) as Arc<dyn Any + Send + Sync>, bytes))
                });
            let _ = result;
        }
    }

    /// Note a streaming open of the memoized path `sig`, returning
    /// whether it had been opened before this execution — the signal that
    /// the loop-invariant path is being re-evaluated and should
    /// materialize into the cache instead of re-walking the store.
    pub(crate) fn note_streamed_path(&self, sig: &str) -> bool {
        !self.streamed_paths.borrow_mut().insert(sig.to_string())
    }

    /// Materializing step-by-step path evaluation — the fallback the
    /// streaming path cursor uses when its ordering invariants do not
    /// hold (multi-item bases).
    pub(crate) fn eval_path_uncached(
        &self,
        p: &'a PathPlan,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        let steps = &p.steps;
        let (mut current, start_index) = self.root_base(p, env, ctx)?;

        let mut i = start_index;
        while i < steps.len() {
            let step = &steps[i];

            // Planned shortcut: `…/tag/text()` tail answered from inlined
            // entity columns (System C) or the shared child-value index.
            // Falls back to the generic steps if not covered.
            if i + 2 == steps.len() {
                if let Some(tag) = &p.inlined_tail {
                    if let Some(shortcut) = self.try_inlined_tail(&current, tag)? {
                        return Ok(shortcut);
                    }
                }
                if let Some(tag) = &p.value_tail {
                    if let Some(shortcut) = self.try_value_tail(&current, tag)? {
                        return Ok(shortcut);
                    }
                }
            }

            // Planned shortcut: `tag[@id = "…"]` via the store's ID index.
            if let StepAccess::IdProbe(literal) = &step.access {
                if let Some(rewritten) = self.id_probe(&current, step, literal)? {
                    current = rewritten;
                    i += 1;
                    continue;
                }
            }

            current = self.apply_step(&current, step, env, ctx)?;
            i += 1;
        }
        Ok(current)
    }

    /// Resolve a path's base items and the index of the first unapplied
    /// step (the root base consumes its first step specially: the first
    /// step matches against the root *element* itself).
    pub(crate) fn root_base(
        &self,
        p: &'a PathPlan,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<(Sequence, usize)> {
        let steps = &p.steps;
        let mut start_index = 0;
        let current: Sequence = match &p.base {
            PlanBase::Root => {
                let root = self.store.root();
                match steps.first() {
                    None => vec![Item::Node(root)],
                    Some(first) => {
                        start_index = 1;
                        let mut seq: Sequence = Vec::new();
                        match (&first.axis, &first.test) {
                            (Axis::Child, NodeTest::Tag(tag)) => {
                                if self.store.tag_of(root) == Some(tag) {
                                    seq.push(Item::Node(root));
                                }
                            }
                            (Axis::Descendant, NodeTest::Tag(tag)) => {
                                if self.store.tag_of(root) == Some(tag) {
                                    seq.push(Item::Node(root));
                                }
                                seq.extend(
                                    self.descendant_iter(root, tag, &first.access)
                                        .map(Item::Node),
                                );
                            }
                            _ => {
                                // Rare forms (`/*`, `/@x`): evaluate the
                                // step against the root element generically.
                                start_index = 0;
                                seq.push(Item::Node(root));
                            }
                        }
                        if start_index == 1 && !first.preds.is_empty() {
                            let nodes: Vec<Node> = seq
                                .into_iter()
                                .filter_map(|i| match i {
                                    Item::Node(n) => Some(n),
                                    _ => None,
                                })
                                .collect();
                            seq = self
                                .apply_predicates(nodes, &first.preds, env, ctx)?
                                .into_iter()
                                .map(Item::Node)
                                .collect();
                        }
                        seq
                    }
                }
            }
            PlanBase::Var(name) => env
                .get(name)
                .map(|s| s.as_ref().clone())
                .ok_or_else(|| EvalError::UndefinedVariable(name.clone()))?,
            PlanBase::Context => vec![ctx.ok_or(EvalError::NoContext)?.clone()],
            PlanBase::Expr(e) => self.eval(e, env, ctx)?,
        };
        Ok((current, start_index))
    }

    /// The child-value index for `tag`, memoized per execution (`None`
    /// = unavailable: value persistence off, or a naive plan). With
    /// `build` false this only *peeks* at an already-built index — the
    /// contract of a streaming cursor open, which must not pay an
    /// extent walk before its first item; materializing (blocking)
    /// consumers pass `build` true and pay the one-time build where a
    /// full drain is already owed.
    pub(crate) fn child_values(&self, tag: &str, build: bool) -> Option<Arc<ChildValues>> {
        if !self.shared_values {
            return None;
        }
        if let Some(cached) = self.child_values_cache.borrow().get(tag) {
            return cached.clone();
        }
        let resolved = if build {
            self.indexes.child_values(self.store, tag)
        } else {
            // A peek miss is not cached: a later materializing consumer
            // may still build within this execution.
            match self.indexes.child_values_if_built(tag) {
                Some(values) => Some(values),
                None => return None,
            }
        };
        self.child_values_cache
            .borrow_mut()
            .insert(tag.to_string(), resolved.clone());
        resolved
    }

    /// `…/tag/text()` over the shared typed child-value index. `None`
    /// when the index is unavailable — the generic two-step expansion
    /// remains the fallback. The index holds the real text *nodes*, so
    /// the rewrite is invisible even to node-order operators; a
    /// monotonicity guard bails out to the generic steps on the exotic
    /// context sets (nested or duplicated nodes) where the generic
    /// expansion would re-sort and deduplicate across contexts.
    pub(crate) fn try_value_tail(&self, current: &[Item], tag: &str) -> EResult<Option<Sequence>> {
        let Some(values) = self.child_values(tag, true) else {
            return Ok(None);
        };
        let mut out = Vec::new();
        let mut last: Option<u32> = None;
        for item in current {
            let Item::Node(n) = item else {
                return Err(EvalError::PathOverNonNode);
            };
            for &id in values.get(*n) {
                if last.is_some_and(|l| id <= l) {
                    return Ok(None);
                }
                last = Some(id);
                out.push(Item::Node(Node(id)));
            }
        }
        Ok(Some(out))
    }

    /// `…/tag/text()` over inlined columns. Returns `Some` only if *every*
    /// context node could be answered from the entity tables.
    pub(crate) fn try_inlined_tail(
        &self,
        current: &[Item],
        tag: &str,
    ) -> EResult<Option<Sequence>> {
        let mut out = Vec::new();
        for item in current {
            let Item::Node(n) = item else {
                return Err(EvalError::PathOverNonNode);
            };
            match self.store.typed_child_value(*n, tag) {
                Some(Some(v)) => out.push(Item::str(v)),
                Some(None) => {}
                None => return Ok(None),
            }
        }
        Ok(Some(out))
    }

    /// Execute a planned ID probe: the access path behind every
    /// mass-storage system's Q1. Returns `None` (falling back to the
    /// generic cursor) if the store turns out not to index IDs.
    pub(crate) fn id_probe(
        &self,
        current: &[Item],
        step: &'a PlanStep,
        literal: &str,
    ) -> EResult<Option<Sequence>> {
        let NodeTest::Tag(tag) = &step.test else {
            return Ok(None);
        };
        let Some(hit) = self.store.lookup_id(literal) else {
            return Ok(None); // No ID index after all: evaluate generically.
        };
        let Some(node) = hit else {
            return Ok(Some(Vec::new()));
        };
        // Verify the hit is the right tag and actually below the context.
        if self.store.tag_of(node) != Some(tag) {
            return Ok(Some(Vec::new()));
        }
        let reachable = current.iter().any(|item| match item {
            Item::Node(c) => {
                if *c == self.store.root() {
                    true
                } else {
                    self.store.parent(node) == Some(*c) || {
                        let mut cur = node;
                        let mut found = false;
                        while let Some(p) = self.store.parent(cur) {
                            if p == *c {
                                found = true;
                                break;
                            }
                            cur = p;
                        }
                        found
                    }
                }
            }
            _ => false,
        });
        Ok(Some(if reachable {
            vec![Item::Node(node)]
        } else {
            Vec::new()
        }))
    }

    /// Apply one step to a whole context sequence: per-context expansion
    /// plus document order and set semantics across merged contexts.
    pub(crate) fn apply_step(
        &self,
        current: &[Item],
        step: &'a PlanStep,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        let mut out: Sequence = Vec::new();
        let multi_context = current.len() > 1;
        for item in current {
            let Item::Node(n) = item else {
                return Err(EvalError::PathOverNonNode);
            };
            self.expand_step(*n, step, env, ctx, &mut out)?;
        }
        // Document order + set semantics across merged contexts.
        if multi_context && out.iter().all(|i| matches!(i, Item::Node(_))) {
            out.sort_by(node_order);
            out.dedup();
        }
        Ok(out)
    }

    /// Expand one step for a single context node, appending the matches
    /// to `out` with this context's predicates already applied —
    /// predicates are per-context (positional `[1]` selects within each
    /// node's children, not across the merged output). Shared by the
    /// materializing [`Evaluator::apply_step`] and the streaming path
    /// cursor.
    pub(crate) fn expand_step(
        &self,
        n: Node,
        step: &'a PlanStep,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
        out: &mut Sequence,
    ) -> EResult<()> {
        // Where this context node's matches begin.
        let context_start = out.len();
        match (&step.axis, &step.test) {
            (Axis::Attribute, NodeTest::Tag(name)) => {
                if let Some(v) = self.store.attribute(n, name) {
                    out.push(Item::str(v));
                }
            }
            (Axis::Attribute, test) => {
                // `@*` / `@text()`: a real step form we don't implement —
                // say so, instead of the misleading `PathOverNonNode`.
                let rendered = match test {
                    NodeTest::Wildcard => "@*",
                    NodeTest::Text => "@text()",
                    NodeTest::Tag(_) => unreachable!("handled by the arm above"),
                };
                return Err(EvalError::UnsupportedStep(rendered.to_string()));
            }
            (Axis::Child, NodeTest::Text) => {
                for c in self.store.children_iter(n) {
                    if self.store.is_text_node(c) {
                        out.push(Item::Node(c));
                    }
                }
            }
            (Axis::Child, NodeTest::Wildcard) => {
                for c in self.store.children_iter(n) {
                    if self.store.tag_of(c).is_some() {
                        out.push(Item::Node(c));
                    }
                }
            }
            (Axis::Child, NodeTest::Tag(tag)) => {
                // Planned positional probe (Q2/Q3 on System C), with
                // per-node fallback where the index does not apply.
                if let StepAccess::Positional(spec) = &step.access {
                    if let Some(hit) = self.store.positional_child(n, tag, *spec) {
                        if let Some(node) = hit {
                            out.push(Item::Node(node));
                        }
                        return Ok(());
                    }
                }
                if step.preds.is_empty() {
                    // The hot path: stream matches straight into the
                    // output — no intermediate Vec<Node> per step.
                    out.extend(self.store.children_named_iter(n, tag).map(Item::Node));
                    return Ok(());
                }
                let matched: Vec<Node> = self.store.children_named_iter(n, tag).collect();
                let filtered = self.apply_predicates(matched, &step.preds, env, ctx)?;
                out.extend(filtered.into_iter().map(Item::Node));
                return Ok(());
            }
            (Axis::Descendant, NodeTest::Tag(tag)) => {
                // IndexScan and native walks share this arm: the helper
                // streams the stabbed posting slice when the plan chose
                // the shared element index.
                if step.preds.is_empty() {
                    out.extend(self.descendant_iter(n, tag, &step.access).map(Item::Node));
                    return Ok(());
                }
                let matched: Vec<Node> = self.descendant_iter(n, tag, &step.access).collect();
                let filtered = self.apply_predicates(matched, &step.preds, env, ctx)?;
                out.extend(filtered.into_iter().map(Item::Node));
                return Ok(());
            }
            (Axis::Descendant, NodeTest::Text) => {
                collect_descendant_text(self.store, n, out);
            }
            (Axis::Descendant, NodeTest::Wildcard) => {
                let mut stack: Vec<Node> = self.store.children_iter(n).collect();
                while let Some(c) = stack.pop() {
                    if self.store.tag_of(c).is_some() {
                        out.push(Item::Node(c));
                        stack.extend(self.store.children_iter(c));
                    }
                }
                out[context_start..].sort_by(node_order);
            }
        }
        // Predicates for the non-tag axes above, applied to this context
        // node's matches only.
        if !step.preds.is_empty() {
            let nodes: Vec<Node> = out
                .drain(context_start..)
                .filter_map(|i| match i {
                    Item::Node(n) => Some(n),
                    _ => None,
                })
                .collect();
            let filtered = self.apply_predicates(nodes, &step.preds, env, ctx)?;
            out.extend(filtered.into_iter().map(Item::Node));
        }
        Ok(())
    }

    fn apply_predicates(
        &self,
        mut nodes: Vec<Node>,
        preds: &'a [PlanPred],
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Vec<Node>> {
        let _ = ctx;
        for pred in preds {
            nodes = match pred {
                PlanPred::Position(k) => {
                    if *k >= 1 && *k <= nodes.len() {
                        vec![nodes[*k - 1]]
                    } else {
                        Vec::new()
                    }
                }
                PlanPred::Last => match nodes.last() {
                    Some(&n) => vec![n],
                    None => Vec::new(),
                },
                PlanPred::Expr(e) => {
                    let mut kept = Vec::new();
                    for n in nodes {
                        let item = Item::Node(n);
                        // Short-circuit: an existential predicate stops at
                        // its first witness instead of draining the axis.
                        if self.eval_ebv(e, env, Some(&item))? {
                            kept.push(n);
                        }
                    }
                    kept
                }
            };
        }
        Ok(nodes)
    }

    // ---- Aggregate -------------------------------------------------------

    /// `count(prefix//tag)` without node materialization: summary/extent
    /// arithmetic where the backend has it (the paper's Q6/Q7 on System
    /// D), a posting-range length of the shared element index on walking
    /// backends, and a counting cursor walk as the last resort. Blocking
    /// by nature: the answer is one number.
    fn eval_aggregate(
        &self,
        a: &'a AggregatePlan,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        let contexts = self.eval_path(&a.input, env, ctx)?;
        let mut total = 0usize;
        for item in contexts {
            let Item::Node(n) = item else {
                return Err(EvalError::PathOverNonNode);
            };
            let indexed = a
                .indexed
                .then(|| self.element_index().count_in(&a.tag, n))
                .flatten();
            total += match indexed {
                Some(count) => count,
                None => self.store.count_descendants_named(n, &a.tag),
            };
        }
        Ok(vec![Item::Num(total as f64)])
    }

    // ---- functions ---------------------------------------------------------

    fn eval_call(
        &self,
        name: &'a str,
        args: &'a [PlanExpr],
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<Sequence> {
        // `exists`/`empty` are existence checks: pull at most one item
        // from the argument instead of materializing it.
        if let ("exists" | "empty", [arg]) = (name, args) {
            let mut cur = Cursor::build(self, arg, env, ctx);
            let has_item = cur.next(self).transpose()?.is_some();
            return Ok(vec![Item::Bool(if name == "exists" {
                has_item
            } else {
                !has_item
            })]);
        }

        let mut evaluated: Vec<Sequence> = Vec::with_capacity(args.len());
        for a in args {
            evaluated.push(self.eval(a, env, ctx)?);
        }

        match name {
            "count" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::Num(evaluated[0].len() as f64)])
            }
            "sum" => {
                expect_arity(name, &evaluated, 1)?;
                let total: f64 = evaluated[0]
                    .iter()
                    .filter_map(|i| number(self.store, i))
                    .sum();
                Ok(vec![Item::Num(total)])
            }
            "not" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::Bool(!ebv(&evaluated[0]))])
            }
            "empty" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::Bool(evaluated[0].is_empty())])
            }
            "exists" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::Bool(!evaluated[0].is_empty())])
            }
            "contains" => {
                expect_arity(name, &evaluated, 2)?;
                let hay = join_atomized(self.store, &evaluated[0]);
                let needle = join_atomized(self.store, &evaluated[1]);
                Ok(vec![Item::Bool(hay.contains(&needle))])
            }
            "string" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(vec![Item::str(join_atomized(self.store, &evaluated[0]))])
            }
            "data" => {
                expect_arity(name, &evaluated, 1)?;
                Ok(evaluated[0]
                    .iter()
                    .map(|i| Item::str(atomize(self.store, i)))
                    .collect())
            }
            "distinct-values" => {
                expect_arity(name, &evaluated, 1)?;
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for i in &evaluated[0] {
                    let v = atomize(self.store, i);
                    if seen.insert(v.clone()) {
                        out.push(Item::str(v));
                    }
                }
                Ok(out)
            }
            "zero-or-one" => {
                expect_arity(name, &evaluated, 1)?;
                if evaluated[0].len() > 1 {
                    return Err(EvalError::Cardinality("zero-or-one"));
                }
                Ok(evaluated[0].clone())
            }
            "number" => {
                expect_arity(name, &evaluated, 1)?;
                // XQuery `fn:number`: unparseable input (and the empty
                // sequence) is NaN, not the empty sequence.
                let n = evaluated[0]
                    .first()
                    .and_then(|i| number(self.store, i))
                    .unwrap_or(f64::NAN);
                Ok(vec![Item::Num(n)])
            }
            _ => {
                let Some(decl) = self.functions.get(name) else {
                    return Err(EvalError::UnknownFunction(name.to_string()));
                };
                if decl.params.len() != evaluated.len() {
                    return Err(EvalError::Arity(name.to_string()));
                }
                for (param, value) in decl.params.iter().zip(evaluated) {
                    env.push(param, Arc::new(value));
                }
                let result = self.eval(&decl.body, env, ctx);
                for _ in &decl.params {
                    env.pop();
                }
                result
            }
        }
    }

    // ---- constructors ------------------------------------------------------

    fn build_element(
        &self,
        ctor: &'a PlanElement,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> EResult<CElem> {
        let mut attrs = Vec::with_capacity(ctor.attrs.len());
        for (name, parts) in &ctor.attrs {
            let mut value = String::new();
            for part in parts {
                match part {
                    PlanAttrPart::Lit(s) => value.push_str(s),
                    PlanAttrPart::Expr(e) => {
                        let seq = self.eval(e, env, ctx)?;
                        // AVT: items joined with single spaces.
                        for (i, item) in seq.iter().enumerate() {
                            if i > 0 {
                                value.push(' ');
                            }
                            value.push_str(&atomize(self.store, item));
                        }
                    }
                }
            }
            attrs.push((name.clone(), value));
        }
        let mut children = Vec::new();
        for content in &ctor.content {
            match content {
                PlanContent::Text(t) => children.push(Item::str(t)),
                PlanContent::Expr(e) => children.extend(self.eval(e, env, ctx)?),
                PlanContent::Element(nested) => {
                    children.push(Item::Elem(Arc::new(self.build_element(nested, env, ctx)?)));
                }
            }
        }
        Ok(CElem {
            tag: ctor.tag.clone(),
            attrs,
            children,
        })
    }

    fn general_compare(&self, op: CmpOp, l: &[Item], r: &[Item]) -> bool {
        for a in l {
            let sa = atomize(self.store, a);
            let ta = sa.trim();
            let na = ta.parse::<f64>().ok();
            for b in r {
                let sb = atomize(self.store, b);
                let tb = sb.trim();
                // Both branches compare the *trimmed* values: the numeric
                // path already parsed from trimmed text, so the string
                // fallback must trim too, or whitespace-padded text nodes
                // would fail equality against their trimmed value.
                let matched = match (na, tb.parse::<f64>().ok()) {
                    (Some(x), Some(y)) => compare_ord(op, x.partial_cmp(&y)),
                    _ => compare_ord(op, Some(ta.cmp(tb))),
                };
                if matched {
                    return true;
                }
            }
        }
        false
    }
}

/// XQuery order key: numeric when the value parses, else string.
pub(crate) struct OrderKey {
    text: String,
    num: Option<f64>,
}

pub(crate) fn compare_keys(a: Option<&OrderKey>, b: Option<&OrderKey>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less, // empty least
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => match (x.num, y.num) {
            (Some(nx), Some(ny)) => nx.total_cmp(&ny),
            _ => x.text.cmp(&y.text),
        },
    }
}

fn compare_ord(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    match ord {
        None => false,
        Some(o) => match op {
            CmpOp::Eq => o == Equal,
            CmpOp::Ne => o != Equal,
            CmpOp::Lt => o == Less,
            CmpOp::Le => o != Greater,
            CmpOp::Gt => o == Greater,
            CmpOp::Ge => o != Less,
        },
    }
}

fn node_order(a: &Item, b: &Item) -> std::cmp::Ordering {
    match (a, b) {
        (Item::Node(x), Item::Node(y)) => x.cmp(y),
        _ => std::cmp::Ordering::Equal,
    }
}

fn collect_descendant_text(store: &dyn XmlStore, n: Node, out: &mut Sequence) {
    for c in store.children_iter(n) {
        if store.is_text_node(c) {
            out.push(Item::Node(c));
        } else {
            collect_descendant_text(store, c, out);
        }
    }
}

/// Effective boolean value.
pub fn ebv(seq: &[Item]) -> bool {
    match seq.first() {
        None => false,
        Some(Item::Bool(b)) => *b && seq.len() == 1 || seq.len() > 1,
        Some(Item::Num(n)) if seq.len() == 1 => *n != 0.0 && !n.is_nan(),
        Some(Item::Str(s)) if seq.len() == 1 => !s.is_empty(),
        Some(_) => true,
    }
}

fn singleton_number(store: &dyn XmlStore, seq: &[Item]) -> Option<f64> {
    match seq {
        [item] => number(store, item),
        _ => None,
    }
}

fn join_atomized(store: &dyn XmlStore, seq: &[Item]) -> String {
    let mut out = String::new();
    for (i, item) in seq.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&atomize(store, item));
    }
    out
}

/// Approximate resident bytes of a join index, for the store's index
/// accounting (keys, entry overhead, and per-posting item slots).
fn join_index_bytes(map: &JoinIndex) -> usize {
    map.iter()
        .map(|(k, v)| k.capacity() + 48 + v.len() * 48)
        .sum()
}

/// Canonical hash-join key, aligned with the general comparison the
/// nested-loop specification evaluates: numeric values normalize ("40"
/// and "40.0" join, "-0" joins "0"), non-numeric values compare
/// *trimmed* exactly like the string fallback. `None` for NaN — NaN
/// equals nothing, so a NaN key must never enter or probe a join index.
fn canonical_key(s: &str) -> Option<String> {
    match s.trim().parse::<f64>() {
        Ok(n) if n.is_nan() => None,
        Ok(n) => Some(crate::result::format_number(if n == 0.0 { 0.0 } else { n })),
        Err(_) => Some(s.trim().to_string()),
    }
}

fn expect_arity(name: &str, args: &[Sequence], n: usize) -> EResult<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(EvalError::Arity(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, execute};
    use crate::result::serialize_sequence;
    use xmark_store::NaiveStore;

    const DOC: &str = r#"<site><regions><europe><item id="item0"><name>gold ring</name><description><text>pure gold</text></description></item><item id="item1"><name>cup</name><description><text>plain tin</text></description></item></europe></regions><people><person id="person0"><name>Alice</name><profile income="95000.00"><age>30</age></profile></person><person id="person1"><name>Bob</name><homepage>http://b</homepage></person></people><open_auctions><open_auction id="open_auction0"><initial>10.00</initial><bidder><personref person="person0"/><increase>5.00</increase></bidder><bidder><personref person="person1"/><increase>20.00</increase></bidder><current>35.00</current></open_auction></open_auctions></site>"#;

    fn run(q: &str) -> String {
        let store = NaiveStore::load(DOC).unwrap();
        let compiled = compile(q, &store).unwrap();
        let result = execute(&compiled, &store).unwrap();
        serialize_sequence(&store, &result)
    }

    fn run_err(q: &str) -> EvalError {
        let store = NaiveStore::load(DOC).unwrap();
        let compiled = compile(q, &store).unwrap();
        execute(&compiled, &store).unwrap_err()
    }

    #[test]
    fn q1_shape_exact_match() {
        let out = run(
            r#"for $b in document("x")/site/people/person[@id = "person0"] return $b/name/text()"#,
        );
        assert_eq!(out, "Alice");
    }

    #[test]
    fn positional_access() {
        let out = run(
            r#"for $b in /site/open_auctions/open_auction return <i>{$b/bidder[1]/increase/text()}</i>"#,
        );
        assert_eq!(out, "<i>5.00</i>");
        let out = run(
            r#"for $b in /site/open_auctions/open_auction return <i>{$b/bidder[last()]/increase/text()}</i>"#,
        );
        assert_eq!(out, "<i>20.00</i>");
    }

    #[test]
    fn where_with_arithmetic() {
        let out = run(
            r#"for $b in /site/open_auctions/open_auction where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text() return <hit/>"#,
        );
        assert_eq!(out, "<hit/>");
    }

    #[test]
    fn descendant_counting() {
        assert_eq!(run("count(/site//item)"), "2");
        assert_eq!(run("count(/site//nothing)"), "0");
        assert_eq!(
            run("for $p in /site return count($p//item) + count($p//person)"),
            "4"
        );
    }

    #[test]
    fn contains_fulltext() {
        let out = run(
            r#"for $i in /site//item where contains(string($i/description), "gold") return $i/name/text()"#,
        );
        assert_eq!(out, "gold ring");
    }

    #[test]
    fn missing_elements() {
        let out = run(
            r#"for $p in /site/people/person where empty($p/homepage/text()) return <person name="{$p/name/text()}"/>"#,
        );
        assert_eq!(out, r#"<person name="Alice"/>"#);
    }

    #[test]
    fn join_on_values() {
        let out = run(
            r#"for $p in /site/people/person let $a := for $t in /site/open_auctions/open_auction/bidder/personref where $t/@person = $p/@id return $t return <n name="{$p/name/text()}">{count($a)}</n>"#,
        );
        assert_eq!(out, "<n name=\"Alice\">1</n>\n<n name=\"Bob\">1</n>");
    }

    #[test]
    fn order_by_sorts() {
        let out =
            run(r#"for $i in /site//item order by zero-or-one($i/name) return $i/name/text()"#);
        assert_eq!(out, "cup\ngold ring");
        let out = run(
            r#"for $i in /site//item order by zero-or-one($i/name) descending return $i/name/text()"#,
        );
        assert_eq!(out, "gold ring\ncup");
    }

    #[test]
    fn quantified_before() {
        let out = run(
            r#"for $b in /site/open_auctions/open_auction where some $x in $b/bidder/personref[@person = "person0"], $y in $b/bidder/personref[@person = "person1"] satisfies $x << $y return <yes/>"#,
        );
        assert_eq!(out, "<yes/>");
        let out = run(
            r#"for $b in /site/open_auctions/open_auction where some $x in $b/bidder/personref[@person = "person1"], $y in $b/bidder/personref[@person = "person0"] satisfies $x << $y return <yes/>"#,
        );
        assert_eq!(out, "");
    }

    #[test]
    fn udf_application() {
        let out = run(
            "declare function local:convert($v) { 2.20371 * $v }; for $i in /site/open_auctions/open_auction return local:convert(zero-or-one($i/initial/text()))",
        );
        let value: f64 = out.parse().unwrap();
        assert!((value - 22.0371).abs() < 1e-9);
    }

    #[test]
    fn predicate_on_attributes_numeric() {
        assert_eq!(
            run(r#"count(/site/people/person/profile[@income >= 90000])"#),
            "1"
        );
        assert_eq!(
            run(r#"count(/site/people/person/profile[@income < 90000])"#),
            "0"
        );
    }

    #[test]
    fn distinct_values_dedups() {
        let out = run(
            r#"for $x in distinct-values(/site/open_auctions/open_auction/bidder/personref/@person) return <p>{$x}</p>"#,
        );
        assert_eq!(out, "<p>person0</p>\n<p>person1</p>");
    }

    #[test]
    fn reconstruction_copies_subtrees() {
        let out = run(
            r#"for $i in /site/regions/europe/item[@id = "item1"] return <item name="{$i/name/text()}">{$i/description}</item>"#,
        );
        assert_eq!(
            out,
            r#"<item name="cup"><description><text>plain tin</text></description></item>"#
        );
    }

    #[test]
    fn arithmetic_with_empty_is_empty() {
        assert_eq!(
            run("count(2 * /site/people/person[@id = \"ghost\"]/name)"),
            "0"
        );
    }

    #[test]
    fn sum_and_number_functions() {
        assert_eq!(
            run("sum(/site/open_auctions/open_auction/bidder/increase)"),
            "25"
        );
        assert_eq!(run("sum(())"), "0");
        assert_eq!(
            run("number(/site/open_auctions/open_auction/initial)"),
            "10"
        );
    }

    #[test]
    fn number_of_unparseable_is_nan() {
        // XQuery: number("x") is NaN, not the empty sequence.
        assert_eq!(run("number(/site/people/person/name)"), "NaN");
        assert_eq!(run("count(number(/site/people/person/name))"), "1");
        // The empty sequence coerces to NaN too.
        assert_eq!(run("number(/site/ghosts)"), "NaN");
        // NaN formats canonically and compares unequal to everything,
        // including itself.
        assert_eq!(crate::result::format_number(f64::NAN), "NaN");
        assert_eq!(
            run("number(/site/people/person/name) = number(/site/people/person/name)"),
            "false"
        );
        assert_eq!(run("number(/site/ghosts) = 0"), "false");
        assert_eq!(run("number(/site/ghosts) < 0"), "false");
    }

    #[test]
    fn general_compare_trims_both_paths() {
        // Whitespace-padded text nodes equal their trimmed value in both
        // the numeric branch and the string fallback (which used to
        // compare untrimmed).
        let doc = r#"<a><n>  42  </n><s>  gold  </s></a>"#;
        let store = NaiveStore::load(doc).unwrap();
        for (q, expected) in [
            (r#"/a/n = "42""#, "true"),
            (r#"/a/n = 42"#, "true"),
            (r#"/a/s = "gold""#, "true"),
            (r#"/a/s = "  gold  ""#, "true"),
            (r#"/a/s = "silver""#, "false"),
            (r#"/a/s < "halt""#, "true"),
        ] {
            let compiled = compile(q, &store).unwrap();
            let result = execute(&compiled, &store).unwrap();
            assert_eq!(serialize_sequence(&store, &result), expected, "query {q}");
        }
    }

    #[test]
    fn unsupported_attribute_steps_are_named() {
        for (q, step) in [
            ("/site/people/person/@*", "@*"),
            ("/site/people/person/@text()", "@text()"),
        ] {
            match run_err(q) {
                EvalError::UnsupportedStep(s) => {
                    assert_eq!(s, step);
                    assert!(
                        EvalError::UnsupportedStep(s).to_string().contains(step),
                        "message names the step"
                    );
                }
                other => panic!("expected UnsupportedStep for {q}, got {other:?}"),
            }
        }
    }

    #[test]
    fn exists_and_not() {
        assert_eq!(run("exists(/site/people/person)"), "true");
        assert_eq!(run("exists(/site/ghosts)"), "false");
        assert_eq!(run("not(empty(/site/people/person))"), "true");
    }

    #[test]
    fn short_circuits_skip_errors_in_unpulled_tails() {
        // Short-circuiting means an error in the never-pulled tail of an
        // existence check is not raised (XQuery allows this: errors need
        // not surface from unevaluated subexpressions). The eager
        // contract still reports it.
        assert_eq!(run("exists((/site/people/person, $undefined))"), "true");
        assert_eq!(run("empty((/site/people/person, $undefined))"), "false");
        assert!(matches!(
            run_err("(/site/people/person, $undefined)"),
            EvalError::UndefinedVariable(_)
        ));
        // An empty head cannot satisfy the check, so the tail is pulled
        // and its error does surface.
        assert!(matches!(
            run_err("exists((/site/nosuch, $undefined))"),
            EvalError::UndefinedVariable(_)
        ));
    }

    #[test]
    fn exists_and_empty_reject_wrong_arity() {
        // The streaming fast path only fires for the unary form; wrong
        // arities still fall through to the arity check.
        assert!(matches!(run_err("exists(1, 2)"), EvalError::Arity(_)));
        assert!(matches!(run_err("empty(1, 2)"), EvalError::Arity(_)));
    }

    #[test]
    fn data_atomizes_attributes() {
        assert_eq!(run("data(/site/people/person/profile/@income)"), "95000.00");
    }

    #[test]
    fn zero_or_one_rejects_long_sequences() {
        assert!(matches!(
            run_err("zero-or-one(/site/people/person)"),
            EvalError::Cardinality("zero-or-one")
        ));
    }

    #[test]
    fn wrong_arity_is_reported() {
        assert!(matches!(run_err("count(1, 2)"), EvalError::Arity(_)));
    }

    #[test]
    fn wildcard_and_descendant_text_steps() {
        assert_eq!(
            run("count(/site/regions/europe/item[@id = \"item0\"]/*)"),
            "2"
        );
        let out = run(r#"for $t in /site/regions/europe/item[@id = "item0"]//text() return $t"#);
        assert_eq!(out, "gold ring\npure gold");
    }

    #[test]
    fn positional_predicates_on_wildcard_steps_are_per_context() {
        // Two persons, so `person/*[1]` is the *first child of each*, not
        // the first node of the merged output (a former bug: predicates
        // drained the accumulated output across context nodes).
        assert_eq!(run("count(/site/people/person)"), "2");
        assert_eq!(run("count(/site/people/person/*[1])"), "2");
        let out = run(r#"for $n in /site/people/person/*[1] return $n/text()"#);
        assert_eq!(out, "Alice\nBob");
        // Same per-context rule on text() steps.
        assert_eq!(run("count(/site/people/person/name/text()[1])"), "2");
    }

    #[test]
    fn or_expressions_shortcircuit() {
        assert_eq!(
            run(
                r#"count(for $p in /site/people/person where $p/@id = "person0" or $p/homepage return $p)"#
            ),
            "2"
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            run_err("$undefined"),
            EvalError::UndefinedVariable(_)
        ));
        assert!(matches!(
            run_err("nosuchfn(1)"),
            EvalError::UnknownFunction(_)
        ));
    }
}
