//! `EXPLAIN`: stable, one-line-per-operator plan rendering.
//!
//! [`explain_plan`] prints a [`PhysicalPlan`] as an indented operator
//! tree, output-first (Project at the top, scans at the leaves), with two
//! spaces per level. Scalar expressions are rendered inline in a compact
//! XQuery-ish form (truncated past a fixed width so the output stays
//! line-oriented); operator-bearing sub-expressions nested inside scalar
//! positions (a FLWOR under `count(…)`, say) are rendered as indented
//! children.
//!
//! The rendering is deterministic for a given (query, backend) pair —
//! plan-snapshot golden tests pin it so any planner change is visible in
//! review. Annotations carry the per-backend decisions, and appear
//! wherever a path does (operator lines *and* paths inline in scalar
//! positions), so every access-path choice is visible:
//!
//! * `~N` — the planner's cardinality estimate (omitted when unknown),
//! * `[memo]` — loop-invariant path, materialized once per execution,
//! * `->id("x")` — ID-index probe for that step,
//! * `->idx` — IndexScan: the step streams off the shared element-name
//!   index's posting list instead of walking descendants,
//! * `->pos(1)` / `->pos(last)` — positional-index probe for that step,
//! * `->inlined("tag")` — entity-column read for a `tag/text()` tail,
//! * `->vals("tag")` — a `tag/text()` tail answered from the shared typed
//!   child-value index,
//! * `[summary]` — Aggregate answered by summary/extent arithmetic,
//! * `[idx]` — Aggregate answered by a posting-range length of the shared
//!   element-name index,
//! * `[batch=N]` — vectorized operator: full drains pull `N`-item blocks
//!   through a native block cursor (PathScans whose final expansion
//!   block-copies off the store's axis encodings; HashJoins probing in
//!   `N`-item runs). The plan verifier's V10 invariant pins the
//!   annotation to exactly the supporting shapes.

use crate::ast::{ArithOp, Axis, CmpOp, NodeTest};
use crate::plan::*;

/// Maximum width of an inline scalar rendering before truncation.
const INLINE_WIDTH: usize = 96;

/// Render a whole plan, functions first, one line per operator. The
/// leading `Shard` line carries the scatter-gather classification
/// ([`crate::plan::shard_mode`]): `parallel merge=<op>` names the merge
/// operator reassembling per-shard results, `gather` marks plans that
/// run once on the union view.
pub fn explain_plan(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    out.push_str(&format!("Shard {}\n", plan.shard));
    for f in &plan.functions {
        out.push_str(&format!(
            "Function {}({})\n",
            f.name,
            f.params
                .iter()
                .map(|p| format!("${p}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        render_operator_or_eval(&f.body, 1, &mut out);
    }
    render_operator_or_eval(&plan.body, 0, &mut out);
    out
}

fn line(indent: usize, text: String, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str(&text);
    out.push('\n');
}

/// Render `expr` as an operator subtree; scalar roots get an `Eval` line
/// with their operator children beneath.
fn render_operator_or_eval(expr: &PlanExpr, indent: usize, out: &mut String) {
    match expr {
        PlanExpr::Flwor(_) | PlanExpr::Path(_) | PlanExpr::Aggregate(_) => {
            render_operator(expr, indent, out)
        }
        other => {
            line(indent, format!("Eval {}", inline(other)), out);
            render_children(other, indent + 1, out);
        }
    }
}

/// Render an operator node (Flwor / Path / Aggregate).
fn render_operator(expr: &PlanExpr, indent: usize, out: &mut String) {
    match expr {
        PlanExpr::Flwor(f) => render_flwor(f, indent, out),
        PlanExpr::Path(p) => line(indent, path_line(p), out),
        PlanExpr::Aggregate(a) => {
            let mut text = format!("Aggregate count(//{})", a.tag);
            if a.est_rows > 0 {
                text.push_str(&format!(" ~{}", a.est_rows));
            }
            if a.summary {
                text.push_str(" [summary]");
            } else if a.indexed {
                text.push_str(" [idx]");
            }
            line(indent, text, out);
            line(indent + 1, path_line(&a.input), out);
        }
        other => render_operator_or_eval(other, indent, out),
    }
}

fn render_flwor(f: &FlworPlan, indent: usize, out: &mut String) {
    line(indent, format!("Project {}", inline(&f.ret)), out);
    let mut indent = indent + 1;
    render_children(&f.ret, indent, out);
    if let Some((key, ascending)) = &f.order_by {
        line(
            indent,
            format!(
                "Sort {} {}",
                inline(key),
                if *ascending {
                    "ascending"
                } else {
                    "descending"
                }
            ),
            out,
        );
        indent += 1;
    }
    match &f.strategy {
        Strategy::NestedLoop { clauses, filters } => {
            line(indent, "NestedLoop".to_string(), out);
            let indent = indent + 1;
            // Execution order: filters scheduled at depth d run after d
            // clauses are bound, before clause d itself binds.
            for (depth, scheduled) in filters.iter().enumerate() {
                for filter in scheduled {
                    line(indent, format!("Filter@{depth} {}", inline(filter)), out);
                }
                if depth < clauses.len() {
                    render_clause(&clauses[depth], indent, out);
                }
            }
        }
        Strategy::HashJoin {
            probe_var,
            probe_src,
            probe_key,
            build_var,
            build_src,
            build_key,
            build_sig,
            hoisted,
            residual,
            est_probe,
            est_build,
            batch,
            ..
        } => {
            let batch = batch.map(|n| format!(" [batch={n}]")).unwrap_or_default();
            line(
                indent,
                format!(
                    "HashJoin {} = {}{}{batch}",
                    inline(probe_key),
                    inline(build_key),
                    cost_suffix(*est_probe, *est_build)
                ),
                out,
            );
            let indent = indent + 1;
            render_source(&format!("probe ${probe_var}"), probe_src, indent, out);
            render_source(
                &format!(
                    "build ${build_var}{}",
                    if build_sig.is_some() { " [memo]" } else { "" }
                ),
                build_src,
                indent,
                out,
            );
            for h in hoisted {
                line(
                    indent,
                    format!(
                        "Filter@probe {} = {}{}",
                        inline(&h.probe_key),
                        inline(&h.outer),
                        if h.sig.is_some() { " [memo]" } else { "" }
                    ),
                    out,
                );
            }
            for r in residual {
                line(indent, format!("Filter {}", inline(r)), out);
            }
        }
        Strategy::IndexLookup {
            var,
            source,
            inner_key,
            outer_key,
            residual,
            est_build,
            ..
        } => {
            line(
                indent,
                format!(
                    "IndexLookup {} = {}{}",
                    inline(inner_key),
                    inline(outer_key),
                    cost_suffix(*est_build, 0)
                ),
                out,
            );
            let indent = indent + 1;
            render_source(&format!("index ${var} [memo]"), source, indent, out);
            for r in residual {
                line(indent, format!("Filter {}", inline(r)), out);
            }
        }
    }
}

fn cost_suffix(a: u64, b: u64) -> String {
    match (a, b) {
        (0, 0) => String::new(),
        (a, 0) => format!(" ~{a}"),
        (a, b) => format!(" ~{a}x{b}"),
    }
}

fn render_clause(clause: &PlanClause, indent: usize, out: &mut String) {
    let (word, var, src) = match clause {
        PlanClause::For(v, s) => ("For", v, s),
        PlanClause::Let(v, s) => ("Let", v, s),
    };
    render_source(&format!("{word} ${var}"), src, indent, out);
}

/// A binding source: PathScans inline on the binding's own line, other
/// operators as an indented subtree, scalars inline.
fn render_source(label: &str, src: &PlanExpr, indent: usize, out: &mut String) {
    match src {
        PlanExpr::Path(p) => line(indent, format!("{label} in {}", path_line(p)), out),
        PlanExpr::Flwor(_) | PlanExpr::Aggregate(_) => {
            line(indent, format!("{label} in"), out);
            render_operator(src, indent + 1, out);
        }
        other => {
            line(indent, format!("{label} in {}", inline(other)), out);
            render_children(other, indent + 1, out);
        }
    }
}

/// Walk a scalar expression and render any operator-bearing
/// sub-expressions (nested FLWORs, Aggregates) as children. Paths stay
/// inline: scans are only operators in source positions.
fn render_children(expr: &PlanExpr, indent: usize, out: &mut String) {
    match expr {
        PlanExpr::Flwor(_) | PlanExpr::Aggregate(_) => render_operator(expr, indent, out),
        PlanExpr::Sequence(parts) | PlanExpr::Or(parts) | PlanExpr::And(parts) => {
            for p in parts {
                render_children(p, indent, out);
            }
        }
        PlanExpr::Cmp(_, a, b) | PlanExpr::Arith(_, a, b) | PlanExpr::Before(a, b) => {
            render_children(a, indent, out);
            render_children(b, indent, out);
        }
        PlanExpr::Neg(e) => render_children(e, indent, out),
        PlanExpr::Call(_, args) => {
            for a in args {
                render_children(a, indent, out);
            }
        }
        PlanExpr::Some {
            bindings,
            satisfies,
        } => {
            for (_, e) in bindings {
                render_children(e, indent, out);
            }
            render_children(satisfies, indent, out);
        }
        PlanExpr::Element(ctor) => render_ctor_children(ctor, indent, out),
        PlanExpr::Path(p) => {
            if let PlanBase::Expr(e) = &p.base {
                render_children(e, indent, out);
            }
        }
        PlanExpr::Str(_) | PlanExpr::Num(_) | PlanExpr::Empty | PlanExpr::Var(_) => {}
    }
}

fn render_ctor_children(ctor: &PlanElement, indent: usize, out: &mut String) {
    for (_, parts) in &ctor.attrs {
        for p in parts {
            if let PlanAttrPart::Expr(e) = p {
                render_children(e, indent, out);
            }
        }
    }
    for c in &ctor.content {
        match c {
            PlanContent::Expr(e) => render_children(e, indent, out),
            PlanContent::Element(nested) => render_ctor_children(nested, indent, out),
            PlanContent::Text(_) => {}
        }
    }
}

// ---- the PathScan line ---------------------------------------------------

fn path_line(p: &PathPlan) -> String {
    let mut text = format!("PathScan {}", path_inline(p));
    if p.est_rows > 0 {
        text.push_str(&format!(" ~{}", p.est_rows));
    }
    if p.memo.is_some() {
        text.push_str(" [memo]");
    }
    if let Some(n) = p.batch {
        text.push_str(&format!(" [batch={n}]"));
    }
    text
}

/// Base + annotated steps + inlined-tail marker — the shared path
/// rendering for operator lines and inline scalar positions.
fn path_inline(p: &PathPlan) -> String {
    let mut text = match &p.base {
        PlanBase::Root => String::new(),
        PlanBase::Var(v) => format!("${v}"),
        PlanBase::Context => ".".to_string(),
        PlanBase::Expr(e) => format!("({})", inline_untruncated(e)),
    };
    text.push_str(&steps_inline(&p.steps));
    if let Some(tag) = &p.inlined_tail {
        text.push_str(&format!("->inlined({tag:?})"));
    }
    if let Some(tag) = &p.value_tail {
        text.push_str(&format!("->vals({tag:?})"));
    }
    text
}

fn steps_inline(steps: &[PlanStep]) -> String {
    let mut out = String::new();
    for s in steps {
        out.push_str(match s.axis {
            Axis::Child => "/",
            Axis::Descendant => "//",
            Axis::Attribute => "/@",
        });
        match &s.test {
            NodeTest::Tag(t) => out.push_str(t),
            NodeTest::Wildcard => out.push('*'),
            NodeTest::Text => out.push_str("text()"),
        }
        for p in &s.preds {
            match p {
                PlanPred::Position(k) => out.push_str(&format!("[{k}]")),
                PlanPred::Last => out.push_str("[last()]"),
                PlanPred::Expr(e) => out.push_str(&format!("[{}]", inline(e))),
            }
        }
        match &s.access {
            StepAccess::Generic => {}
            StepAccess::IndexScan => out.push_str("->idx"),
            StepAccess::IdProbe(lit) => out.push_str(&format!("->id({lit:?})")),
            StepAccess::Positional(spec) => {
                let rendered = match spec {
                    xmark_store::PositionSpec::First(k) => format!("->pos({k})"),
                    xmark_store::PositionSpec::Last => "->pos(last)".to_string(),
                };
                out.push_str(&rendered);
            }
        }
    }
    out
}

// ---- compact inline rendering of scalar expressions ----------------------

/// Render an expression on one line, truncated to [`INLINE_WIDTH`].
fn inline(expr: &PlanExpr) -> String {
    let mut text = inline_untruncated(expr);
    if text.chars().count() > INLINE_WIDTH {
        text = text.chars().take(INLINE_WIDTH - 1).collect();
        text.push('…');
    }
    text
}

fn inline_untruncated(expr: &PlanExpr) -> String {
    match expr {
        PlanExpr::Str(s) => format!("{s:?}"),
        PlanExpr::Num(n) => crate::result::format_number(*n),
        PlanExpr::Empty => "()".to_string(),
        PlanExpr::Var(v) => format!("${v}"),
        PlanExpr::Sequence(parts) => format!("({})", join_inline(parts, ", ")),
        PlanExpr::Or(parts) => join_inline(parts, " or "),
        PlanExpr::And(parts) => join_inline(parts, " and "),
        PlanExpr::Cmp(op, a, b) => {
            let op = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {op} {}", inline_untruncated(a), inline_untruncated(b))
        }
        PlanExpr::Arith(op, a, b) => {
            let op = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "div",
                ArithOp::Mod => "mod",
            };
            format!("{} {op} {}", inline_untruncated(a), inline_untruncated(b))
        }
        PlanExpr::Neg(e) => format!("-{}", inline_untruncated(e)),
        PlanExpr::Before(a, b) => {
            format!("{} << {}", inline_untruncated(a), inline_untruncated(b))
        }
        PlanExpr::Call(name, args) => format!("{name}({})", join_inline(args, ", ")),
        PlanExpr::Element(ctor) => inline_ctor(ctor),
        PlanExpr::Some {
            bindings,
            satisfies,
        } => {
            let bound = bindings
                .iter()
                .map(|(v, e)| format!("${v} in {}", inline_untruncated(e)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("some {bound} satisfies {}", inline_untruncated(satisfies))
        }
        PlanExpr::Path(p) => path_inline(p),
        PlanExpr::Aggregate(a) => format!("count({}//{})", path_inline(&a.input), a.tag),
        PlanExpr::Flwor(f) => format!("flwor(… return {})", inline_untruncated(&f.ret)),
    }
}

fn join_inline(parts: &[PlanExpr], sep: &str) -> String {
    parts
        .iter()
        .map(inline_untruncated)
        .collect::<Vec<_>>()
        .join(sep)
}

fn inline_ctor(ctor: &PlanElement) -> String {
    let mut out = format!("<{}", ctor.tag);
    for (name, parts) in &ctor.attrs {
        out.push_str(&format!(" {name}=\""));
        for p in parts {
            match p {
                PlanAttrPart::Lit(s) => out.push_str(s),
                PlanAttrPart::Expr(e) => out.push_str(&format!("{{{}}}", inline_untruncated(e))),
            }
        }
        out.push('"');
    }
    if ctor.content.is_empty() {
        out.push_str("/>");
        return out;
    }
    out.push('>');
    for c in &ctor.content {
        match c {
            PlanContent::Text(t) => out.push_str(t.trim()),
            PlanContent::Expr(e) => out.push_str(&format!("{{{}}}", inline_untruncated(e))),
            PlanContent::Element(nested) => out.push_str(&inline_ctor(nested)),
        }
    }
    out.push_str(&format!("</{}>", ctor.tag));
    out
}
