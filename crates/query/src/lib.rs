//! The XQuery-subset compiler, planner and executor for the XMark
//! benchmark.
//!
//! The paper (§6) expresses its twenty queries in XQuery; this crate
//! implements the language subset those queries need as an explicit
//! three-stage pipeline, mirroring the compile/execute split the paper's
//! Table 2 measures:
//!
//! ```text
//!   query text
//!      │  parse            (parse.rs — scannerless recursive descent)
//!      ▼
//!   ast::Query
//!      │  plan + optimize  (planner.rs — rule/cost-based, consumes the
//!      ▼                    store's catalog estimates + capabilities)
//!   plan::PhysicalPlan     (plan.rs — PathScan, IdProbe, Aggregate,
//!      │                    NestedLoop, HashJoin, IndexLookup, Sort,
//!      │  execute           Project; explain.rs renders it)
//!      ▼
//!   result::Sequence       (eval.rs — decision-free plan executor over
//!                           the streaming axis cursors)
//! ```
//!
//! * [`parse`] — parser producing the [`ast`] (FLWOR, paths, constructors,
//!   quantifiers, the `<<` node-order operator, user-defined functions),
//! * [`planner`] — lowers the AST into a [`plan::PhysicalPlan`], making
//!   **every** rewrite decision at compile time: equi-joins become
//!   HashJoin operators, correlated lookups become IndexLookup joins,
//!   where-conjuncts are scheduled by predicate pushdown, and steps are
//!   annotated with the access paths the backend's
//!   [`xmark_store::PlannerCaps`] affords (ID probes, positional indexes,
//!   inlined columns, summary counts). Cardinalities come from
//!   [`xmark_store::XmlStore::estimate_step`], the same catalog touches
//!   Table 2 counts as metadata accesses,
//! * [`explain`] — stable one-line-per-operator plan rendering (pinned by
//!   golden tests so planner regressions are visible in review),
//! * [`eval`] — the executor: operators pull from the backend-neutral
//!   streaming cursors; it contains no pattern-matching and re-discovers
//!   nothing per execution,
//! * [`compile()`] — parse + plan in one call; [`compile::Compiled`] is
//!   the reusable artifact a plan cache stores. [`compile::plan`] exposes
//!   the planning phase alone so harnesses can time parse / plan /
//!   execute as three columns,
//! * [`result`] — the item/sequence model, serialization, and the
//!   canonicalizer used for cross-backend output-equivalence testing.
//!
//! The optimizer oracle compiles every query twice —
//! [`compile::compile_with_mode`] with [`plan::PlanMode::Naive`] yields
//! the pure nested-loop specification — and requires byte-identical
//! output on every backend.
//!
//! # Example
//!
//! ```
//! use xmark_store::NaiveStore;
//! use xmark_query::{run_query, result::serialize_sequence};
//!
//! let store = NaiveStore::load(
//!     r#"<site><people><person id="person0"><name>Ada</name></person></people></site>"#,
//! ).unwrap();
//! let out = run_query(
//!     r#"for $b in document("auction.xml")/site/people/person[@id = "person0"]
//!        return $b/name/text()"#,
//!     &store,
//! ).unwrap();
//! assert_eq!(serialize_sequence(&store, &out), "Ada");
//! ```
//!
//! Inspecting a plan:
//!
//! ```
//! use xmark_store::SummaryStore;
//! use xmark_query::compile;
//!
//! let store = SummaryStore::load("<site><a/><a/></site>").unwrap();
//! let compiled = compile("count(/site//a)", &store).unwrap();
//! assert!(compiled.explain().contains("Aggregate count(//a)"));
//! ```

pub mod ast;
pub mod compile;
pub mod eval;
pub mod explain;
pub mod parse;
pub mod plan;
pub mod planner;
pub mod result;

pub use compile::{
    compile, compile_with_mode, execute, run_query, CompileError, CompileStats, Compiled,
};
pub use eval::{ebv, EvalError, Evaluator};
pub use explain::explain_plan;
pub use parse::{parse_query, ParseError};
pub use plan::{PhysicalPlan, PlanMode};
pub use result::{atomize, canonicalize, serialize_sequence, Item, Sequence};
