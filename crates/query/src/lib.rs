//! The XQuery-subset compiler, planner and executor for the XMark
//! benchmark.
//!
//! The paper (§6) expresses its twenty queries in XQuery; this crate
//! implements the language subset those queries need as an explicit
//! pipeline, mirroring the compile/execute split the paper's Table 2
//! measures — with execution redesigned around **pull-based operator
//! cursors at two granularities**: every cursor answers `next()` one
//! item at a time and `next_batch(out)`, which fills a caller-owned
//! fixed-capacity [`stream::Batch`] in a single virtual dispatch:
//!
//! ```text
//!   query text
//!      │  parse            (parse.rs — scannerless recursive descent)
//!      ▼
//!   ast::Query
//!      │  plan + optimize  (planner.rs — rule/cost-based, consumes the
//!      ▼                    store's catalog estimates + capabilities)
//!   plan::PhysicalPlan     (plan.rs — PathScan, IdProbe, Aggregate,
//!      │                    NestedLoop, HashJoin, IndexLookup, Sort,
//!      │  open cursors      Project; explain.rs renders it)
//!      ▼
//!   stream::ResultStream   (stream.rs — next()/next_batch(out) per
//!      │        │           operator; eval.rs supplies the shared
//!      │        │           step/join/memo mechanics)
//!      │        └─ write_to(sink)   one item serialized at a time into
//!      │                            any fmt::Write (IoSink adapts
//!      │  collect                   io::Write)
//!      ▼
//!   result::Sequence       (execute() ≡ stream().collect_seq())
//! ```
//!
//! **Consumption modes.** [`compile::execute`] materializes the whole
//! sequence (kept as a thin wrapper draining the stream);
//! [`compile::stream`] / [`Compiled::stream`] opens a
//! [`stream::ResultStream`] whose [`take`](stream::ResultStream::take),
//! [`exists`](stream::ResultStream::exists) and
//! [`count`](stream::ResultStream::count) fast paths stop pulling as soon
//! as the answer is known; [`Compiled::write_to`] serializes straight
//! into a sink without ever holding the result. Pipelining operators
//! (path steps, FLWOR clause iteration, join probes, the `return`
//! projection) never buffer; blocking operators (Sort, Aggregate, hash
//! build sides, lookup indexes) buffer internally but still expose a
//! cursor. Boolean contexts short-circuit the same way: an existential
//! predicate like `[bidder]` pulls one child, not the whole axis.
//!
//! **Pull granularities.** Bulk drains
//! ([`collect_seq`](stream::ResultStream::collect_seq), `count`,
//! [`write_to`](stream::ResultStream::write_to)) pull fixed-capacity
//! batches — axis scans fill [`xmark_store::NodeBatch`] blocks straight
//! out of the store, hash joins emit probe runs — while the
//! early-terminating fast paths stay on the item facade, so `take`/
//! `exists` bounds never widen by more than one batch. The planner
//! annotates batch-eligible operators (EXPLAIN shows `[batch=N]`,
//! verifier invariant V10 audits it);
//! [`with_batch_size`](stream::ResultStream::with_batch_size) overrides
//! the capacity and [`pulls`](stream::ResultStream::pulls) counts items
//! delivered identically in both modes. The opt-in `parallel` feature
//! forks hash-join build sides across threads without reordering probe
//! output.
//!
//! * [`parse`] — parser producing the [`ast`] (FLWOR, paths, constructors,
//!   quantifiers, the `<<` node-order operator, user-defined functions),
//! * [`planner`] — lowers the AST into a [`plan::PhysicalPlan`], making
//!   **every** rewrite decision at compile time: equi-joins become
//!   HashJoin operators (with probe-side residual equalities hoisted
//!   into precomputed key filters), correlated lookups become
//!   IndexLookup joins, where-conjuncts are scheduled by predicate
//!   pushdown, and steps are annotated with the access paths the
//!   backend's [`xmark_store::PlannerCaps`] affords (ID probes,
//!   positional indexes, inlined columns, summary counts, and the
//!   shared element index's IndexScan — costed on exact posting
//!   cardinalities, falling back to streamed scans when postings are
//!   dense). Cardinalities come from
//!   [`xmark_store::XmlStore::estimate_step`], the same catalog touches
//!   Table 2 counts as metadata accesses,
//! * [`explain`] — stable one-line-per-operator plan rendering (pinned by
//!   golden tests so planner regressions are visible in review),
//! * [`stream`] — the pull-based operator cursors and the public
//!   [`ResultStream`]; [`eval`] supplies the shared execution mechanics
//!   (step expansion, join build sides, two-level memos) and contains
//!   no pattern-matching — it re-discovers nothing per execution. Join
//!   build sides, lookup indexes, probe-key lists and loop-invariant
//!   path materializations live in the store's persistent
//!   [`xmark_store::IndexManager`] (L2) behind a per-execution memo
//!   (L1): after warmup an execution probes shared structures and
//!   builds nothing,
//! * [`compile()`] — parse + plan in one call; [`compile::Compiled`] is
//!   the reusable artifact a plan cache stores. [`compile::plan`] exposes
//!   the planning phase alone so harnesses can time parse / plan /
//!   execute as three columns,
//! * [`result`] — the item/sequence model, sink-generic serialization
//!   ([`write_sequence`], [`IoSink`]), and the canonicalizer used for
//!   cross-backend output-equivalence testing.
//!
//! The optimizer oracle compiles every query twice —
//! [`compile::compile_with_mode`] with [`plan::PlanMode::Naive`] yields
//! the pure nested-loop specification — and requires byte-identical
//! output on every backend.
//!
//! # Example
//!
//! ```
//! use xmark_store::NaiveStore;
//! use xmark_query::{run_query, result::serialize_sequence};
//!
//! let store = NaiveStore::load(
//!     r#"<site><people><person id="person0"><name>Ada</name></person></people></site>"#,
//! ).unwrap();
//! let out = run_query(
//!     r#"for $b in document("auction.xml")/site/people/person[@id = "person0"]
//!        return $b/name/text()"#,
//!     &store,
//! ).unwrap();
//! assert_eq!(serialize_sequence(&store, &out), "Ada");
//! ```
//!
//! Streaming with early termination — `take`/`exists` stop the operator
//! cursors as soon as the answer is known:
//!
//! ```
//! use xmark_store::NaiveStore;
//! use xmark_query::compile;
//!
//! let store = NaiveStore::load(
//!     "<site><people><person/><person/><person/></people></site>",
//! ).unwrap();
//! let compiled = compile("/site/people/person", &store).unwrap();
//! assert!(compiled.stream(&store).exists().unwrap()); // pulls one item
//! let two = compiled.stream(&store).take(2).unwrap();
//! assert_eq!(two.len(), 2);
//! let mut out = String::new();
//! compiled.write_to(&store, &mut out).unwrap();       // sink serialization
//! assert_eq!(out, "<person/>\n<person/>\n<person/>");
//! ```
//!
//! Inspecting a plan:
//!
//! ```
//! use xmark_store::SummaryStore;
//! use xmark_query::compile;
//!
//! let store = SummaryStore::load("<site><a/><a/></site>").unwrap();
//! let compiled = compile("count(/site//a)", &store).unwrap();
//! assert!(compiled.explain().contains("Aggregate count(//a)"));
//! ```

pub mod ast;
pub mod compile;
pub mod eval;
pub mod explain;
pub mod parse;
pub mod plan;
pub mod planner;
pub mod result;
pub mod scatter;
pub mod stream;
pub mod verify;

pub use compile::{
    compile, compile_with_mode, execute, run_query, stream, CompileError, CompileStats, Compiled,
};
pub use eval::{ebv, EvalError, Evaluator};
pub use explain::explain_plan;
pub use parse::{parse_query, ParseError};
pub use plan::{shard_mode, PhysicalPlan, PlanMode, ShardMode};
pub use scatter::execute_scattered;

pub use result::{
    atomize, canonicalize, serialize_sequence, write_item, write_sequence, IoSink, Item, Sequence,
};
pub use stream::{Batch, ResultStream, StreamStats, WriteError};
pub use verify::{verify_plan, verify_plan_against, Invariant, VerifyReport, Violation};
