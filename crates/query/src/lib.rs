//! The XQuery-subset compiler and evaluator for the XMark benchmark.
//!
//! The paper (§6) expresses its twenty queries in XQuery; this crate
//! implements the language subset those queries need, end to end:
//!
//! * [`parse`] — scannerless recursive-descent parser,
//! * [`ast`] — the expression syntax (FLWOR, paths, constructors,
//!   quantifiers, the `<<` node-order operator, user-defined functions),
//! * [`compile()`] — parsing + per-backend metadata resolution, timed
//!   separately by the harness to regenerate the paper's Table 2,
//! * [`eval`] — the tuple-at-a-time evaluator over the backend-neutral
//!   [`xmark_store::XmlStore`] interface,
//! * [`result`] — the item/sequence model, serialization, and the
//!   canonicalizer used for cross-backend output-equivalence testing.
//!
//! # Example
//!
//! ```
//! use xmark_store::NaiveStore;
//! use xmark_query::{run_query, result::serialize_sequence};
//!
//! let store = NaiveStore::load(
//!     r#"<site><people><person id="person0"><name>Ada</name></person></people></site>"#,
//! ).unwrap();
//! let out = run_query(
//!     r#"for $b in document("auction.xml")/site/people/person[@id = "person0"]
//!        return $b/name/text()"#,
//!     &store,
//! ).unwrap();
//! assert_eq!(serialize_sequence(&store, &out), "Ada");
//! ```

pub mod ast;
pub mod compile;
pub mod eval;
pub mod parse;
pub mod result;

pub use compile::{compile, execute, run_query, CompileError, CompileStats, Compiled};
pub use eval::{ebv, EvalError, Evaluator};
pub use parse::{parse_query, ParseError};
pub use result::{atomize, canonicalize, serialize_sequence, Item, Sequence};
