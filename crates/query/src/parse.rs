//! A scannerless recursive-descent parser for the XQuery subset.
//!
//! Scannerless because XQuery's direct element constructors switch the
//! lexical mode mid-expression (`<item name="{$k}">{$b/location/text()}`
//! mixes XML text, attribute-value templates and nested expressions); with
//! character-level parsing the mode switch is just a different production.

use crate::ast::*;

/// Parse errors, with byte offsets into the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parse a complete query (function declarations + body).
pub fn parse_query(input: &str) -> PResult<Query> {
    let mut p = Parser { input, pos: 0 };
    let mut functions = Vec::new();
    loop {
        p.ws();
        if p.peek_kw("declare") {
            functions.push(p.parse_function_decl()?);
        } else {
            break;
        }
    }
    let body = p.parse_expr()?;
    p.ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input after query body"));
    }
    Ok(Query { functions, body })
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':' | b'.')
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes().get(self.pos + ahead).copied()
    }

    fn ws(&mut self) {
        let b = self.bytes();
        while self.pos < b.len() {
            if b[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            } else if self.input[self.pos..].starts_with("(:") {
                // XQuery comment.
                match self.input[self.pos..].find(":)") {
                    Some(rel) => self.pos += rel + 2,
                    None => {
                        self.pos = b.len();
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Does a keyword (with a word boundary) start here? Does not consume.
    fn peek_kw(&self, kw: &str) -> bool {
        let rest = &self.input[self.pos..];
        rest.starts_with(kw) && !rest[kw.len()..].bytes().next().is_some_and(is_name_char)
    }

    fn eat_kw(&mut self, kw: &str) -> PResult<()> {
        self.ws();
        if self.peek_kw(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    fn eat(&mut self, s: &str) -> PResult<()> {
        self.ws();
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn try_eat(&mut self, s: &str) -> bool {
        self.ws();
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_name(&mut self) -> PResult<String> {
        self.ws();
        let start = self.pos;
        let b = self.bytes();
        if self.pos >= b.len() || !is_name_start(b[self.pos]) {
            return Err(self.err("expected a name"));
        }
        while self.pos < b.len() && is_name_char(b[self.pos]) {
            self.pos += 1;
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_var_name(&mut self) -> PResult<String> {
        self.eat("$")?;
        // No whitespace between `$` and the name.
        let b = self.bytes();
        let start = self.pos;
        if self.pos >= b.len() || !is_name_start(b[self.pos]) {
            return Err(self.err("expected a variable name after `$`"));
        }
        while self.pos < b.len() && is_name_char(b[self.pos]) {
            self.pos += 1;
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_string_literal(&mut self) -> PResult<String> {
        self.ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a string literal")),
        };
        self.pos += 1;
        let start = self.pos;
        let b = self.bytes();
        while self.pos < b.len() && b[self.pos] != quote {
            self.pos += 1;
        }
        if self.pos >= b.len() {
            return Err(self.err("unterminated string literal"));
        }
        let s = self.input[start..self.pos].to_string();
        self.pos += 1;
        Ok(s)
    }

    fn parse_number(&mut self) -> PResult<f64> {
        self.ws();
        let start = self.pos;
        let b = self.bytes();
        while self.pos < b.len() && b[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self.pos < self.bytes().len() && self.bytes()[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|e| self.err(format!("bad numeric literal: {e}")))
    }

    // ---- declarations ----------------------------------------------------

    fn parse_function_decl(&mut self) -> PResult<FunctionDecl> {
        self.eat_kw("declare")?;
        self.eat_kw("function")?;
        let name = self.parse_name()?;
        self.eat("(")?;
        let mut params = Vec::new();
        self.ws();
        if self.peek() != Some(b')') {
            loop {
                params.push(self.parse_var_name()?);
                if !self.try_eat(",") {
                    break;
                }
            }
        }
        self.eat(")")?;
        self.eat("{")?;
        let body = self.parse_expr()?;
        self.eat("}")?;
        self.eat(";")?;
        Ok(FunctionDecl { name, params, body })
    }

    // ---- expressions -------------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        self.ws();
        if self.peek_kw("for") || self.peek_kw("let") {
            return self.parse_flwor();
        }
        if self.peek_kw("some") {
            return self.parse_quantified();
        }
        self.parse_or()
    }

    fn parse_flwor(&mut self) -> PResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            self.ws();
            if self.peek_kw("for") {
                self.eat_kw("for")?;
                loop {
                    let var = self.parse_var_name()?;
                    self.eat_kw("in")?;
                    let expr = self.parse_expr()?;
                    clauses.push(Clause::For(var, expr));
                    if !self.try_eat(",") {
                        break;
                    }
                }
            } else if self.peek_kw("let") {
                self.eat_kw("let")?;
                loop {
                    let var = self.parse_var_name()?;
                    self.eat(":=")?;
                    let expr = self.parse_expr()?;
                    clauses.push(Clause::Let(var, expr));
                    if !self.try_eat(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        self.ws();
        let where_clause = if self.peek_kw("where") {
            self.eat_kw("where")?;
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.ws();
        let order_by = if self.peek_kw("order") {
            self.eat_kw("order")?;
            self.eat_kw("by")?;
            let key = self.parse_or()?;
            self.ws();
            let ascending = if self.peek_kw("descending") {
                self.eat_kw("descending")?;
                false
            } else {
                if self.peek_kw("ascending") {
                    self.eat_kw("ascending")?;
                }
                true
            };
            Some((key, ascending))
        } else {
            None
        };
        self.eat_kw("return")?;
        let ret = self.parse_expr()?;
        Ok(Expr::Flwor(Box::new(Flwor {
            clauses,
            where_clause,
            order_by,
            ret,
        })))
    }

    fn parse_quantified(&mut self) -> PResult<Expr> {
        self.eat_kw("some")?;
        let mut bindings = Vec::new();
        loop {
            let var = self.parse_var_name()?;
            self.eat_kw("in")?;
            // Bindings bind tighter than `satisfies`.
            let expr = self.parse_or()?;
            bindings.push((var, expr));
            if !self.try_eat(",") {
                break;
            }
        }
        self.eat_kw("satisfies")?;
        let satisfies = self.parse_expr()?;
        Ok(Expr::Some {
            bindings,
            satisfies: Box::new(satisfies),
        })
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let first = self.parse_and()?;
        let mut parts = vec![first];
        loop {
            self.ws();
            if self.peek_kw("or") {
                self.eat_kw("or")?;
                parts.push(self.parse_and()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Expr::Or(parts)
        })
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let first = self.parse_cmp()?;
        let mut parts = vec![first];
        loop {
            self.ws();
            if self.peek_kw("and") {
                self.eat_kw("and")?;
                parts.push(self.parse_cmp()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Expr::And(parts)
        })
    }

    fn parse_cmp(&mut self) -> PResult<Expr> {
        let lhs = self.parse_add()?;
        self.ws();
        let rest = &self.input[self.pos..];
        let (op, len) = if rest.starts_with("<<") {
            let rhs_start = self.pos + 2;
            self.pos = rhs_start;
            let rhs = self.parse_add()?;
            return Ok(Expr::Before(Box::new(lhs), Box::new(rhs)));
        } else if rest.starts_with("<=") {
            (CmpOp::Le, 2)
        } else if rest.starts_with(">=") {
            (CmpOp::Ge, 2)
        } else if rest.starts_with("!=") {
            (CmpOp::Ne, 2)
        } else if rest.starts_with('<') {
            (CmpOp::Lt, 1)
        } else if rest.starts_with('>') {
            (CmpOp::Gt, 1)
        } else if rest.starts_with('=') {
            (CmpOp::Eq, 1)
        } else {
            return Ok(lhs);
        };
        self.pos += len;
        let rhs = self.parse_add()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            self.ws();
            let op = match self.peek() {
                Some(b'+') => ArithOp::Add,
                Some(b'-') => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            self.ws();
            let op = if self.peek() == Some(b'*') {
                self.pos += 1;
                ArithOp::Mul
            } else if self.peek_kw("div") {
                self.eat_kw("div")?;
                ArithOp::Div
            } else if self.peek_kw("mod") {
                self.eat_kw("mod")?;
                ArithOp::Mod
            } else {
                break;
            };
            let rhs = self.parse_unary()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        self.ws();
        if self.peek() == Some(b'-') {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.parse_path_expr()
    }

    /// A primary expression possibly extended with `/step` navigation.
    fn parse_path_expr(&mut self) -> PResult<Expr> {
        self.ws();
        // Rooted path.
        if self.peek() == Some(b'/') {
            let steps = self.parse_steps()?;
            return Ok(Expr::Path {
                base: PathBase::Root,
                steps,
            });
        }
        let primary = self.parse_primary()?;
        self.ws();
        if self.peek() == Some(b'/') {
            let steps = self.parse_steps()?;
            let base = match primary {
                Expr::Var(name) => PathBase::Var(name),
                Expr::Path {
                    base,
                    steps: existing,
                } if existing.is_empty() => base,
                Expr::Path {
                    base,
                    steps: mut existing,
                } => {
                    existing.extend(steps);
                    return Ok(Expr::Path {
                        base,
                        steps: existing,
                    });
                }
                other => PathBase::Expr(Box::new(other)),
            };
            return Ok(Expr::Path { base, steps });
        }
        Ok(primary)
    }

    /// Parse one or more `/step` / `//step` sequences.
    fn parse_steps(&mut self) -> PResult<Vec<Step>> {
        let mut steps = Vec::new();
        loop {
            self.ws();
            if self.peek() != Some(b'/') {
                break;
            }
            self.pos += 1;
            let axis = if self.peek() == Some(b'/') {
                self.pos += 1;
                Axis::Descendant
            } else {
                Axis::Child
            };
            steps.push(self.parse_step(axis)?);
        }
        Ok(steps)
    }

    fn parse_step(&mut self, axis: Axis) -> PResult<Step> {
        self.ws();
        let (axis, test) = match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                if self.peek() == Some(b'*') {
                    self.pos += 1;
                    (Axis::Attribute, NodeTest::Wildcard)
                } else {
                    let name = self.parse_name()?;
                    if name == "text" && self.try_eat("(") {
                        self.eat(")")?;
                        (Axis::Attribute, NodeTest::Text)
                    } else {
                        (Axis::Attribute, NodeTest::Tag(name))
                    }
                }
            }
            Some(b'*') => {
                self.pos += 1;
                (axis, NodeTest::Wildcard)
            }
            _ => {
                let name = self.parse_name()?;
                if name == "text" && self.try_eat("(") {
                    self.eat(")")?;
                    (axis, NodeTest::Text)
                } else {
                    (axis, NodeTest::Tag(name))
                }
            }
        };
        let mut preds = Vec::new();
        loop {
            self.ws();
            if self.peek() != Some(b'[') {
                break;
            }
            self.pos += 1;
            preds.push(self.parse_predicate()?);
            self.eat("]")?;
        }
        Ok(Step { axis, test, preds })
    }

    fn parse_predicate(&mut self) -> PResult<Pred> {
        self.ws();
        // `[3]` and `[last()]` get dedicated forms so backends can use
        // positional indexes (paper Q2/Q3).
        let snapshot = self.pos;
        if self.peek().is_some_and(|b| b.is_ascii_digit()) {
            let n = self.parse_number()?;
            self.ws();
            if self.peek() == Some(b']') && n.fract() == 0.0 && n >= 1.0 {
                return Ok(Pred::Position(n as usize));
            }
            self.pos = snapshot;
        }
        if self.peek_kw("last") {
            let before = self.pos;
            let _ = self.parse_name();
            if self.try_eat("(") && self.try_eat(")") {
                self.ws();
                if self.peek() == Some(b']') {
                    return Ok(Pred::Last);
                }
            }
            self.pos = before;
        }
        Ok(Pred::Expr(self.parse_expr()?))
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        self.ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                self.ws();
                if self.peek() == Some(b')') {
                    self.pos += 1;
                    return Ok(Expr::Empty);
                }
                let mut parts = vec![self.parse_expr()?];
                while self.try_eat(",") {
                    parts.push(self.parse_expr()?);
                }
                self.eat(")")?;
                Ok(if parts.len() == 1 {
                    parts.pop().expect("one element")
                } else {
                    Expr::Sequence(parts)
                })
            }
            Some(b'"' | b'\'') => Ok(Expr::Str(self.parse_string_literal()?)),
            Some(b) if b.is_ascii_digit() => Ok(Expr::Num(self.parse_number()?)),
            Some(b'$') => {
                let name = self.parse_var_name()?;
                Ok(Expr::Var(name))
            }
            Some(b'<') => {
                let ctor = self.parse_element_ctor()?;
                Ok(Expr::Element(Box::new(ctor)))
            }
            Some(b'@') => {
                // Relative attribute path: `[@id = "person0"]`.
                self.pos += 1;
                let name = self.parse_name()?;
                Ok(Expr::Path {
                    base: PathBase::Context,
                    steps: vec![Step {
                        axis: Axis::Attribute,
                        test: NodeTest::Tag(name),
                        preds: Vec::new(),
                    }],
                })
            }
            Some(b) if is_name_start(b) => {
                let name = self.parse_name()?;
                self.ws();
                if self.peek() == Some(b'(') {
                    // Function call — `document("…")` resolves to the root.
                    self.pos += 1;
                    let mut args = Vec::new();
                    self.ws();
                    if self.peek() != Some(b')') {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.try_eat(",") {
                                break;
                            }
                        }
                    }
                    self.eat(")")?;
                    if name == "document" || name == "doc" || name == "fn:doc" {
                        return Ok(Expr::Path {
                            base: PathBase::Root,
                            steps: Vec::new(),
                        });
                    }
                    let canonical = name.strip_prefix("fn:").unwrap_or(&name).to_string();
                    Ok(Expr::Call(canonical, args))
                } else {
                    // Relative child path: `price > 40` inside a predicate,
                    // or Q19's original `site/regions//item`.
                    let mut preds = Vec::new();
                    loop {
                        self.ws();
                        if self.peek() != Some(b'[') {
                            break;
                        }
                        self.pos += 1;
                        preds.push(self.parse_predicate()?);
                        self.eat("]")?;
                    }
                    let first = if name == "text" {
                        // Not reachable for `text()` (handled as a call),
                        // but a plain `text` child test is legal.
                        Step {
                            axis: Axis::Child,
                            test: NodeTest::Tag(name),
                            preds,
                        }
                    } else {
                        Step {
                            axis: Axis::Child,
                            test: NodeTest::Tag(name),
                            preds,
                        }
                    };
                    Ok(Expr::Path {
                        base: PathBase::Context,
                        steps: vec![first],
                    })
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }

    // ---- element constructors --------------------------------------------

    fn parse_element_ctor(&mut self) -> PResult<ElementCtor> {
        self.eat("<")?;
        // No whitespace skipping: `<` must be directly followed by the tag.
        let tag = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.ws();
            match self.peek() {
                Some(b'/') => {
                    self.eat("/>")?;
                    return Ok(ElementCtor {
                        tag,
                        attrs,
                        content: Vec::new(),
                    });
                }
                Some(b'>') => {
                    self.pos += 1;
                    let content = self.parse_ctor_content(&tag)?;
                    return Ok(ElementCtor {
                        tag,
                        attrs,
                        content,
                    });
                }
                Some(b) if is_name_start(b) => {
                    let attr_name = self.parse_name()?;
                    self.eat("=")?;
                    self.ws();
                    let parts = self.parse_attr_value_template()?;
                    attrs.push((attr_name, parts));
                }
                _ => return Err(self.err("malformed element constructor")),
            }
        }
    }

    fn parse_attr_value_template(&mut self) -> PResult<Vec<AttrPart>> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        self.pos += 1;
        let mut parts = Vec::new();
        let mut lit = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'{') => {
                    if !lit.is_empty() {
                        parts.push(AttrPart::Lit(std::mem::take(&mut lit)));
                    }
                    self.pos += 1;
                    let expr = self.parse_expr()?;
                    self.eat("}")?;
                    parts.push(AttrPart::Expr(expr));
                }
                Some(c) => {
                    lit.push(c as char);
                    self.pos += 1;
                }
            }
        }
        if !lit.is_empty() {
            parts.push(AttrPart::Lit(lit));
        }
        Ok(parts)
    }

    fn parse_ctor_content(&mut self, open_tag: &str) -> PResult<Vec<Content>> {
        let mut content = Vec::new();
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated <{open_tag}> constructor"))),
                Some(b'<') => {
                    if !text.trim().is_empty() {
                        content.push(Content::Text(std::mem::take(&mut text)));
                    } else {
                        text.clear();
                    }
                    if self.peek_at(1) == Some(b'/') {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        if close != open_tag {
                            return Err(self.err(format!(
                                "mismatched constructor: <{open_tag}> closed by </{close}>"
                            )));
                        }
                        self.eat(">")?;
                        return Ok(content);
                    }
                    let nested = self.parse_element_ctor()?;
                    content.push(Content::Element(nested));
                }
                Some(b'{') => {
                    if !text.trim().is_empty() {
                        content.push(Content::Text(std::mem::take(&mut text)));
                    } else {
                        text.clear();
                    }
                    self.pos += 1;
                    let mut parts = vec![self.parse_expr()?];
                    while self.try_eat(",") {
                        parts.push(self.parse_expr()?);
                    }
                    self.eat("}")?;
                    let expr = if parts.len() == 1 {
                        parts.pop().expect("one element")
                    } else {
                        Expr::Sequence(parts)
                    };
                    content.push(Content::Expr(expr));
                }
                Some(c) => {
                    text.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Query {
        parse_query(s).unwrap_or_else(|e| panic!("{e}\nquery: {s}"))
    }

    #[test]
    fn parses_q1_shape() {
        let q = parse(
            r#"for $b in document("auction.xml")/site/people/person[@id = "person0"] return $b/name/text()"#,
        );
        let Expr::Flwor(f) = &q.body else {
            panic!("expected FLWOR");
        };
        assert_eq!(f.clauses.len(), 1);
        let Clause::For(var, Expr::Path { base, steps }) = &f.clauses[0] else {
            panic!("expected for-path");
        };
        assert_eq!(var, "b");
        assert_eq!(*base, PathBase::Root);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[2].preds.len(), 1);
    }

    #[test]
    fn parses_positional_and_last_predicates() {
        let q = parse("for $b in /site/x return $b/bidder[1]/increase[last()]");
        let Expr::Flwor(f) = &q.body else { panic!() };
        let Expr::Path { steps, .. } = &f.ret else {
            panic!("expected path return")
        };
        assert_eq!(steps[0].preds, vec![Pred::Position(1)]);
        assert_eq!(steps[1].preds, vec![Pred::Last]);
    }

    #[test]
    fn parses_before_operator() {
        let q =
            parse("for $b in /a where some $x in $b/c, $y in $b/d satisfies $x << $y return $b");
        let Expr::Flwor(f) = &q.body else { panic!() };
        let Some(Expr::Some {
            bindings,
            satisfies,
        }) = &f.where_clause
        else {
            panic!("expected quantifier");
        };
        assert_eq!(bindings.len(), 2);
        assert!(matches!(**satisfies, Expr::Before(..)));
    }

    #[test]
    fn parses_descendant_axis() {
        let q = parse("count(/site/regions//item)");
        let Expr::Call(name, args) = &q.body else {
            panic!()
        };
        assert_eq!(name, "count");
        let Expr::Path { steps, .. } = &args[0] else {
            panic!()
        };
        assert_eq!(steps[2].axis, Axis::Descendant);
    }

    #[test]
    fn parses_constructor_with_templates() {
        let q = parse(
            r#"for $b in /a return <item name="{$b/name/text()}" kind="x{1}y">{$b/location/text()} fixed</item>"#,
        );
        let Expr::Flwor(f) = &q.body else { panic!() };
        let Expr::Element(ctor) = &f.ret else {
            panic!()
        };
        assert_eq!(ctor.tag, "item");
        assert_eq!(ctor.attrs.len(), 2);
        assert_eq!(ctor.attrs[1].1.len(), 3); // "x", {1}, "y"
        assert_eq!(ctor.content.len(), 2);
    }

    #[test]
    fn parses_nested_constructors_and_sequences() {
        let q = parse(r#"for $i in /a return <categorie>{<id>{$i}</id>, $i}</categorie>"#);
        let Expr::Flwor(f) = &q.body else { panic!() };
        let Expr::Element(ctor) = &f.ret else {
            panic!()
        };
        let Content::Expr(Expr::Sequence(parts)) = &ctor.content[0] else {
            panic!("expected sequence content");
        };
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn parses_function_declarations() {
        let q = parse("declare function local:convert($v) { 2.20371 * $v }; for $i in /a return local:convert($i)");
        assert_eq!(q.functions.len(), 1);
        assert_eq!(q.functions[0].name, "local:convert");
        assert_eq!(q.functions[0].params, vec!["v"]);
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let q = parse("1 + 2 * 3");
        let Expr::Arith(ArithOp::Add, _, rhs) = &q.body else {
            panic!()
        };
        assert!(matches!(**rhs, Expr::Arith(ArithOp::Mul, ..)));
    }

    #[test]
    fn parses_where_with_and() {
        let q = parse("for $t in /a, $e in /b where $t/x = $e/y and $t/z = 3 return $t");
        let Expr::Flwor(f) = &q.body else { panic!() };
        assert_eq!(f.clauses.len(), 2);
        assert!(matches!(f.where_clause, Some(Expr::And(_))));
    }

    #[test]
    fn parses_order_by() {
        let q = parse("for $b in /a order by zero-or-one($b/location) ascending return $b");
        let Expr::Flwor(f) = &q.body else { panic!() };
        let Some((Expr::Call(name, _), true)) = &f.order_by else {
            panic!("expected ascending call key");
        };
        assert_eq!(name, "zero-or-one");
    }

    #[test]
    fn parses_relative_paths_in_predicates() {
        let q =
            parse(r#"count(/site/people/person/profile[@income >= 100000 and @income < 200000])"#);
        let Expr::Call(_, args) = &q.body else {
            panic!()
        };
        let Expr::Path { steps, .. } = &args[0] else {
            panic!()
        };
        assert_eq!(steps[3].preds.len(), 1);
    }

    #[test]
    fn parses_comments() {
        let q = parse("(: baseline :) count(/site)");
        assert!(matches!(q.body, Expr::Call(..)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("count(/a) nonsense").is_err());
    }

    #[test]
    fn rejects_mismatched_constructor() {
        assert!(parse_query("<a>{1}</b>").is_err());
    }

    #[test]
    fn empty_parens_parse() {
        let q = parse("count(())");
        let Expr::Call(_, args) = &q.body else {
            panic!()
        };
        assert_eq!(args[0], Expr::Empty);
    }
}
