//! The physical query algebra.
//!
//! A [`PhysicalPlan`] is the output of the compile phase: the parsed query
//! lowered into an operator tree whose every access-path and join decision
//! has already been made. The executor ([`crate::eval::Evaluator`]) walks
//! this tree without re-discovering anything — the split the paper's
//! Table 2 measures between *compilation* (parse, metadata, optimize) and
//! *execution*.
//!
//! The operator vocabulary:
//!
//! * [`PathPlan`] — a **PathScan**: a base plus navigation steps, each
//!   annotated with its chosen [`StepAccess`] (generic streaming cursor,
//!   **IndexLookup** via the ID index, positional index probe) and an
//!   inlined-tail shortcut (System C's entity columns).
//! * [`AggregatePlan`] — an **Aggregate**: `count(path//tag)` answered by
//!   [`xmark_store::XmlStore::count_descendants_named`] without
//!   materializing the counted extent (System D's structural summary).
//! * [`FlworPlan`] — a binding [`Strategy`] (**NestedLoop** with a
//!   predicate-pushdown **Filter** schedule, **HashJoin**, or the
//!   decorrelated **IndexLookup** join), followed by an optional **Sort**
//!   and a **Project** (the `return` expression).
//!
//! Scalar expressions (comparisons, arithmetic, constructors, calls)
//! mirror the AST one-to-one; only the decision-bearing nodes differ.
//! [`crate::explain`] renders a plan one line per operator.

use xmark_store::PositionSpec;

use crate::ast::{ArithOp, Axis, CmpOp, NodeTest};

/// How the plan was produced (see [`crate::planner::Planner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Full rule- and cost-based planning.
    Optimized,
    /// Pure nested loops, generic access paths, no pushdown — the
    /// executable specification the optimizer oracle compares against.
    Naive,
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanMode::Optimized => write!(f, "optimized"),
            PlanMode::Naive => write!(f, "naive"),
        }
    }
}

/// A fully planned query: one operator tree per user-defined function plus
/// the body. Produced by [`crate::planner::plan_query`]; carried by
/// [`crate::compile::Compiled`]; executed by [`crate::eval::Evaluator`].
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Planned `declare function` bodies, in declaration order.
    pub functions: Vec<PlanFunction>,
    /// The planned query body.
    pub body: PlanExpr,
    /// The mode the planner ran in.
    pub mode: PlanMode,
    /// How the scatter-gather executor distributes the body across a
    /// sharded store. Stamped by the planner as [`shard_mode`] of the
    /// body; the verifier's V11 pins the correspondence.
    pub shard: ShardMode,
}

/// The scatter-gather executor's classification of a plan body against a
/// sharded store ([`xmark_store::ShardedStore`]): the three parallel
/// shapes each name the merge operator that reassembles per-shard
/// results, and `Gather` marks the plans that must run once on the
/// gathered union view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShardMode {
    /// Bare PathScan: every shard's cursor already streams in global
    /// document order, so the **ordered merge** on document-order keys is
    /// the concatenation of the shard runs.
    ParallelDocOrder,
    /// Unordered FLWOR driven by a partitionable source: the driving
    /// bindings are cut into shard-local runs and per-run outputs are
    /// **appended** in run order (join build sides stay whole-document —
    /// built once in the union's signature-keyed slots and broadcast to
    /// every run, so probes stay shard-local).
    ParallelAppend,
    /// `count(…)` over a shardable FLWOR: per-run counts are **summed**
    /// (partial-aggregate combine).
    ParallelSum,
    /// Gather-required: ordered/constructed/holistic results run once on
    /// the union view (which still distributes storage access, e.g.
    /// Aggregate counts sum per-shard extents inside the store).
    Gather,
}

impl ShardMode {
    /// Whether the plan fans out per shard (any parallel variant).
    pub fn is_parallel(self) -> bool {
        self != ShardMode::Gather
    }

    /// The merge operator reassembling per-shard results, as EXPLAIN
    /// prints it.
    pub fn merge_name(self) -> &'static str {
        match self {
            ShardMode::ParallelDocOrder => "ordered",
            ShardMode::ParallelAppend => "append",
            ShardMode::ParallelSum => "sum",
            ShardMode::Gather => "none",
        }
    }
}

impl std::fmt::Display for ShardMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMode::ParallelDocOrder => write!(f, "parallel merge=ordered"),
            ShardMode::ParallelAppend => write!(f, "parallel merge=append"),
            ShardMode::ParallelSum => write!(f, "parallel merge=sum"),
            ShardMode::Gather => write!(f, "gather"),
        }
    }
}

/// Classify a plan body for the scatter-gather executor — the static
/// shape test shared by the planner (which stamps [`PhysicalPlan::shard`]),
/// the verifier (V11, which recomputes it), and the executor (which
/// dispatches on it).
///
/// The parallel shapes are exactly the ones whose per-run results
/// reassemble into the monolithic answer by construction:
///
/// * a bare [`PlanExpr::Path`] — shard cursors stream in global document
///   order, so concatenation *is* the ordered merge;
/// * a FLWOR without `order by` whose tuple producer iterates a driving
///   `for` source in document order (NestedLoop's first clause, or a
///   HashJoin's probe side — the build side is evaluated whole and
///   broadcast), partitioned into contiguous runs;
/// * `count(…)` over such a FLWOR, with per-run counts summed.
///
/// Everything else — `order by` (a holistic sort), element construction
/// over holistic content, Aggregate (the union store already combines
/// per-shard counts), user-function bodies — gathers.
pub fn shard_mode(body: &PlanExpr) -> ShardMode {
    match body {
        PlanExpr::Path(p) if path_scatters(p) => ShardMode::ParallelDocOrder,
        PlanExpr::Flwor(f) => {
            if flwor_scatters(f) {
                ShardMode::ParallelAppend
            } else {
                ShardMode::Gather
            }
        }
        PlanExpr::Call(name, args) if name == "count" && args.len() == 1 => match &args[0] {
            PlanExpr::Flwor(f) if flwor_scatters(f) => ShardMode::ParallelSum,
            _ => ShardMode::Gather,
        },
        _ => ShardMode::Gather,
    }
}

/// Whether a path's per-shard result streams reassemble by an ordered
/// merge on document-order keys (see [`shard_mode`]): the path must be
/// absolute (no environment needed inside a scatter task) and must
/// produce *nodes* — a trailing attribute step or an inlined/value tail
/// atomizes to strings, which carry no mergeable order key.
fn path_scatters(p: &PathPlan) -> bool {
    matches!(p.base, PlanBase::Root)
        && p.inlined_tail.is_none()
        && p.value_tail.is_none()
        && p.steps.last().is_none_or(|s| s.axis != Axis::Attribute)
}

/// Whether a FLWOR's tuple producer admits contiguous partitioning of
/// its driving bindings (see [`shard_mode`]).
fn flwor_scatters(f: &FlworPlan) -> bool {
    if f.order_by.is_some() {
        return false;
    }
    match &f.strategy {
        Strategy::NestedLoop { clauses, .. } => {
            matches!(clauses.first(), Some(PlanClause::For(..)))
        }
        Strategy::HashJoin { .. } => true,
        Strategy::IndexLookup { .. } => false,
    }
}

/// A planned user-defined function.
#[derive(Debug, Clone)]
pub struct PlanFunction {
    /// Function name, including the `local:` prefix.
    pub name: String,
    /// Parameter names (without `$`).
    pub params: Vec<String>,
    /// The planned body.
    pub body: PlanExpr,
}

/// A planned expression. Scalar variants mirror [`crate::ast::Expr`];
/// `Path`, `Aggregate` and `Flwor` are the operator-bearing nodes.
#[derive(Debug, Clone)]
pub enum PlanExpr {
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// `()`.
    Empty,
    /// Variable reference.
    Var(String),
    /// Comma sequence.
    Sequence(Vec<PlanExpr>),
    /// Disjunction.
    Or(Vec<PlanExpr>),
    /// Conjunction.
    And(Vec<PlanExpr>),
    /// General comparison.
    Cmp(CmpOp, Box<PlanExpr>, Box<PlanExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<PlanExpr>, Box<PlanExpr>),
    /// Unary minus.
    Neg(Box<PlanExpr>),
    /// Node-order comparison `<<`.
    Before(Box<PlanExpr>, Box<PlanExpr>),
    /// Function call (built-in or user-defined).
    Call(String, Vec<PlanExpr>),
    /// Direct element constructor.
    Element(Box<PlanElement>),
    /// `some … satisfies`.
    Some {
        /// Quantified bindings.
        bindings: Vec<(String, PlanExpr)>,
        /// The condition.
        satisfies: Box<PlanExpr>,
    },
    /// PathScan operator.
    Path(Box<PathPlan>),
    /// Aggregate operator (`count` over a descendant extent).
    Aggregate(Box<AggregatePlan>),
    /// FLWOR pipeline: binding strategy → sort → project.
    Flwor(Box<FlworPlan>),
}

/// Where a PathScan starts.
#[derive(Debug, Clone)]
pub enum PlanBase {
    /// The document root.
    Root,
    /// A variable binding.
    Var(String),
    /// The predicate context item.
    Context,
    /// An arbitrary expression.
    Expr(PlanExpr),
}

/// The PathScan operator: base + annotated steps.
#[derive(Debug, Clone)]
pub struct PathPlan {
    /// Where navigation starts.
    pub base: PlanBase,
    /// The steps, applied left to right.
    pub steps: Vec<PlanStep>,
    /// Memo signature when the path is loop-invariant (absolute and
    /// predicate-free): the executor materializes it once per execution.
    pub memo: Option<String>,
    /// `Some(tag)` when the final `tag/text()` tail should be attempted
    /// through [`xmark_store::XmlStore::typed_child_value`] (System C).
    pub inlined_tail: Option<String>,
    /// `Some(tag)` when the final `tag/text()` tail should be attempted
    /// through the shared typed child-value index
    /// ([`xmark_store::index::ChildValues`]) — the store-layer
    /// generalization available on every backend; entity columns
    /// (`inlined_tail`) take precedence where both apply.
    pub value_tail: Option<String>,
    /// `Some(n)` when the scan's final expansion runs vectorized: the
    /// cursor fills `n`-slot batches straight off the store's block
    /// cursors ([`xmark_store::NodeBatch`]) instead of dispatching per
    /// item. Set by the optimizing planner exactly when
    /// [`batch_eligible`] holds; EXPLAIN renders it as `[batch=n]` and
    /// the verifier's V10 pins the correspondence.
    pub batch: Option<u16>,
    /// Estimated output cardinality (0 = unknown).
    pub est_rows: u64,
}

/// Batch capacity of vectorized operators — the block size the executor
/// amortizes its per-pull dispatch over.
pub const DEFAULT_BATCH: usize = 128;

/// Probe run length of the vectorized hash join: how many probe items one
/// `advance` call hoist-filters and table-probes in a single pass.
pub const JOIN_PROBE_RUN: usize = 64;

/// Whether a path plan's final expansion has a native vectorized drain —
/// the static shape test shared by the planner (which annotates
/// [`PathPlan::batch`]) and the verifier (V10, which checks the
/// annotation appears only here).
///
/// The shape mirrors [`crate::stream`]'s cursor lowering: the inlined /
/// child-value tails replace the final steps with their own operators, a
/// nested upstream forces the final step into a blocking (buffered)
/// stage, and only an unpredicated tag test over the generic or
/// index-scan access paths maps onto the store's block cursors.
pub fn batch_eligible(p: &PathPlan) -> bool {
    if p.inlined_tail.is_some() || p.value_tail.is_some() || p.steps.is_empty() {
        return false;
    }
    // `//tag` from the root streams the store's descendant cursor as the
    // source itself — natively blocked even though later matches nest.
    let root_desc_first = matches!(p.base, PlanBase::Root)
        && matches!(
            (&p.steps[0].axis, &p.steps[0].test),
            (Axis::Descendant, NodeTest::Tag(_))
        )
        && p.steps[0].preds.is_empty();
    let start = usize::from(root_desc_first);
    if p.steps.len() == start {
        return true;
    }
    // Track whether the flowing context set may hold ancestor/descendant
    // pairs — the condition that forces the final step to buffer.
    let mut nested = root_desc_first;
    for step in &p.steps[start..p.steps.len() - 1] {
        if matches!(step.access, StepAccess::IdProbe(_)) {
            nested = false; // the probe yields at most one node
            continue;
        }
        nested = match (&step.axis, &step.test) {
            (_, NodeTest::Text) | (Axis::Attribute, _) => false,
            (Axis::Descendant, _) => true,
            (Axis::Child, _) => nested,
        };
    }
    let last = &p.steps[p.steps.len() - 1];
    !nested
        && last.preds.is_empty()
        && matches!(
            (&last.axis, &last.test, &last.access),
            (Axis::Child, NodeTest::Tag(_), StepAccess::Generic)
                | (
                    Axis::Descendant,
                    NodeTest::Tag(_),
                    StepAccess::Generic | StepAccess::IndexScan
                )
        )
}

/// One annotated navigation step.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Planned predicates, applied in order.
    pub preds: Vec<PlanPred>,
    /// The chosen access path.
    pub access: StepAccess,
    /// Estimated extent cardinality of the step's tag (0 = unknown).
    pub est_rows: u64,
}

/// A planned step predicate.
#[derive(Debug, Clone)]
pub enum PlanPred {
    /// `[3]`.
    Position(usize),
    /// `[last()]`.
    Last,
    /// `[expr]`.
    Expr(PlanExpr),
}

/// The access path chosen for one step.
#[derive(Debug, Clone)]
pub enum StepAccess {
    /// Streaming axis cursor (with per-context predicate evaluation).
    Generic,
    /// `tag[@id = "literal"]` probed through the store's ID index; the
    /// executor verifies tag and reachability, and falls back to the
    /// generic cursor if the store turns out not to index IDs.
    IdProbe(String),
    /// `tag[1]` / `tag[last()]` through the store's positional index,
    /// falling back per node where unsupported.
    Positional(PositionSpec),
    /// Predicate-free `descendant::tag` served from the store's shared
    /// element-name index ([`xmark_store::IndexManager`]): the context's
    /// subtree range stabs the tag's posting list (two binary searches)
    /// and matches stream off the slice — no walk. Chosen only when the
    /// posting list is sparse relative to the store; the executor falls
    /// back to the native axis cursor if stabbing turns out invalid.
    IndexScan,
}

/// The Aggregate operator: `count(prefix//tag)` without materializing.
#[derive(Debug, Clone)]
pub struct AggregatePlan {
    /// The context rows whose descendant extents are counted.
    pub input: PathPlan,
    /// The counted tag.
    pub tag: String,
    /// Whether the store answers from summary/extent arithmetic
    /// (Systems D/E) rather than a counting cursor walk.
    pub summary: bool,
    /// Whether the shared element-name index answers the count as a
    /// posting-range length (backends without native summaries).
    pub indexed: bool,
    /// Estimated extent cardinality of the counted tag (0 = unknown).
    pub est_rows: u64,
}

/// The FLWOR pipeline: bind → filter → sort → project.
#[derive(Debug, Clone)]
pub struct FlworPlan {
    /// How tuples are produced.
    pub strategy: Strategy,
    /// Optional Sort operator: key and `true` for ascending.
    pub order_by: Option<(PlanExpr, bool)>,
    /// The Project operator: the `return` expression.
    pub ret: PlanExpr,
}

/// One planned `for`/`let` clause.
#[derive(Debug, Clone)]
pub enum PlanClause {
    /// `for $v in expr`.
    For(String, PlanExpr),
    /// `let $v := expr`.
    Let(String, PlanExpr),
}

/// The binding strategy chosen for a FLWOR expression.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Clause-by-clause iteration with a Filter schedule: `filters[d]`
    /// holds the where-conjuncts evaluated once `d` clauses are bound
    /// (predicate pushdown; in naive plans everything sits at the deepest
    /// level).
    NestedLoop {
        /// The clauses, in source order.
        clauses: Vec<PlanClause>,
        /// `clauses.len() + 1` filter buckets.
        filters: Vec<Vec<PlanExpr>>,
    },
    /// Equi-join executed as a hash join (§7: "chasing the references
    /// basically amounted to executing equi-joins on strings"). The probe
    /// side is the first `for` clause so output order matches the nested
    /// loop.
    HashJoin {
        /// Probe-side (outer) variable.
        probe_var: String,
        /// Probe-side source.
        probe_src: PlanExpr,
        /// Probe-side key expression (over `probe_var`).
        probe_key: PlanExpr,
        /// Cache signature for the probe key lists when loop-invariant.
        probe_sig: Option<String>,
        /// Build-side (inner) variable.
        build_var: String,
        /// Build-side source.
        build_src: PlanExpr,
        /// Build-side key expression (over `build_var`).
        build_key: PlanExpr,
        /// Cache signature for the hash table when loop-invariant.
        build_sig: Option<String>,
        /// Probe-side residual equalities (`path($probe) = outer-expr`)
        /// hoisted out of the per-pair filter: the probe-var key lists
        /// are computed once per execution — and persisted in the store's
        /// value indexes when loop-invariant — instead of re-evaluating
        /// the path for every (pair × outer binding). Q9's correlated
        /// `$t/buyer/@person = $p/@id` is the motivating case.
        hoisted: Vec<HoistedEq>,
        /// Remaining where-conjuncts, evaluated per joined tuple.
        residual: Vec<PlanExpr>,
        /// Probe run length: the producer hoist-filters and table-probes
        /// this many probe items per pass (always [`JOIN_PROBE_RUN`] on
        /// optimized plans; naive plans never build a hash join).
        batch: Option<u16>,
        /// Estimated probe/build cardinalities (0 = unknown).
        est_probe: u64,
        /// Estimated build-side cardinality (0 = unknown).
        est_build: u64,
    },
    /// Decorrelated lookup join (Q8's correlated inner query): a lookup
    /// index over `source` keyed by `inner_key`, probed with `outer_key`
    /// from the enclosing scope — the index-nested-loop plan a relational
    /// optimizer produces for reference chasing.
    IndexLookup {
        /// The bound variable.
        var: String,
        /// The indexed source (a loop-invariant PathScan).
        source: PlanExpr,
        /// Key expression over `var`.
        inner_key: PlanExpr,
        /// The probing expression from the enclosing scope.
        outer_key: PlanExpr,
        /// Cache signature of the lookup index.
        sig: String,
        /// Remaining where-conjuncts.
        residual: Vec<PlanExpr>,
        /// Estimated indexed-source cardinality (0 = unknown).
        est_build: u64,
    },
}

/// One hoisted probe-side residual equality of a hash join (see
/// [`Strategy::HashJoin`]).
#[derive(Debug, Clone)]
pub struct HoistedEq {
    /// Canonical-key path over the probe variable.
    pub probe_key: PlanExpr,
    /// The enclosing-scope side — free of both join variables, so it is
    /// evaluated once per producer open, not per pair.
    pub outer: PlanExpr,
    /// Persistence signature when the probe source is loop-invariant
    /// (same keying as the join's probe-key lists).
    pub sig: Option<String>,
}

/// A planned element constructor.
#[derive(Debug, Clone)]
pub struct PlanElement {
    /// Tag name.
    pub tag: String,
    /// Attribute-value templates.
    pub attrs: Vec<(String, Vec<PlanAttrPart>)>,
    /// Content items in order.
    pub content: Vec<PlanContent>,
}

/// Part of a planned attribute-value template.
#[derive(Debug, Clone)]
pub enum PlanAttrPart {
    /// Literal text.
    Lit(String),
    /// `{expr}`.
    Expr(PlanExpr),
}

/// Planned element-constructor content.
#[derive(Debug, Clone)]
pub enum PlanContent {
    /// Literal text.
    Text(String),
    /// `{expr}`.
    Expr(PlanExpr),
    /// A nested constructor.
    Element(PlanElement),
}

/// Canonical signature of a step sequence — the key for path memos and
/// join caches, and the compact rendering EXPLAIN uses.
pub fn path_signature(steps: &[PlanStep]) -> String {
    let mut sig = String::new();
    for s in steps {
        sig.push(match s.axis {
            Axis::Child => '/',
            Axis::Descendant => 'D',
            Axis::Attribute => '@',
        });
        match &s.test {
            NodeTest::Tag(t) => sig.push_str(t),
            NodeTest::Wildcard => sig.push('*'),
            NodeTest::Text => sig.push_str("#t"),
        }
    }
    sig
}
