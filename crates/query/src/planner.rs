//! The rule- and cost-based query planner.
//!
//! [`plan_query`] lowers a parsed [`Query`] into a [`PhysicalPlan`] in a
//! single pass that doubles as the metadata-resolution phase of Table 2:
//! every path step is resolved against the store's catalog exactly once
//! ([`XmlStore::estimate_step`]), and the resulting cardinalities feed the
//! plan choices directly. The decisions, formerly pattern-matched inside
//! the evaluator on **every execution**:
//!
//! * **IndexLookup join** — a single-`for` FLWOR whose `where` equates a
//!   path over the bound variable with an outer expression (Q8's
//!   correlated inner query) builds a lookup index over the source once
//!   and probes it, unless the source is estimated to be a singleton.
//! * **HashJoin** — a two-`for` FLWOR with an equi-join conjunct (Q9/Q10)
//!   hashes the build side, unless the estimates say a nested loop is
//!   cheaper (`n₁·n₂ ≤ n₁+n₂`).
//! * **Predicate pushdown** — each `where` conjunct is scheduled at the
//!   shallowest clause depth where its variables are bound (the
//!   optimization that makes the paper's Q12 cheaper than Q11).
//! * **Access paths** — `tag[@id = "…"]` becomes an ID-index probe,
//!   `tag[1]`/`tag[last()]` a positional-index probe, `…/tag/text()` an
//!   inlined-column read, and `count(…//tag)` an Aggregate over summary
//!   counts — each only when [`XmlStore::planner_caps`] says the backend
//!   affords it.
//! * **IndexScan** — a predicate-free `descendant::tag` step on a backend
//!   whose native descendant access walks (Systems A/B/C/F/G,
//!   `PlannerCaps::element_index`) is costed against the shared
//!   element-name index using the posting list's **exact** cardinality —
//!   not an estimate, even on the statistics-free System F. Sparse
//!   postings win (two binary searches + a slice); dense postings (more
//!   than one element in [`INDEX_SCAN_DENSITY`]) fall back to the
//!   streamed axis scan, whose sequential locality beats posting jumps
//!   when most of the store matches anyway.
//!
//! [`PlanMode::Naive`] suppresses every rewrite and produces the pure
//! nested-loop plan the optimizer oracle executes as the specification.

use xmark_store::{PlannerCaps, PositionSpec, XmlStore};

/// IndexScan density gate: the posting list must cover at most one node
/// in this many for the stab to beat the streamed axis scan.
pub const INDEX_SCAN_DENSITY: usize = 4;

use crate::ast::*;
use crate::compile::CompileStats;
use crate::plan::*;

/// Plan `query` against `store`, collecting compile statistics.
///
/// The caller is responsible for bracketing with
/// [`XmlStore::begin_compile`] / [`XmlStore::metadata_accesses`] (see
/// [`crate::compile::compile`]).
pub fn plan_query(
    query: &Query,
    store: &dyn XmlStore,
    mode: PlanMode,
) -> (PhysicalPlan, CompileStats) {
    let mut planner = Planner {
        store,
        mode,
        caps: store.planner_caps(),
        stats: CompileStats::default(),
    };
    let functions = query
        .functions
        .iter()
        .map(|f| PlanFunction {
            name: f.name.clone(),
            params: f.params.clone(),
            body: planner.plan_expr(&f.body),
        })
        .collect();
    let body = planner.plan_expr(&query.body);
    let shard = shard_mode(&body);
    (
        PhysicalPlan {
            functions,
            body,
            mode,
            shard,
        },
        planner.stats,
    )
}

struct Planner<'s> {
    store: &'s dyn XmlStore,
    mode: PlanMode,
    caps: PlannerCaps,
    stats: CompileStats,
}

impl Planner<'_> {
    fn optimized(&self) -> bool {
        self.mode == PlanMode::Optimized
    }

    fn plan_expr(&mut self, expr: &Expr) -> PlanExpr {
        match expr {
            Expr::Str(s) => PlanExpr::Str(s.clone()),
            Expr::Num(n) => PlanExpr::Num(*n),
            Expr::Empty => PlanExpr::Empty,
            Expr::Var(v) => PlanExpr::Var(v.clone()),
            Expr::Sequence(parts) => {
                PlanExpr::Sequence(parts.iter().map(|p| self.plan_expr(p)).collect())
            }
            Expr::Or(parts) => PlanExpr::Or(parts.iter().map(|p| self.plan_expr(p)).collect()),
            Expr::And(parts) => PlanExpr::And(parts.iter().map(|p| self.plan_expr(p)).collect()),
            Expr::Cmp(op, a, b) => PlanExpr::Cmp(
                *op,
                Box::new(self.plan_expr(a)),
                Box::new(self.plan_expr(b)),
            ),
            Expr::Arith(op, a, b) => PlanExpr::Arith(
                *op,
                Box::new(self.plan_expr(a)),
                Box::new(self.plan_expr(b)),
            ),
            Expr::Neg(e) => PlanExpr::Neg(Box::new(self.plan_expr(e))),
            Expr::Before(a, b) => {
                PlanExpr::Before(Box::new(self.plan_expr(a)), Box::new(self.plan_expr(b)))
            }
            Expr::Call(name, args) => self.plan_call(name, args),
            Expr::Element(ctor) => PlanExpr::Element(Box::new(self.plan_ctor(ctor))),
            Expr::Some {
                bindings,
                satisfies,
            } => PlanExpr::Some {
                bindings: bindings
                    .iter()
                    .map(|(v, e)| (v.clone(), self.plan_expr(e)))
                    .collect(),
                satisfies: Box::new(self.plan_expr(satisfies)),
            },
            Expr::Path { base, steps } => PlanExpr::Path(Box::new(self.plan_path(base, steps))),
            Expr::Flwor(f) => PlanExpr::Flwor(Box::new(self.plan_flwor(f))),
        }
    }

    // ---- calls: the Aggregate lowering ----------------------------------

    /// `count(path)` whose final step is a predicate-free descendant tag
    /// test lowers to an Aggregate over `count_descendants_named` — the
    /// paper's Q6/Q7 observation that a structural summary answers counts
    /// without touching nodes.
    fn plan_call(&mut self, name: &str, args: &[Expr]) -> PlanExpr {
        if self.optimized() && name == "count" && args.len() == 1 {
            if let Expr::Path { base, steps } = &args[0] {
                if let Some(aggregate) = self.try_aggregate(base, steps) {
                    return PlanExpr::Aggregate(Box::new(aggregate));
                }
            }
        }
        PlanExpr::Call(
            name.to_string(),
            args.iter().map(|a| self.plan_expr(a)).collect(),
        )
    }

    fn try_aggregate(&mut self, base: &PathBase, steps: &[Step]) -> Option<AggregatePlan> {
        let last = steps.last()?;
        if last.axis != Axis::Descendant || !last.preds.is_empty() {
            return None;
        }
        let NodeTest::Tag(tag) = &last.test else {
            return None;
        };
        let prefix = &steps[..steps.len() - 1];
        if prefix.iter().any(|s| !s.preds.is_empty()) {
            return None;
        }
        let tag = tag.clone();
        // Plan the full path (prefix plus counted step) so the compile
        // statistics cover exactly the same catalog touches as the
        // unlowered form, then split off the counted tag.
        let mut path = self.plan_path(base, steps);
        let counted = path.steps.pop().expect("last step exists");
        path.memo = path.memo.is_some().then(|| path_signature(&path.steps));
        path.inlined_tail = None;
        path.value_tail = None;
        path.est_rows = last_tag_estimate(&path.steps);
        // The counted step is gone: re-decide vectorization for the
        // remaining prefix shape.
        path.batch = (self.optimized() && batch_eligible(&path)).then_some(DEFAULT_BATCH as u16);
        Some(AggregatePlan {
            input: path,
            tag,
            summary: self.caps.summary_counts,
            // Walking backends answer the count as a posting-range length
            // of the shared element-name index instead.
            indexed: matches!(counted.access, StepAccess::IndexScan),
            est_rows: counted.est_rows,
        })
    }

    // ---- paths -----------------------------------------------------------

    fn plan_path(&mut self, base: &PathBase, steps: &[Step]) -> PathPlan {
        let base = match base {
            PathBase::Root => PlanBase::Root,
            PathBase::Var(v) => PlanBase::Var(v.clone()),
            PathBase::Context => PlanBase::Context,
            PathBase::Expr(e) => PlanBase::Expr(self.plan_expr(e)),
        };
        let planned: Vec<PlanStep> = steps.iter().map(|s| self.plan_step(s)).collect();
        let pred_free = steps.iter().all(|s| s.preds.is_empty());
        let memo = (matches!(base, PlanBase::Root) && pred_free).then(|| path_signature(&planned));
        let inlined_tail = self.inlined_tail_of(steps);
        let value_tail = if inlined_tail.is_none() && self.caps.child_values {
            self.tail_tag_of(steps)
        } else {
            None
        };
        let est_rows = last_tag_estimate(&planned);
        let mut plan = PathPlan {
            base,
            steps: planned,
            memo,
            inlined_tail,
            value_tail,
            batch: None,
            est_rows,
        };
        // Vectorization is an optimizer decision: naive plans stay on the
        // one-item pull path the oracle compares against.
        if self.optimized() && batch_eligible(&plan) {
            plan.batch = Some(DEFAULT_BATCH as u16);
        }
        plan
    }

    /// Annotate `…/tag/text()` tails for System C's entity columns.
    fn inlined_tail_of(&self, steps: &[Step]) -> Option<String> {
        if !self.caps.inlined_values {
            return None;
        }
        self.tail_tag_of(steps)
    }

    /// The tag of a final predicate-free `tag/text()` tail (child axes
    /// only) — the shape both the entity columns and the shared
    /// child-value index answer. `None` in naive mode.
    fn tail_tag_of(&self, steps: &[Step]) -> Option<String> {
        if !self.optimized() || steps.len() < 2 {
            return None;
        }
        let tag_step = &steps[steps.len() - 2];
        let text_step = &steps[steps.len() - 1];
        if tag_step.axis != Axis::Child || !tag_step.preds.is_empty() {
            return None;
        }
        if text_step.axis != Axis::Child
            || text_step.test != NodeTest::Text
            || !text_step.preds.is_empty()
        {
            return None;
        }
        match &tag_step.test {
            NodeTest::Tag(tag) => Some(tag.clone()),
            _ => None,
        }
    }

    fn plan_step(&mut self, step: &Step) -> PlanStep {
        // Catalog resolution: one estimate per non-attribute tag step —
        // the Table 2 metadata-access accounting.
        let mut est_rows = match (&step.test, step.axis) {
            (NodeTest::Tag(_), Axis::Attribute) => 0,
            (NodeTest::Tag(tag), _) => {
                self.stats.steps_resolved += 1;
                let est = self.store.estimate_step(tag);
                self.stats.estimated_rows += est.rows;
                est.rows
            }
            _ => 0,
        };
        let access = self.step_access(step);
        if let StepAccess::IndexScan = access {
            // The posting list is the catalog here: record its exact
            // cardinality (System F plans these steps with real numbers
            // despite having no statistics of its own).
            if let NodeTest::Tag(tag) = &step.test {
                est_rows = self.exact_postings(tag).unwrap_or(est_rows as usize) as u64;
            }
        }
        PlanStep {
            axis: step.axis,
            test: step.test.clone(),
            preds: step.preds.iter().map(|p| self.plan_pred(p)).collect(),
            access,
            est_rows,
        }
    }

    /// Exact whole-document posting cardinality of `tag` from the shared
    /// element-name index, or `None` when the index cannot serve this
    /// store (ids not verified pre-order). Builds the index on the first
    /// compilation against the store — the lazily-paid analogue of System
    /// D's "the summary is the metadata"; the plan cache and the
    /// `build_indexes()` warmups keep it off the request path.
    fn exact_postings(&self, tag: &str) -> Option<usize> {
        let index = self.store.indexes().element(self.store);
        index.ordered().then(|| index.count(tag))
    }

    fn plan_pred(&mut self, pred: &Pred) -> PlanPred {
        match pred {
            Pred::Position(k) => PlanPred::Position(*k),
            Pred::Last => PlanPred::Last,
            Pred::Expr(e) => PlanPred::Expr(self.plan_expr(e)),
        }
    }

    fn step_access(&self, step: &Step) -> StepAccess {
        if !self.optimized() {
            return StepAccess::Generic;
        }
        // Predicate-free descendant steps: cost the shared element-name
        // index against the streamed axis scan on its exact posting
        // cardinality.
        if step.preds.is_empty() {
            if self.caps.element_index && step.axis == Axis::Descendant {
                if let NodeTest::Tag(tag) = &step.test {
                    if let Some(postings) = self.exact_postings(tag) {
                        if postings * INDEX_SCAN_DENSITY <= self.store.node_count() {
                            return StepAccess::IndexScan;
                        }
                    }
                }
            }
            return StepAccess::Generic;
        }
        if step.preds.len() != 1 {
            return StepAccess::Generic;
        }
        // `tag[@id = "literal"]` through the ID index (every mass-storage
        // system's Q1 plan).
        if self.caps.id_index && step.axis != Axis::Attribute {
            if let (NodeTest::Tag(_), Some(lit)) = (&step.test, id_literal(&step.preds[0])) {
                return StepAccess::IdProbe(lit.to_string());
            }
        }
        // `tag[1]` / `tag[last()]` through the positional index (Q2/Q3 on
        // System C).
        if self.caps.positional_index
            && step.axis == Axis::Child
            && matches!(step.test, NodeTest::Tag(_))
        {
            match step.preds[0] {
                Pred::Position(k) => return StepAccess::Positional(PositionSpec::First(k)),
                Pred::Last => return StepAccess::Positional(PositionSpec::Last),
                Pred::Expr(_) => {}
            }
        }
        StepAccess::Generic
    }

    // ---- FLWOR strategies -------------------------------------------------

    fn plan_flwor(&mut self, f: &Flwor) -> FlworPlan {
        let conjuncts_ast: Vec<&Expr> = match &f.where_clause {
            None => Vec::new(),
            Some(Expr::And(parts)) => parts.iter().collect(),
            Some(other) => vec![other],
        };
        // Plan every piece exactly once — the statistics pass counts each
        // catalog touch once regardless of which strategy wins.
        let sources: Vec<PlanExpr> = f
            .clauses
            .iter()
            .map(|c| match c {
                Clause::For(_, e) | Clause::Let(_, e) => self.plan_expr(e),
            })
            .collect();
        let conjuncts: Vec<PlanExpr> = conjuncts_ast.iter().map(|c| self.plan_expr(c)).collect();
        let order_by = f
            .order_by
            .as_ref()
            .map(|(k, asc)| (self.plan_expr(k), *asc));
        let ret = self.plan_expr(&f.ret);
        let strategy = self.choose_strategy(f, &conjuncts_ast, sources, conjuncts);
        FlworPlan {
            strategy,
            order_by,
            ret,
        }
    }

    fn choose_strategy(
        &self,
        f: &Flwor,
        conjuncts_ast: &[&Expr],
        sources: Vec<PlanExpr>,
        conjuncts: Vec<PlanExpr>,
    ) -> Strategy {
        if self.optimized() {
            if let Some((join_idx, inner_is_lhs)) = detect_index_lookup(f, conjuncts_ast) {
                let est_build = expr_estimate(&sources[0]);
                // Cost gate: a singleton source makes the index useless.
                if est_build != 1 {
                    return build_index_lookup(
                        f,
                        sources,
                        conjuncts,
                        join_idx,
                        inner_is_lhs,
                        est_build,
                    );
                }
            }
            if let Some((join_idx, v1_is_lhs)) = detect_hash_join(f, conjuncts_ast) {
                let est_probe = expr_estimate(&sources[0]);
                let est_build = expr_estimate(&sources[1]);
                // Cost gate: hash when n₁·n₂ reaches n₁+n₂ or the sizes
                // are unknown (System F/G plan optimistically, as the old
                // runtime rewrites did unconditionally). Only degenerate
                // singleton sides fall back to the nested loop.
                let hash_wins = est_probe == 0
                    || est_build == 0
                    || est_probe * est_build >= est_probe + est_build;
                if hash_wins {
                    return build_hash_join(
                        f,
                        conjuncts_ast,
                        sources,
                        conjuncts,
                        join_idx,
                        v1_is_lhs,
                        est_probe,
                        est_build,
                    );
                }
            }
        }
        self.nested_loop(f, conjuncts_ast, sources, conjuncts)
    }

    /// The fallback strategy: clause-by-clause iteration with the
    /// predicate-pushdown schedule (everything at the deepest level in
    /// naive mode).
    fn nested_loop(
        &self,
        f: &Flwor,
        conjuncts_ast: &[&Expr],
        sources: Vec<PlanExpr>,
        conjuncts: Vec<PlanExpr>,
    ) -> Strategy {
        let clauses: Vec<PlanClause> = f
            .clauses
            .iter()
            .zip(sources)
            .map(|(c, src)| match c {
                Clause::For(v, _) => PlanClause::For(v.clone(), src),
                Clause::Let(v, _) => PlanClause::Let(v.clone(), src),
            })
            .collect();
        let mut filters: Vec<Vec<PlanExpr>> = vec![Vec::new(); clauses.len() + 1];
        for (ast, planned) in conjuncts_ast.iter().zip(conjuncts) {
            let depth = if self.optimized() {
                schedule_depth(f, ast)
            } else {
                f.clauses.len()
            };
            filters[depth].push(planned);
        }
        Strategy::NestedLoop { clauses, filters }
    }
}

/// The shallowest clause depth at which every variable a conjunct uses is
/// bound — where pushdown schedules it.
fn schedule_depth(f: &Flwor, conjunct: &Expr) -> usize {
    let mut depth = 0;
    for (i, clause) in f.clauses.iter().enumerate() {
        let var = match clause {
            Clause::For(v, _) | Clause::Let(v, _) => v,
        };
        if expr_uses_var(conjunct, var) {
            depth = i + 1;
        }
    }
    depth
}

// ---- join detection (syntactic, over the AST) ----------------------------

/// Decorrelated-lookup shape: `for $v in <absolute pred-free path> where
/// path($v) = <outer expr> [and rest] …`. Returns the join conjunct's index
/// and whether the inner key is the left side.
fn detect_index_lookup(f: &Flwor, conjuncts: &[&Expr]) -> Option<(usize, bool)> {
    let [Clause::For(v, src)] = f.clauses.as_slice() else {
        return None;
    };
    let Expr::Path {
        base: PathBase::Root,
        steps: src_steps,
    } = src
    else {
        return None;
    };
    if src_steps.iter().any(|s| !s.preds.is_empty()) {
        return None;
    }
    for (i, conjunct) in conjuncts.iter().enumerate() {
        let Expr::Cmp(CmpOp::Eq, a, b) = conjunct else {
            continue;
        };
        if is_var_key(a, v) && !expr_uses_var(b, v) {
            return Some((i, true));
        }
        if is_var_key(b, v) && !expr_uses_var(a, v) {
            return Some((i, false));
        }
    }
    None
}

/// Equi-join shape: `for $a in s1, $b in s2 where path($a) = path($b)
/// [and rest] …` with `s2` independent of `$a`. Returns the join conjunct's
/// index and whether the `$a`-side key is the left side.
fn detect_hash_join(f: &Flwor, conjuncts: &[&Expr]) -> Option<(usize, bool)> {
    let [Clause::For(v1, _), Clause::For(v2, s2)] = f.clauses.as_slice() else {
        return None;
    };
    if expr_uses_var(s2, v1) {
        return None;
    }
    for (i, conjunct) in conjuncts.iter().enumerate() {
        let Expr::Cmp(CmpOp::Eq, a, b) = conjunct else {
            continue;
        };
        if is_var_key(a, v1) && is_var_key(b, v2) {
            return Some((i, true));
        }
        if is_var_key(a, v2) && is_var_key(b, v1) {
            return Some((i, false));
        }
    }
    None
}

/// Is `e` a predicate-free path rooted at variable `v`?
fn is_var_key(e: &Expr, v: &str) -> bool {
    match e {
        Expr::Path {
            base: PathBase::Var(var),
            steps,
        } => var == v && steps.iter().all(|s| s.preds.is_empty()),
        _ => false,
    }
}

// ---- strategy construction (over planned pieces) -------------------------

fn build_index_lookup(
    f: &Flwor,
    mut sources: Vec<PlanExpr>,
    mut conjuncts: Vec<PlanExpr>,
    join_idx: usize,
    inner_is_lhs: bool,
    est_build: u64,
) -> Strategy {
    let var = match &f.clauses[0] {
        Clause::For(v, _) => v.clone(),
        Clause::Let(..) => unreachable!("detection matched a for clause"),
    };
    let source = sources.remove(0);
    let (inner_key, outer_key) = split_eq(conjuncts.remove(join_idx), inner_is_lhs);
    let sig = format!(
        "{}|{}",
        plan_path_signature(&source).expect("detection guaranteed an invariant source"),
        plan_path_signature(&inner_key).expect("detection guaranteed a path key"),
    );
    Strategy::IndexLookup {
        var,
        source,
        inner_key,
        outer_key,
        sig,
        residual: conjuncts,
        est_build,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_hash_join(
    f: &Flwor,
    conjuncts_ast: &[&Expr],
    mut sources: Vec<PlanExpr>,
    mut conjuncts: Vec<PlanExpr>,
    join_idx: usize,
    v1_is_lhs: bool,
    est_probe: u64,
    est_build: u64,
) -> Strategy {
    let (probe_var, build_var) = match f.clauses.as_slice() {
        [Clause::For(v1, _), Clause::For(v2, _)] => (v1.clone(), v2.clone()),
        _ => unreachable!("detection matched two for clauses"),
    };
    let build_src = sources.remove(1);
    let probe_src = sources.remove(0);
    // Partition what is not the join conjunct: probe-side equalities
    // against an outer expression hoist out of the per-pair filter; the
    // rest stays residual.
    let mut hoisted = Vec::new();
    let mut residual = Vec::new();
    let mut join_conjunct = None;
    for (i, planned) in conjuncts.drain(..).enumerate() {
        if i == join_idx {
            join_conjunct = Some(planned);
            continue;
        }
        match hoistable_side(conjuncts_ast[i], &probe_var, &build_var) {
            Some(probe_is_lhs) => {
                let (probe_key, outer) = split_eq(planned, probe_is_lhs);
                let sig = invariant_join_signature(&probe_src, &probe_key).map(|s| s + "#probe");
                hoisted.push(HoistedEq {
                    probe_key,
                    outer,
                    sig,
                });
            }
            None => residual.push(planned),
        }
    }
    let (probe_key, build_key) = split_eq(join_conjunct.expect("join conjunct present"), v1_is_lhs);
    let build_sig = invariant_join_signature(&build_src, &build_key);
    let probe_sig = invariant_join_signature(&probe_src, &probe_key).map(|s| s + "#probe");
    Strategy::HashJoin {
        probe_var,
        probe_src,
        probe_key,
        probe_sig,
        build_var,
        build_src,
        build_key,
        build_sig,
        hoisted,
        residual,
        batch: Some(JOIN_PROBE_RUN as u16),
        est_probe,
        est_build,
    }
}

/// Is this conjunct a probe-side equality against an expression free of
/// both join variables (`path($probe) = outer` or mirrored)? Returns
/// which side the probe key is on.
fn hoistable_side(conjunct: &Expr, probe_var: &str, build_var: &str) -> Option<bool> {
    let Expr::Cmp(CmpOp::Eq, a, b) = conjunct else {
        return None;
    };
    let free = |e: &Expr| !expr_uses_var(e, probe_var) && !expr_uses_var(e, build_var);
    if is_var_key(a, probe_var) && free(b) {
        return Some(true);
    }
    if is_var_key(b, probe_var) && free(a) {
        return Some(false);
    }
    None
}

/// Split a planned equality conjunct into its two sides, normalized so the
/// first returned key is the probe/inner side.
fn split_eq(conjunct: PlanExpr, first_is_lhs: bool) -> (PlanExpr, PlanExpr) {
    let PlanExpr::Cmp(CmpOp::Eq, a, b) = conjunct else {
        unreachable!("detection matched an equality conjunct")
    };
    if first_is_lhs {
        (*a, *b)
    } else {
        (*b, *a)
    }
}

/// The memo signature of a planned absolute predicate-free path, or the
/// signature of a var-rooted key path.
fn plan_path_signature(e: &PlanExpr) -> Option<String> {
    match e {
        PlanExpr::Path(p) => Some(path_signature(&p.steps)),
        _ => None,
    }
}

/// A cache signature for a (source, key-path) pair, or `None` when either
/// side is not loop-invariant.
pub(crate) fn invariant_join_signature(src: &PlanExpr, key: &PlanExpr) -> Option<String> {
    let PlanExpr::Path(src_path) = src else {
        return None;
    };
    // `memo` is only set for absolute predicate-free paths — exactly the
    // loop-invariance criterion.
    src_path.memo.as_ref()?;
    let PlanExpr::Path(key_path) = key else {
        return None;
    };
    if !matches!(key_path.base, PlanBase::Var(_))
        || key_path.steps.iter().any(|s| !s.preds.is_empty())
    {
        return None;
    }
    Some(format!(
        "{}|{}",
        path_signature(&src_path.steps),
        path_signature(&key_path.steps)
    ))
}

/// The planner's cardinality estimate for a planned source expression
/// (0 = unknown).
pub(crate) fn expr_estimate(e: &PlanExpr) -> u64 {
    match e {
        PlanExpr::Path(p) => p.est_rows,
        _ => 0,
    }
}

/// Estimate of a step sequence: the extent of its last resolved tag step.
pub(crate) fn last_tag_estimate(steps: &[PlanStep]) -> u64 {
    steps
        .iter()
        .rev()
        .find(|s| matches!(s.test, NodeTest::Tag(_)) && s.axis != Axis::Attribute)
        .map(|s| s.est_rows)
        .unwrap_or(0)
}

/// `tag[@id = "literal"]`: extract the literal when the predicate has the
/// ID-probe shape.
fn id_literal(pred: &Pred) -> Option<&str> {
    let Pred::Expr(Expr::Cmp(CmpOp::Eq, lhs, rhs)) = pred else {
        return None;
    };
    let (attr_path, literal) = match (lhs.as_ref(), rhs.as_ref()) {
        (
            Expr::Path {
                base: PathBase::Context,
                steps,
            },
            Expr::Str(s),
        ) => (steps, s),
        (
            Expr::Str(s),
            Expr::Path {
                base: PathBase::Context,
                steps,
            },
        ) => (steps, s),
        _ => return None,
    };
    if attr_path.len() == 1
        && attr_path[0].axis == Axis::Attribute
        && attr_path[0].test == NodeTest::Tag("id".to_string())
    {
        Some(literal)
    } else {
        None
    }
}

// ---- variable-use analysis (over the AST) --------------------------------

/// Does `expr` reference the variable `var` anywhere?
pub(crate) fn expr_uses_var(expr: &Expr, var: &str) -> bool {
    match expr {
        Expr::Var(v) => v == var,
        Expr::Path { base, steps } => {
            let base_uses = match base {
                PathBase::Var(v) => v == var,
                PathBase::Expr(e) => expr_uses_var(e, var),
                PathBase::Root | PathBase::Context => false,
            };
            base_uses
                || steps.iter().any(|s| {
                    s.preds.iter().any(|p| match p {
                        Pred::Expr(e) => expr_uses_var(e, var),
                        _ => false,
                    })
                })
        }
        Expr::Flwor(f) => {
            f.clauses.iter().any(|c| match c {
                Clause::For(_, e) | Clause::Let(_, e) => expr_uses_var(e, var),
            }) || f
                .where_clause
                .as_ref()
                .is_some_and(|w| expr_uses_var(w, var))
                || f.order_by
                    .as_ref()
                    .is_some_and(|(k, _)| expr_uses_var(k, var))
                || expr_uses_var(&f.ret, var)
        }
        Expr::Or(parts) | Expr::And(parts) | Expr::Sequence(parts) => {
            parts.iter().any(|p| expr_uses_var(p, var))
        }
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::Before(a, b) => {
            expr_uses_var(a, var) || expr_uses_var(b, var)
        }
        Expr::Neg(e) => expr_uses_var(e, var),
        Expr::Call(_, args) => args.iter().any(|a| expr_uses_var(a, var)),
        Expr::Some {
            bindings,
            satisfies,
        } => bindings.iter().any(|(_, e)| expr_uses_var(e, var)) || expr_uses_var(satisfies, var),
        Expr::Element(ctor) => ctor_uses_var(ctor, var),
        Expr::Str(_) | Expr::Num(_) | Expr::Empty => false,
    }
}

fn ctor_uses_var(ctor: &ElementCtor, var: &str) -> bool {
    ctor.attrs.iter().any(|(_, parts)| {
        parts.iter().any(|p| match p {
            AttrPart::Expr(e) => expr_uses_var(e, var),
            AttrPart::Lit(_) => false,
        })
    }) || ctor.content.iter().any(|c| match c {
        Content::Expr(e) => expr_uses_var(e, var),
        Content::Element(nested) => ctor_uses_var(nested, var),
        Content::Text(_) => false,
    })
}

impl Planner<'_> {
    fn plan_ctor(&mut self, ctor: &ElementCtor) -> PlanElement {
        PlanElement {
            tag: ctor.tag.clone(),
            attrs: ctor
                .attrs
                .iter()
                .map(|(name, parts)| {
                    (
                        name.clone(),
                        parts
                            .iter()
                            .map(|p| match p {
                                AttrPart::Lit(s) => PlanAttrPart::Lit(s.clone()),
                                AttrPart::Expr(e) => PlanAttrPart::Expr(self.plan_expr(e)),
                            })
                            .collect(),
                    )
                })
                .collect(),
            content: ctor
                .content
                .iter()
                .map(|c| match c {
                    Content::Text(t) => PlanContent::Text(t.clone()),
                    Content::Expr(e) => PlanContent::Expr(self.plan_expr(e)),
                    Content::Element(nested) => PlanContent::Element(self.plan_ctor(nested)),
                })
                .collect(),
        }
    }
}
