//! The query result model: items, sequences, serialization and
//! canonicalization.
//!
//! §1 of the paper: "Our experience suggests that the problem of deciding
//! when to regard the output of XML query processors as equivalent still
//! requires research." Our answer, for the benchmark's own verification
//! suite, is [`canonicalize`]: serialize every item, with constructed
//! elements' attributes sorted, and join with newlines — two engines (or
//! two storage backends) agree iff their canonical outputs are equal.

use std::fmt::Write as _;
use std::sync::Arc;

use xmark_store::{Node, XmlStore};

/// A constructed element (the output of a direct element constructor).
#[derive(Debug, Clone, PartialEq)]
pub struct CElem {
    /// Tag name.
    pub tag: String,
    /// Attributes in construction order.
    pub attrs: Vec<(String, String)>,
    /// Children: copied store nodes, atomics, nested constructions.
    pub children: Vec<Item>,
}

/// One item of a result sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A node of the queried store.
    Node(Node),
    /// A string.
    Str(Arc<str>),
    /// A number (XQuery `double`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A constructed element.
    Elem(Arc<CElem>),
}

impl Item {
    /// Build a string item.
    pub fn str(s: impl AsRef<str>) -> Self {
        Item::Str(Arc::from(s.as_ref()))
    }
}

/// A sequence of items — every expression evaluates to one.
pub type Sequence = Vec<Item>;

/// Format a number the XQuery way: integral values print without a
/// fractional part.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// The atomized (string) value of an item.
pub fn atomize(store: &dyn XmlStore, item: &Item) -> String {
    match item {
        Item::Node(n) => store.string_value(*n),
        Item::Str(s) => s.to_string(),
        Item::Num(n) => format_number(*n),
        Item::Bool(b) => b.to_string(),
        Item::Elem(e) => {
            let mut out = String::new();
            elem_string_value(store, e, &mut out);
            out
        }
    }
}

fn elem_string_value(store: &dyn XmlStore, elem: &CElem, out: &mut String) {
    for child in &elem.children {
        match child {
            Item::Node(n) => store.string_value_into(*n, out),
            Item::Str(s) => out.push_str(s),
            Item::Num(n) => out.push_str(&format_number(*n)),
            Item::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Item::Elem(e) => elem_string_value(store, e, out),
        }
    }
}

/// The numeric value of an item, if it has one.
pub fn number(store: &dyn XmlStore, item: &Item) -> Option<f64> {
    match item {
        Item::Num(n) => Some(*n),
        Item::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => atomize(store, item).trim().parse::<f64>().ok(),
    }
}

/// Serialize one item as XML text (store nodes reconstruct through the
/// store — the cost Q13 measures).
pub fn serialize_item(store: &dyn XmlStore, item: &Item, out: &mut String) {
    serialize_opts(store, item, out, false)
}

fn serialize_opts(store: &dyn XmlStore, item: &Item, out: &mut String, canonical: bool) {
    match item {
        Item::Node(n) => store.serialize_node(*n, out),
        Item::Str(s) => xmark_xml::escape::escape_text_into(s, out),
        Item::Num(n) => out.push_str(&format_number(*n)),
        Item::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Item::Elem(e) => {
            out.push('<');
            out.push_str(&e.tag);
            if canonical {
                let mut sorted: Vec<_> = e.attrs.iter().collect();
                sorted.sort();
                for (name, value) in sorted {
                    write_attr(name, value, out);
                }
            } else {
                for (name, value) in &e.attrs {
                    write_attr(name, value, out);
                }
            }
            if e.children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            for (i, child) in e.children.iter().enumerate() {
                // Adjacent atomic items are separated by a space, per the
                // XQuery serialization rules.
                if i > 0
                    && matches!(child, Item::Str(_) | Item::Num(_) | Item::Bool(_))
                    && matches!(
                        e.children[i - 1],
                        Item::Str(_) | Item::Num(_) | Item::Bool(_)
                    )
                {
                    out.push(' ');
                }
                serialize_opts(store, child, out, canonical);
            }
            out.push_str("</");
            out.push_str(&e.tag);
            out.push('>');
        }
    }
}

fn write_attr(name: &str, value: &str, out: &mut String) {
    out.push(' ');
    out.push_str(name);
    out.push_str("=\"");
    xmark_xml::escape::escape_attr_into(value, out);
    out.push('"');
}

/// Serialize a whole sequence, one item per line.
pub fn serialize_sequence(store: &dyn XmlStore, seq: &[Item]) -> String {
    let mut out = String::new();
    for (i, item) in seq.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        serialize_item(store, item, &mut out);
    }
    out
}

/// Canonical serialization for output-equivalence checking.
pub fn canonicalize(store: &dyn XmlStore, seq: &[Item]) -> String {
    let mut out = String::new();
    for (i, item) in seq.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        serialize_opts(store, item, &mut out, true);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmark_store::NaiveStore;

    fn store() -> NaiveStore {
        NaiveStore::load(r#"<site><name>Alice</name></site>"#).unwrap()
    }

    #[test]
    fn number_formatting_trims_integers() {
        assert_eq!(format_number(2.0), "2");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(-3.0), "-3");
    }

    #[test]
    fn atomize_handles_every_item_kind() {
        let s = store();
        let names = s.descendants_named(s.root(), "name");
        assert_eq!(atomize(&s, &Item::Node(names[0])), "Alice");
        assert_eq!(atomize(&s, &Item::str("x")), "x");
        assert_eq!(atomize(&s, &Item::Num(4.0)), "4");
        assert_eq!(atomize(&s, &Item::Bool(true)), "true");
        let elem = Item::Elem(Arc::new(CElem {
            tag: "t".into(),
            attrs: vec![],
            children: vec![Item::str("a"), Item::Node(names[0])],
        }));
        assert_eq!(atomize(&s, &elem), "aAlice");
    }

    #[test]
    fn serialization_escapes_and_nests() {
        let s = store();
        let elem = Item::Elem(Arc::new(CElem {
            tag: "increase".into(),
            attrs: vec![("first".into(), "1<2".into())],
            children: vec![Item::str("a&b")],
        }));
        let mut out = String::new();
        serialize_item(&s, &elem, &mut out);
        assert_eq!(out, r#"<increase first="1&lt;2">a&amp;b</increase>"#);
    }

    #[test]
    fn canonicalize_sorts_constructed_attributes() {
        let s = store();
        let elem = Item::Elem(Arc::new(CElem {
            tag: "e".into(),
            attrs: vec![("z".into(), "1".into()), ("a".into(), "2".into())],
            children: vec![],
        }));
        assert_eq!(
            canonicalize(&s, std::slice::from_ref(&elem)),
            r#"<e a="2" z="1"/>"#
        );
        let mut plain = String::new();
        serialize_item(&s, &elem, &mut plain);
        assert_eq!(plain, r#"<e z="1" a="2"/>"#);
    }

    #[test]
    fn adjacent_atomics_get_space_separated() {
        let s = store();
        let elem = Item::Elem(Arc::new(CElem {
            tag: "t".into(),
            attrs: vec![],
            children: vec![Item::Num(1.0), Item::Num(2.0)],
        }));
        let mut out = String::new();
        serialize_item(&s, &elem, &mut out);
        assert_eq!(out, "<t>1 2</t>");
    }

    #[test]
    fn sequence_serialization_is_line_separated() {
        let s = store();
        let seq = vec![Item::Num(1.0), Item::str("two")];
        assert_eq!(serialize_sequence(&s, &seq), "1\ntwo");
    }

    #[test]
    fn number_parses_node_text() {
        let s = NaiveStore::load("<a><price>40.5</price></a>").unwrap();
        let price = s.descendants_named(s.root(), "price")[0];
        assert_eq!(number(&s, &Item::Node(price)), Some(40.5));
        assert_eq!(number(&s, &Item::str("x")), None);
    }
}
