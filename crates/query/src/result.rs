//! The query result model: items, sequences, serialization and
//! canonicalization.
//!
//! §1 of the paper: "Our experience suggests that the problem of deciding
//! when to regard the output of XML query processors as equivalent still
//! requires research." Our answer, for the benchmark's own verification
//! suite, is [`canonicalize`]: serialize every item, with constructed
//! elements' attributes sorted, and join with newlines — two engines (or
//! two storage backends) agree iff their canonical outputs are equal.
//!
//! Serialization is **sink-generic**: [`write_item`] and
//! [`write_sequence`] stream bytes into any [`fmt::Write`] target
//! (a `String`, a byte counter, or an [`IoSink`] wrapping an
//! [`io::Write`]), so a [`crate::stream::ResultStream`] can serialize
//! results item by item without ever materializing the whole output. The
//! `String`-returning helpers ([`serialize_sequence`], [`canonicalize`])
//! are thin wrappers over the same code.

use std::fmt::{self, Write as _};
use std::io;
use std::sync::Arc;

use xmark_store::{Node, XmlStore};

/// A constructed element (the output of a direct element constructor).
#[derive(Debug, Clone, PartialEq)]
pub struct CElem {
    /// Tag name.
    pub tag: String,
    /// Attributes in construction order.
    pub attrs: Vec<(String, String)>,
    /// Children: copied store nodes, atomics, nested constructions.
    pub children: Vec<Item>,
}

/// One item of a result sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A node of the queried store.
    Node(Node),
    /// A string.
    Str(Arc<str>),
    /// A number (XQuery `double`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A constructed element.
    Elem(Arc<CElem>),
}

impl Item {
    /// Build a string item.
    pub fn str(s: impl AsRef<str>) -> Self {
        Item::Str(Arc::from(s.as_ref()))
    }
}

/// A sequence of items — every expression evaluates to one.
pub type Sequence = Vec<Item>;

/// Format a number the XQuery way: integral values print without a
/// fractional part, the non-finite values use the XQuery spellings
/// (`INF`, `-INF`, `NaN`), and huge integral values stay in positional
/// notation (Rust's `{}` would switch to scientific at 1e16).
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "INF" } else { "-INF" }.to_string()
    } else if n.fract() == 0.0 {
        if n.abs() < 1e15 {
            format!("{}", n as i64)
        } else {
            // Fixed-point rendering keeps 1e15-and-up integral values out
            // of scientific notation ("1000000000000000000", not "1e18").
            format!("{n:.0}")
        }
    } else {
        format!("{n}")
    }
}

/// The atomized (string) value of an item.
pub fn atomize(store: &dyn XmlStore, item: &Item) -> String {
    match item {
        Item::Node(n) => store.string_value(*n),
        Item::Str(s) => s.to_string(),
        Item::Num(n) => format_number(*n),
        Item::Bool(b) => b.to_string(),
        Item::Elem(e) => {
            let mut out = String::new();
            elem_string_value(store, e, &mut out);
            out
        }
    }
}

fn elem_string_value(store: &dyn XmlStore, elem: &CElem, out: &mut String) {
    for child in &elem.children {
        match child {
            Item::Node(n) => store.string_value_into(*n, out),
            Item::Str(s) => out.push_str(s),
            Item::Num(n) => out.push_str(&format_number(*n)),
            Item::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Item::Elem(e) => elem_string_value(store, e, out),
        }
    }
}

/// The numeric value of an item, if it has one.
pub fn number(store: &dyn XmlStore, item: &Item) -> Option<f64> {
    match item {
        Item::Num(n) => Some(*n),
        Item::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => atomize(store, item).trim().parse::<f64>().ok(),
    }
}

/// Serialize one item as XML text into any [`fmt::Write`] sink (store
/// nodes reconstruct through the store — the cost Q13 measures).
pub fn write_item<W: fmt::Write + ?Sized>(
    store: &dyn XmlStore,
    item: &Item,
    out: &mut W,
) -> fmt::Result {
    write_opts(store, item, out, false)
}

/// Serialize a whole sequence into any [`fmt::Write`] sink, one item per
/// line — byte-identical to [`serialize_sequence`].
pub fn write_sequence<W: fmt::Write + ?Sized>(
    store: &dyn XmlStore,
    seq: &[Item],
    out: &mut W,
) -> fmt::Result {
    for (i, item) in seq.iter().enumerate() {
        if i > 0 {
            out.write_char('\n')?;
        }
        write_item(store, item, out)?;
    }
    Ok(())
}

fn write_opts<W: fmt::Write + ?Sized>(
    store: &dyn XmlStore,
    item: &Item,
    out: &mut W,
    canonical: bool,
) -> fmt::Result {
    match item {
        // `&mut W` (sized) re-borrows coerce to the `dyn` sinks the
        // store/escape primitives take, even when `W` itself is unsized.
        Item::Node(n) => store.serialize_node_to(*n, &mut &mut *out),
        Item::Str(s) => xmark_xml::escape::escape_text_to(s, &mut &mut *out),
        Item::Num(n) => out.write_str(&format_number(*n)),
        Item::Bool(b) => write!(out, "{b}"),
        Item::Elem(e) => {
            out.write_char('<')?;
            out.write_str(&e.tag)?;
            if canonical {
                let mut sorted: Vec<_> = e.attrs.iter().collect();
                sorted.sort();
                for (name, value) in sorted {
                    write_attr(name, value, out)?;
                }
            } else {
                for (name, value) in &e.attrs {
                    write_attr(name, value, out)?;
                }
            }
            if e.children.is_empty() {
                return out.write_str("/>");
            }
            out.write_char('>')?;
            for (i, child) in e.children.iter().enumerate() {
                // Adjacent atomic items are separated by a space, per the
                // XQuery serialization rules.
                if i > 0
                    && matches!(child, Item::Str(_) | Item::Num(_) | Item::Bool(_))
                    && matches!(
                        e.children[i - 1],
                        Item::Str(_) | Item::Num(_) | Item::Bool(_)
                    )
                {
                    out.write_char(' ')?;
                }
                write_opts(store, child, out, canonical)?;
            }
            out.write_str("</")?;
            out.write_str(&e.tag)?;
            out.write_char('>')
        }
    }
}

fn write_attr<W: fmt::Write + ?Sized>(name: &str, value: &str, out: &mut W) -> fmt::Result {
    out.write_char(' ')?;
    out.write_str(name)?;
    out.write_str("=\"")?;
    xmark_xml::escape::escape_attr_to(value, &mut &mut *out)?;
    out.write_char('"')
}

/// Serialize one item as XML text, appending to a `String`.
pub fn serialize_item(store: &dyn XmlStore, item: &Item, out: &mut String) {
    let _ = write_opts(store, item, out, false); // String writes cannot fail
}

/// Serialize a whole sequence, one item per line.
pub fn serialize_sequence(store: &dyn XmlStore, seq: &[Item]) -> String {
    let mut out = String::new();
    let _ = write_sequence(store, seq, &mut out);
    out
}

/// Canonical serialization for output-equivalence checking.
pub fn canonicalize(store: &dyn XmlStore, seq: &[Item]) -> String {
    let mut out = String::new();
    for (i, item) in seq.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = write_opts(store, item, &mut out, true);
    }
    out
}

/// Adapter turning any [`io::Write`] into the [`fmt::Write`] sink the
/// serialization functions expect, so results can stream straight to a
/// file, socket, or `Vec<u8>`.
///
/// `fmt::Error` carries no payload, so the first underlying I/O error is
/// parked in the adapter and retrievable via [`IoSink::take_error`] after
/// the write returns.
pub struct IoSink<W: io::Write> {
    inner: W,
    bytes: u64,
    error: Option<io::Error>,
}

impl<W: io::Write> IoSink<W> {
    /// Wrap an [`io::Write`] target.
    pub fn new(inner: W) -> Self {
        IoSink {
            inner,
            bytes: 0,
            error: None,
        }
    }

    /// Bytes successfully written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The first I/O error the underlying writer reported, if any.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> fmt::Write for IoSink<W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        if self.error.is_some() {
            return Err(fmt::Error);
        }
        match self.inner.write_all(s.as_bytes()) {
            Ok(()) => {
                self.bytes += s.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.error = Some(e);
                Err(fmt::Error)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmark_store::NaiveStore;

    fn store() -> NaiveStore {
        NaiveStore::load(r#"<site><name>Alice</name></site>"#).unwrap()
    }

    #[test]
    fn number_formatting_trims_integers() {
        assert_eq!(format_number(2.0), "2");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(-3.0), "-3");
    }

    #[test]
    fn number_formatting_uses_xquery_nonfinite_spellings() {
        // Rust's `{}` prints "inf"/"NaN"; XQuery spells them INF/-INF/NaN.
        assert_eq!(format_number(f64::INFINITY), "INF");
        assert_eq!(format_number(f64::NEG_INFINITY), "-INF");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(-f64::NAN), "NaN");
    }

    #[test]
    fn number_formatting_keeps_huge_integers_positional() {
        // At 1e15 the i64 cast still fits; far beyond it `{}` would print
        // scientific notation ("1e18") — XQuery keeps positional digits.
        assert_eq!(format_number(1e15), "1000000000000000");
        assert_eq!(format_number(1e18), "1000000000000000000");
        assert_eq!(format_number(-1e18), "-1000000000000000000");
        assert_eq!(format_number(1e19), "10000000000000000000");
        assert!(!format_number(123456789012345680.0).contains('e'));
    }

    #[test]
    fn atomize_handles_every_item_kind() {
        let s = store();
        let names = s.descendants_named(s.root(), "name");
        assert_eq!(atomize(&s, &Item::Node(names[0])), "Alice");
        assert_eq!(atomize(&s, &Item::str("x")), "x");
        assert_eq!(atomize(&s, &Item::Num(4.0)), "4");
        assert_eq!(atomize(&s, &Item::Bool(true)), "true");
        let elem = Item::Elem(Arc::new(CElem {
            tag: "t".into(),
            attrs: vec![],
            children: vec![Item::str("a"), Item::Node(names[0])],
        }));
        assert_eq!(atomize(&s, &elem), "aAlice");
    }

    #[test]
    fn serialization_escapes_and_nests() {
        let s = store();
        let elem = Item::Elem(Arc::new(CElem {
            tag: "increase".into(),
            attrs: vec![("first".into(), "1<2".into())],
            children: vec![Item::str("a&b")],
        }));
        let mut out = String::new();
        serialize_item(&s, &elem, &mut out);
        assert_eq!(out, r#"<increase first="1&lt;2">a&amp;b</increase>"#);
    }

    #[test]
    fn canonicalize_sorts_constructed_attributes() {
        let s = store();
        let elem = Item::Elem(Arc::new(CElem {
            tag: "e".into(),
            attrs: vec![("z".into(), "1".into()), ("a".into(), "2".into())],
            children: vec![],
        }));
        assert_eq!(
            canonicalize(&s, std::slice::from_ref(&elem)),
            r#"<e a="2" z="1"/>"#
        );
        let mut plain = String::new();
        serialize_item(&s, &elem, &mut plain);
        assert_eq!(plain, r#"<e z="1" a="2"/>"#);
    }

    #[test]
    fn adjacent_atomics_get_space_separated() {
        let s = store();
        let elem = Item::Elem(Arc::new(CElem {
            tag: "t".into(),
            attrs: vec![],
            children: vec![Item::Num(1.0), Item::Num(2.0)],
        }));
        let mut out = String::new();
        serialize_item(&s, &elem, &mut out);
        assert_eq!(out, "<t>1 2</t>");
    }

    #[test]
    fn sequence_serialization_is_line_separated() {
        let s = store();
        let seq = vec![Item::Num(1.0), Item::str("two")];
        assert_eq!(serialize_sequence(&s, &seq), "1\ntwo");
    }

    #[test]
    fn write_sequence_agrees_with_serialize_sequence() {
        let s = store();
        let names = s.descendants_named(s.root(), "name");
        let seq = vec![
            Item::Node(names[0]),
            Item::Num(f64::INFINITY),
            Item::str("a<b"),
            Item::Elem(Arc::new(CElem {
                tag: "t".into(),
                attrs: vec![("k".into(), "v\"w".into())],
                children: vec![Item::Bool(true)],
            })),
        ];
        let mut sunk = String::new();
        write_sequence(&s, &seq, &mut sunk).unwrap();
        assert_eq!(sunk, serialize_sequence(&s, &seq));
    }

    #[test]
    fn io_sink_streams_bytes_and_counts() {
        let s = store();
        let names = s.descendants_named(s.root(), "name");
        let seq = vec![Item::Node(names[0]), Item::Num(7.0)];
        let mut sink = IoSink::new(Vec::<u8>::new());
        write_sequence(&s, &seq, &mut sink).unwrap();
        assert!(sink.take_error().is_none());
        let expected = serialize_sequence(&s, &seq);
        assert_eq!(sink.bytes(), expected.len() as u64);
        assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), expected);
    }

    #[test]
    fn io_sink_parks_the_underlying_error() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let s = store();
        let mut sink = IoSink::new(Broken);
        assert!(write_sequence(&s, &[Item::Num(1.0)], &mut sink).is_err());
        let err = sink.take_error().expect("error parked");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn number_parses_node_text() {
        let s = NaiveStore::load("<a><price>40.5</price></a>").unwrap();
        let price = s.descendants_named(s.root(), "price")[0];
        assert_eq!(number(&s, &Item::Node(price)), Some(40.5));
        assert_eq!(number(&s, &Item::str("x")), None);
    }
}
