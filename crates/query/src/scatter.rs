//! The scatter-gather executor for sharded stores.
//!
//! [`execute_scattered`] runs a compiled plan against a
//! [`xmark_store::ShardedStore`]'s union view by fanning per-shard
//! subplans out to scoped threads and reassembling their results with
//! the merge operator the plan's [`ShardMode`] annotation names (stamped
//! by the planner, pinned by the verifier's V11):
//!
//! * **ParallelDocOrder** — the whole path plan runs against every
//!   physical shard part (each part is a complete `site` document with
//!   the same skeleton, so absolute paths evaluate unchanged), local
//!   node ids map into the union's global id space through
//!   [`xmark_store::XmlStore::shard_part_global`], and the sorted
//!   per-part streams are k-way merged on document-order keys. Fused
//!   skeleton nodes (the root, section elements) surface from several
//!   parts; the merge emits each exactly once.
//! * **ParallelAppend** — the FLWOR's driving source is evaluated once
//!   on the union, cut into contiguous runs at shard-ownership
//!   boundaries ([`xmark_store::XmlStore::shard_of`]), and the FLWOR is
//!   re-run per slice with the driver pre-bound; outputs concatenate in
//!   run order. Join build sides keep their planner signatures, so the
//!   first run to need a hash table builds it in the union's
//!   signature-keyed value slots and every other run probes the shared
//!   (broadcast) copy; probe-side signatures are stripped because each
//!   run probes a different slice.
//! * **ParallelSum** — `count(…)` over a shardable FLWOR scatters the
//!   inner FLWOR the same way and sums per-run item counts (the
//!   partial-aggregate combine).
//! * **Gather** — everything else executes once on the union view,
//!   which still distributes storage access across the shard stores.
//!
//! On a monolithic store (no shard parts) every mode degrades to plain
//! [`crate::compile::execute`] — the single code path `table4_throughput
//! --shards 1` baselines against.

use std::sync::Arc;

use xmark_store::XmlStore;

use crate::compile::{execute, Compiled};
use crate::eval::{Env, EvalError, Evaluator};
use crate::plan::{PhysicalPlan, PlanClause, PlanExpr, ShardMode, Strategy};
use crate::result::{Item, Sequence};

/// The reserved variable the scatter rewrite binds each run's driver
/// slice to. `#` cannot appear in a source-level variable name, so the
/// binding can never shadow or be shadowed by user bindings.
const DRIVER: &str = "#shard-driver";

/// Execute `compiled` against `store`, scattering across shards when the
/// store is sharded and the plan's [`ShardMode`] annotation allows it.
///
/// On monolithic stores this is exactly [`execute`]. On sharded stores
/// the result is item-identical to `execute` on the union view — the
/// oracle suite pins byte-identical serializations across shard counts.
///
/// # Errors
/// Propagates evaluation errors from any scatter task.
pub fn execute_scattered(compiled: &Compiled, store: &dyn XmlStore) -> Result<Sequence, EvalError> {
    if store.shard_part_count() < 2 {
        return execute(compiled, store);
    }
    match compiled.plan.shard {
        ShardMode::ParallelDocOrder => scatter_path(compiled, store),
        ShardMode::ParallelAppend => {
            let runs = scatter_flwor(compiled, store, false)?;
            Ok(runs.into_iter().flatten().collect())
        }
        ShardMode::ParallelSum => {
            let runs = scatter_flwor(compiled, store, true)?;
            let total: usize = runs.iter().map(Vec::len).sum();
            Ok(vec![Item::Num(total as f64)])
        }
        ShardMode::Gather => execute(compiled, store),
    }
}

// ---- ParallelDocOrder ----------------------------------------------------

/// Run the whole plan against every shard part concurrently, map local
/// results into the global id space, and merge on document-order keys.
fn scatter_path(compiled: &Compiled, store: &dyn XmlStore) -> Result<Sequence, EvalError> {
    let parts = store.shard_part_count();
    let plan = &compiled.plan;
    let streams = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..parts)
            .map(|j| {
                scope.spawn(move || -> Result<Sequence, EvalError> {
                    let part = store
                        .shard_part(j)
                        .expect("part index within shard_part_count");
                    let ev = Evaluator::new(part, plan);
                    let local = ev.run(plan)?;
                    // Map shard-local node ids into the union's global id
                    // space. Every node of a shard document is either
                    // fused skeleton or owned content, so the mapping is
                    // total over well-formed path results.
                    Ok(local
                        .into_iter()
                        .filter_map(|item| match item {
                            Item::Node(l) => {
                                let g = store.shard_part_global(j, l);
                                debug_assert!(g.is_some(), "unmappable path result node");
                                g.map(Item::Node)
                            }
                            other => {
                                debug_assert!(false, "non-node item in a doc-order scatter");
                                Some(other)
                            }
                        })
                        .collect())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scatter task panicked"))
            .collect::<Result<Vec<Sequence>, EvalError>>()
    })?;
    Ok(merge_doc_order(store, streams))
}

/// K-way merge of per-part result streams, each already sorted by global
/// document order. Equal keys across streams are the fused skeleton
/// nodes every part reports — emitted once.
fn merge_doc_order(store: &dyn XmlStore, streams: Vec<Sequence>) -> Sequence {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; streams.len()];
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (j, stream) in streams.iter().enumerate() {
            if let Some(Item::Node(n)) = stream.get(idx[j]) {
                let key = store.doc_order_key(*n);
                if best.is_none_or(|(b, _)| key < b) {
                    best = Some((key, j));
                }
            }
        }
        let Some((key, j)) = best else { break };
        out.push(streams[j][idx[j]].clone());
        idx[j] += 1;
        // Skip the same fused node at the head of every other stream.
        for (j2, stream) in streams.iter().enumerate() {
            if j2 == j {
                continue;
            }
            while matches!(stream.get(idx[j2]), Some(Item::Node(n))
                if store.doc_order_key(*n) == key)
            {
                idx[j2] += 1;
            }
        }
    }
    out
}

// ---- ParallelAppend / ParallelSum ----------------------------------------

/// Scatter a FLWOR body: evaluate the driving source on the union, cut
/// it into shard-contiguous runs, and execute the rewritten plan per run
/// concurrently. Returns the per-run outputs in run order. With `count`,
/// the body is the FLWOR inside the top-level `count(…)` call.
fn scatter_flwor(
    compiled: &Compiled,
    store: &dyn XmlStore,
    count: bool,
) -> Result<Vec<Sequence>, EvalError> {
    let (scattered, driver_src) =
        rewrite_driver(&compiled.plan, count).expect("shard mode implies a scatterable FLWOR");

    // The driving bindings, evaluated once on the union view.
    let ev = Evaluator::new(store, &compiled.plan);
    let mut env = Env::default();
    let driver = ev.eval(driver_src, &mut env, None)?;

    let runs = partition_runs(store, driver);
    if runs.len() <= 1 {
        // One shard's worth of driving bindings (or none): no fan-out.
        let slice = runs.into_iter().next().unwrap_or_default();
        return Ok(vec![run_slice(store, &scattered, slice)?]);
    }
    std::thread::scope(|scope| {
        let scattered = &scattered;
        let handles: Vec<_> = runs
            .into_iter()
            .map(|slice| scope.spawn(move || run_slice(store, scattered, slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scatter task panicked"))
            .collect()
    })
}

/// Execute the rewritten plan with one driver slice pre-bound.
fn run_slice(
    store: &dyn XmlStore,
    scattered: &PhysicalPlan,
    slice: Sequence,
) -> Result<Sequence, EvalError> {
    let ev = Evaluator::new(store, scattered);
    let mut env = Env::default();
    env.push(DRIVER, Arc::new(slice));
    ev.eval(&scattered.body, &mut env, None)
}

/// Cut the driving sequence into contiguous runs at shard-ownership
/// boundaries: items owned by the same entity shard stay in one run, and
/// head-owned / fused / non-node items glue to the run in progress (they
/// carry no affinity). Contiguity keeps concatenation order-correct even
/// when a scan spans sections.
fn partition_runs(store: &dyn XmlStore, driver: Sequence) -> Vec<Sequence> {
    let mut runs: Vec<Sequence> = Vec::new();
    let mut current: Option<usize> = None;
    for item in driver {
        let owner = match &item {
            Item::Node(n) => store.shard_of(*n),
            _ => None,
        };
        match runs.last_mut() {
            Some(run) if owner.is_none() || current.is_none() || owner == current => {
                run.push(item);
                current = current.or(owner);
            }
            _ => {
                runs.push(vec![item]);
                current = owner;
            }
        }
    }
    runs
}

/// Clone the plan with the FLWOR's driving source replaced by the
/// reserved driver variable, returning the clone and a borrow of the
/// original driving source. Probe-side cache signatures are stripped
/// (each run probes a different slice); build-side signatures stay, so
/// the build happens once in the union's signature-keyed value slots and
/// is broadcast to every run.
fn rewrite_driver(plan: &PhysicalPlan, count: bool) -> Option<(PhysicalPlan, &PlanExpr)> {
    let flwor = match (&plan.body, count) {
        (PlanExpr::Flwor(f), false) => f,
        (PlanExpr::Call(name, args), true) if name == "count" && args.len() == 1 => {
            match &args[0] {
                PlanExpr::Flwor(f) => f,
                _ => return None,
            }
        }
        _ => return None,
    };
    let driver_src = match &flwor.strategy {
        Strategy::NestedLoop { clauses, .. } => match clauses.first() {
            Some(PlanClause::For(_, src)) => src,
            _ => return None,
        },
        Strategy::HashJoin { probe_src, .. } => probe_src,
        Strategy::IndexLookup { .. } => return None,
    };
    let mut scattered = flwor.clone();
    match &mut scattered.strategy {
        Strategy::NestedLoop { clauses, .. } => {
            let Some(PlanClause::For(_, src)) = clauses.first_mut() else {
                unreachable!("checked above")
            };
            *src = PlanExpr::Var(DRIVER.to_string());
        }
        Strategy::HashJoin {
            probe_src,
            probe_sig,
            hoisted,
            ..
        } => {
            *probe_src = PlanExpr::Var(DRIVER.to_string());
            *probe_sig = None;
            for h in hoisted.iter_mut() {
                h.sig = None;
            }
        }
        Strategy::IndexLookup { .. } => unreachable!("checked above"),
    }
    let plan = PhysicalPlan {
        functions: plan.functions.clone(),
        body: PlanExpr::Flwor(scattered),
        mode: plan.mode,
        shard: plan.shard,
    };
    Some((plan, driver_src))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::result::serialize_sequence;
    use xmark_store::{ShardedStore, SystemId};

    const GLOBAL: &str = "<site><regions><africa><item id=\"item0\"><name>i0</name></item><item id=\"item1\"><name>i1</name></item></africa></regions><categories><category id=\"cat0\"/></categories><catgraph/><people/><open_auctions/><closed_auctions/></site>";
    const SHARD0: &str = "<site><regions/><categories/><catgraph/><people><person id=\"person0\"><name>Ada</name></person></people><open_auctions><open_auction id=\"open0\"><bidder><increase>3</increase></bidder></open_auction></open_auctions><closed_auctions/></site>";
    const SHARD1: &str = "<site><regions/><categories/><catgraph/><people><person id=\"person1\"><name>Bob</name></person><person id=\"person2\"><name>Cyd</name></person></people><open_auctions/><closed_auctions><closed_auction><price>7</price></closed_auction></closed_auctions></site>";
    const WHOLE: &str = "<site><regions><africa><item id=\"item0\"><name>i0</name></item><item id=\"item1\"><name>i1</name></item></africa></regions><categories><category id=\"cat0\"/></categories><catgraph/><people><person id=\"person0\"><name>Ada</name></person><person id=\"person1\"><name>Bob</name></person><person id=\"person2\"><name>Cyd</name></person></people><open_auctions><open_auction id=\"open0\"><bidder><increase>3</increase></bidder></open_auction></open_auctions><closed_auctions><closed_auction><price>7</price></closed_auction></closed_auctions></site>";

    fn union() -> ShardedStore {
        ShardedStore::load(SystemId::A, &[GLOBAL, SHARD0, SHARD1]).unwrap()
    }

    fn oracle(query: &str, expect_mode: ShardMode) {
        let sharded = union();
        let whole = xmark_store::EdgeStore::load(WHOLE).unwrap();
        let cs = compile(query, &sharded).unwrap();
        assert_eq!(cs.plan.shard, expect_mode, "classification of {query}");
        let scattered = execute_scattered(&cs, &sharded).unwrap();
        let cw = compile(query, &whole).unwrap();
        let expected = execute(&cw, &whole).unwrap();
        assert_eq!(
            serialize_sequence(&sharded, &scattered),
            serialize_sequence(&whole, &expected),
            "scattered != monolithic for {query}"
        );
    }

    #[test]
    fn doc_order_path_merges_across_shards() {
        oracle("/site/people/person/name", ShardMode::ParallelDocOrder);
        // Spans two sections on different shards: a real interleaving merge.
        oracle("//name", ShardMode::ParallelDocOrder);
        oracle("/site", ShardMode::ParallelDocOrder);
    }

    #[test]
    fn append_flwor_partitions_the_driver() {
        oracle(
            "for $p in /site/people/person return $p/name/text()",
            ShardMode::ParallelAppend,
        );
        // A non-equi filter keeps the strategy a NestedLoop (equi
        // predicates become IndexLookup plans, which gather).
        oracle(
            r#"for $p in /site/people/person where $p/name != "Zed" return $p/name/text()"#,
            ShardMode::ParallelAppend,
        );
        oracle(
            r#"for $p in /site/people/person where $p/@id = "person1" return $p/name/text()"#,
            ShardMode::Gather,
        );
    }

    #[test]
    fn sum_combines_partial_counts() {
        oracle(
            "count(for $p in //person return $p)",
            ShardMode::ParallelSum,
        );
    }

    #[test]
    fn gather_plans_run_on_the_union() {
        oracle(
            "for $p in //person order by $p/name return $p/name/text()",
            ShardMode::Gather,
        );
        // Attribute-final paths atomize — no mergeable order key.
        oracle("//person/@id", ShardMode::Gather);
    }

    #[test]
    fn hash_join_broadcasts_the_build_side() {
        let q = r#"for $a in /site/open_auctions/open_auction, $p in /site/people/person
                   where $a/@id = $p/@id return $p"#;
        let sharded = union();
        let cs = compile(q, &sharded).unwrap();
        // Only meaningful if the planner actually chose a hash join.
        if let PlanExpr::Flwor(f) = &cs.plan.body {
            if matches!(f.strategy, Strategy::HashJoin { .. }) {
                assert_eq!(cs.plan.shard, ShardMode::ParallelAppend);
            }
        }
        oracle(q, cs.plan.shard);
    }

    #[test]
    fn monolithic_stores_fall_through_to_plain_execute() {
        let whole = xmark_store::EdgeStore::load(WHOLE).unwrap();
        let c = compile("//person", &whole).unwrap();
        let a = execute_scattered(&c, &whole).unwrap();
        let b = execute(&c, &whole).unwrap();
        assert_eq!(
            serialize_sequence(&whole, &a),
            serialize_sequence(&whole, &b)
        );
    }
}
