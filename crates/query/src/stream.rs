//! Pull-based query execution: Volcano-style operator cursors and the
//! public [`ResultStream`].
//!
//! The materializing contract ("every operator returns a [`Sequence`]")
//! makes memory scale with result size and time-to-first-byte scale with
//! total query time, and forbids short-circuiting consumers. This module
//! replaces it at the operator level: each pipelining operator is a
//! cursor whose `next()` produces one [`Item`] at a time, pulling from
//! its input cursor on demand.
//!
//! **Pipelining operators** (never buffer the stream):
//!
//! * PathScan steps over the store's streaming axis cursors,
//! * NestedLoop clause iteration (for-clause sources are themselves
//!   cursors, so `take(1)` over a FLWOR pulls one binding),
//! * HashJoin probe emission and IndexLookup probe emission,
//! * Project (the `return` expression streams per tuple).
//!
//! **Blocking operators** (buffer internally, still expose a cursor):
//!
//! * Sort (`order by`) collects all tuples before emitting,
//! * Aggregate produces a single number,
//! * HashJoin build sides and IndexLookup indexes (memoized per
//!   execution under the planner's signatures),
//! * a PathScan step whose *input* may contain nested
//!   (ancestor/descendant) context nodes: merged output must be
//!   re-sorted into document order, which needs the whole step result.
//!   The cursor tracks this statically — child steps from non-nested
//!   contexts stay lazy, descendant steps mark their output as
//!   potentially nested.
//!
//! # Two granularities: item facade over a batch core
//!
//! Every cursor answers two pull calls:
//!
//! * `next()` — one item at a time. This is the **facade** that
//!   early-terminating consumers use: [`take`], [`exists`],
//!   [`ResultStream::next_item`], FLWOR binding iteration, and every
//!   effective-boolean-value probe. It never fetches more than the one
//!   item it returns, so the PR 4 short-circuit guarantees (`take(n)`
//!   pulls nothing past item `n`, `exists()` pulls at most one) hold
//!   unchanged.
//! * `next_batch(&mut self, ev, out)` — fill a fixed-capacity [`Batch`]
//!   per call. This is the **vectorized core** that full-drain
//!   consumers use: [`count`], [`collect_seq`] and [`write_to`] pull
//!   [`DEFAULT_BATCH`]-item blocks (tunable per stream via
//!   [`ResultStream::with_batch_size`]). The postcondition is uniform:
//!   `Ok(())` with `out` full means "maybe more", `Ok(())` with `out`
//!   not full means the cursor is exhausted, and `Err` fuses the cursor
//!   (items appended before the error stay in the batch, so a
//!   serializing drain can still flush them).
//!
//! `next_batch` has a **default path** — loop `next()` until the batch
//! fills — used by every operator without a native block drain (sorted
//! FLWORs, buffered path stages, materialized fallbacks). The hot
//! producers override it with tight loops:
//!
//! * final unpredicated `child::tag` / `descendant::tag` path
//!   expansions block-copy out of the store's columnar axis cursors
//!   (`NodeBatch` blocks off interval/edge/paged encodings and PR 5
//!   posting slices) — one `next_block` call per batch instead of one
//!   virtual `next()` per node,
//! * memoized sequence replay ([`Cursor::Shared`]) slice-clones
//!   directly at its offset,
//! * streaming FLWOR projection forwards whole batches from the
//!   `return` cursor,
//! * the hash join probes its pre-materialized probe side one
//!   [`JOIN_PROBE_RUN`]-item run at a time.
//!
//! The planner annotates operators whose *final expansion* has a native
//! block drain ([`batch_eligible`]); EXPLAIN prints them as
//! `[batch=N]` and the plan verifier's V10 invariant pins the
//! annotation to exactly those shapes.
//!
//! [`ResultStream`] is the public face: an iterator over
//! `Result<Item, EvalError>` with early-terminating [`take`],
//! [`exists`] and [`count`] fast paths and sink-generic
//! [`write_to`] serialization.
//!
//! [`take`]: ResultStream::take
//! [`exists`]: ResultStream::exists
//! [`count`]: ResultStream::count
//! [`collect_seq`]: ResultStream::collect_seq
//! [`write_to`]: ResultStream::write_to

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use xmark_store::{ChildValues, ChildrenNamed, DescendantsNamed, Node, NodeBatch, XmlStore};

use crate::ast::{Axis, NodeTest};
use crate::eval::{compare_keys, EResult, Env, EvalError, Evaluator, JoinIndex, OrderKey};
use crate::plan::*;
use crate::result::{write_item, Item, Sequence};

// ---- the batch -------------------------------------------------------------

/// A fixed-capacity block of result items — the unit of the vectorized
/// pull path (see the module docs for the item-facade/batch-core split).
///
/// The backing vector is allocated once at construction and never grows:
/// [`reset`](Batch::reset) clears it and clamps the fill limit without
/// reallocating, so a drain loop reuses one allocation for its whole
/// lifetime. Capacity defaults to [`DEFAULT_BATCH`] slots.
pub struct Batch {
    slots: Vec<Item>,
    limit: usize,
}

impl Batch {
    /// An empty batch that can hold up to `capacity` items (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Batch {
            slots: Vec::with_capacity(capacity),
            limit: capacity,
        }
    }

    /// Clear the batch and set the fill limit for the next `next_batch`
    /// call. The limit is clamped to the construction capacity, so this
    /// never reallocates.
    pub fn reset(&mut self, limit: usize) {
        self.slots.clear();
        self.limit = limit.max(1).min(self.slots.capacity());
    }

    /// Slots still unfilled before the batch reaches its limit.
    #[must_use]
    pub fn room(&self) -> usize {
        self.limit - self.slots.len()
    }

    /// Whether the batch has reached its fill limit.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.limit
    }

    /// Items currently in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the batch holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The current fill limit (`reset` argument, clamped to capacity).
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Append one item. Callers check [`is_full`](Batch::is_full) first;
    /// the batch never grows past its construction capacity.
    pub fn push(&mut self, item: Item) {
        debug_assert!(self.slots.len() < self.limit, "push past the batch limit");
        self.slots.push(item);
    }

    /// The filled items, in emission order.
    #[must_use]
    pub fn as_slice(&self) -> &[Item] {
        &self.slots
    }

    /// Move the filled items out, leaving the batch empty (capacity
    /// retained).
    pub fn drain(&mut self) -> std::vec::Drain<'_, Item> {
        self.slots.drain(..)
    }
}

impl Default for Batch {
    fn default() -> Self {
        Batch::new(DEFAULT_BATCH)
    }
}

// ---- the operator cursor ---------------------------------------------------

/// One operator cursor. `next` pulls the next item, consulting the
/// evaluator for sub-expression evaluation and the per-execution memos.
pub(crate) enum Cursor<'a> {
    /// Exhausted (or empty to begin with).
    Done,
    /// An error to report once, then fused.
    Failed(Option<EvalError>),
    /// A fully materialized sequence (scalar expressions, blocking
    /// operators, fallbacks).
    Materialized(std::vec::IntoIter<Item>),
    /// A shared sequence streamed without cloning the vector (variable
    /// bindings, path-memo hits).
    Shared(Arc<Sequence>, usize),
    /// A lazy first open of a loop-invariant path that records what it
    /// emits: one complete drain publishes the materialization to the
    /// path memos (including the store-resident value index), so every
    /// later open — in this execution or any future one — replays a
    /// [`Cursor::Shared`] instead of re-walking the store. Early
    /// termination simply drops the buffer.
    Tee {
        sig: &'a str,
        inner: Box<Cursor<'a>>,
        buf: Option<Sequence>,
    },
    /// Comma sequence: parts streamed one after another.
    Concat {
        parts: &'a [PlanExpr],
        env: Env<'a>,
        ctx: Option<Item>,
        idx: usize,
        cur: Option<Box<Cursor<'a>>>,
    },
    /// PathScan operator.
    Path(Box<PathCursor<'a>>),
    /// FLWOR pipeline: binding strategy → (optional Sort) → Project.
    Flwor(Box<FlworCursor<'a>>),
}

impl<'a> Cursor<'a> {
    /// Build the cursor for an expression. Streamable operators get real
    /// cursors; everything else evaluates eagerly into a
    /// [`Cursor::Materialized`].
    pub(crate) fn build(
        ev: &Evaluator<'a>,
        expr: &'a PlanExpr,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
    ) -> Cursor<'a> {
        match expr {
            PlanExpr::Empty => Cursor::Done,
            PlanExpr::Var(name) => match env.get(name) {
                Some(seq) => Cursor::Shared(Arc::clone(seq), 0),
                None => Cursor::Failed(Some(EvalError::UndefinedVariable(name.clone()))),
            },
            PlanExpr::Sequence(parts) => Cursor::Concat {
                parts,
                env: env.clone(),
                ctx: ctx.cloned(),
                idx: 0,
                cur: None,
            },
            PlanExpr::Path(p) => {
                if let Some(sig) = &p.memo {
                    if let Some(cached) = ev.cached_path(sig) {
                        return Cursor::Shared(cached, 0);
                    }
                    // A second open within one execution proves the
                    // loop-invariant path is being re-evaluated (an inner
                    // clause restarted per outer binding): materialize it
                    // into the path cache so every later open replays the
                    // sequence instead of re-walking the store. First
                    // opens stay lazy — a one-shot top-level path keeps
                    // its time-to-first-item — but tee what they emit, so
                    // one complete drain publishes the materialization
                    // for every later execution against this store.
                    if ev.note_streamed_path(sig) {
                        return match ev.eval_path(p, env, ctx) {
                            Ok(seq) => Cursor::Materialized(seq.into_iter()),
                            Err(e) => Cursor::Failed(Some(e)),
                        };
                    }
                    return Cursor::Tee {
                        sig,
                        inner: Box::new(path_cursor(ev, p, env, ctx, false)),
                        buf: Some(Vec::new()),
                    };
                }
                path_cursor(ev, p, env, ctx, false)
            }
            PlanExpr::Flwor(f) => flwor_cursor(f, env, ctx, false),
            other => match ev.eval(other, env, ctx) {
                Ok(seq) => Cursor::Materialized(seq.into_iter()),
                Err(e) => Cursor::Failed(Some(e)),
            },
        }
    }

    /// Pull the next item.
    pub(crate) fn next(&mut self, ev: &Evaluator<'a>) -> Option<EResult<Item>> {
        match self {
            Cursor::Done => None,
            Cursor::Failed(e) => {
                let err = e.take()?;
                *self = Cursor::Done;
                Some(Err(err))
            }
            Cursor::Materialized(iter) => iter.next().map(Ok),
            Cursor::Shared(seq, pos) => {
                let item = seq.get(*pos)?.clone();
                *pos += 1;
                Some(Ok(item))
            }
            Cursor::Tee { sig, inner, buf } => match inner.next(ev) {
                Some(Ok(item)) => {
                    if let Some(buffered) = buf {
                        buffered.push(item.clone());
                    }
                    Some(Ok(item))
                }
                Some(Err(e)) => {
                    *buf = None; // a failed walk must not be published
                    Some(Err(e))
                }
                None => {
                    if let Some(buffered) = buf.take() {
                        ev.publish_path(sig, Arc::new(buffered));
                    }
                    None
                }
            },
            Cursor::Concat {
                parts,
                env,
                ctx,
                idx,
                cur,
            } => loop {
                if let Some(c) = cur {
                    match c.next(ev) {
                        Some(r) => return Some(r),
                        None => *cur = None,
                    }
                }
                let part = parts.get(*idx)?;
                *idx += 1;
                *cur = Some(Box::new(Cursor::build(ev, part, env, ctx.as_ref())));
            },
            Cursor::Path(p) => p.next(ev),
            Cursor::Flwor(f) => f.next(ev),
        }
    }

    /// Fill `out` up to its limit. Postcondition: `Ok(())` with `out`
    /// full means the cursor may have more; `Ok(())` with `out` not full
    /// means it is exhausted; `Err` fuses the cursor — items appended
    /// before the error stay in `out` so a serializing drain can flush
    /// them first.
    pub(crate) fn next_batch(&mut self, ev: &Evaluator<'a>, out: &mut Batch) -> EResult<()> {
        match self {
            Cursor::Done => Ok(()),
            Cursor::Failed(e) => {
                let err = e.take();
                *self = Cursor::Done;
                match err {
                    Some(err) => Err(err),
                    None => Ok(()),
                }
            }
            Cursor::Materialized(iter) => {
                while !out.is_full() {
                    match iter.next() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
                Ok(())
            }
            // Replay resumes at the shared offset — a half-consumed batch
            // never re-fetches earlier items.
            Cursor::Shared(seq, pos) => {
                let end = seq.len().min(*pos + out.room());
                for item in &seq[*pos..end] {
                    out.push(item.clone());
                }
                *pos = end;
                Ok(())
            }
            Cursor::Tee { sig, inner, buf } => {
                let before = out.len();
                match inner.next_batch(ev, out) {
                    Ok(()) => {
                        if let Some(buffered) = buf.as_mut() {
                            buffered.extend(out.as_slice()[before..].iter().cloned());
                        }
                        if !out.is_full() {
                            // Inner exhausted: one complete drain publishes.
                            if let Some(buffered) = buf.take() {
                                ev.publish_path(sig, Arc::new(buffered));
                            }
                        }
                        Ok(())
                    }
                    Err(e) => {
                        *buf = None; // a failed walk must not be published
                        Err(e)
                    }
                }
            }
            Cursor::Concat {
                parts,
                env,
                ctx,
                idx,
                cur,
            } => loop {
                if let Some(c) = cur {
                    c.next_batch(ev, out)?;
                    if out.is_full() {
                        return Ok(());
                    }
                    *cur = None;
                }
                let Some(part) = parts.get(*idx) else {
                    return Ok(());
                };
                *idx += 1;
                *cur = Some(Box::new(Cursor::build(ev, part, env, ctx.as_ref())));
            },
            Cursor::Path(p) => p.next_batch(ev, out),
            Cursor::Flwor(f) => f.next_batch(ev, out),
        }
    }
}

/// Build the PathScan cursor for `p` (no memo handling — callers check
/// the path cache first). `materializing` marks callers that will drain
/// the cursor anyway (scalar contexts, the path memo): only they may
/// pay one-time index builds at open; a streaming open must keep its
/// O(first item) cost and only peeks at already-built structures.
pub(crate) fn path_cursor<'a>(
    ev: &Evaluator<'a>,
    p: &'a PathPlan,
    env: &mut Env<'a>,
    ctx: Option<&Item>,
    materializing: bool,
) -> Cursor<'a> {
    match PathCursor::build(ev, p, env, ctx, materializing) {
        Ok(cursor) => cursor,
        Err(e) => Cursor::Failed(Some(e)),
    }
}

/// Build the FLWOR cursor for `f`. `for_ebv` skips the Sort operator —
/// an effective-boolean-value consumer only asks whether *any* tuple
/// exists, which sorting cannot change.
pub(crate) fn flwor_cursor<'a>(
    f: &'a FlworPlan,
    env: &mut Env<'a>,
    ctx: Option<&Item>,
    for_ebv: bool,
) -> Cursor<'a> {
    Cursor::Flwor(Box::new(FlworCursor::build(f, env, ctx, for_ebv)))
}

// ---- PathScan --------------------------------------------------------------

/// Where a streaming path's items originate.
enum PathSource<'a> {
    /// Materialized base items (single-item bases, root-child firsts).
    Items(std::vec::IntoIter<Item>),
    /// `//tag` from the document root, streamed off the store's
    /// descendant cursor (the root element itself may match first).
    RootDescendants {
        pending: Option<Node>,
        iter: DescendantsNamed<'a>,
    },
}

impl<'a> PathSource<'a> {
    fn next(&mut self, ev: &Evaluator<'a>) -> Option<Item> {
        match self {
            PathSource::Items(iter) => iter.next(),
            PathSource::RootDescendants { pending, iter } => {
                let node = pending.take().or_else(|| iter.next())?;
                ev.count_pulls(1);
                Some(Item::Node(node))
            }
        }
    }
}

/// The in-flight expansion of one context node under a lazy step.
enum Expansion<'a> {
    /// Unpredicated `child::tag`, streamed off the store cursor.
    Children(ChildrenNamed<'a>),
    /// Unpredicated `descendant::tag`, streamed off the store cursor.
    Descendants(DescendantsNamed<'a>),
    /// Everything else: this context's matches, predicates applied,
    /// buffered per context (bounded by one node's matches).
    Queue(std::vec::IntoIter<Item>),
}

/// One planned step in the streaming pipeline.
enum Stage<'a> {
    /// Pipelining step: expands one upstream context at a time. Only
    /// legal when the upstream can never interleave (no nested context
    /// nodes), so lazy emission order *is* document order.
    Lazy {
        step: &'a PlanStep,
        active: Option<Expansion<'a>>,
    },
    /// Blocking step: drains the upstream, then applies the step with
    /// the materializing semantics (document-order merge across
    /// contexts).
    Buffered {
        step: &'a PlanStep,
        out: Option<std::vec::IntoIter<Item>>,
    },
    /// Planned `tag[@id = "…"]` probe over the whole upstream context
    /// set, with generic fallback when the store has no ID index.
    IdProbe {
        step: &'a PlanStep,
        literal: &'a str,
        out: Option<std::vec::IntoIter<Item>>,
    },
    /// Planned `…/tag/text()` tail over inlined entity columns,
    /// covering the final two steps; generic fallback when a context
    /// node is not covered.
    InlinedTail {
        tag: &'a str,
        first: &'a PlanStep,
        second: &'a PlanStep,
        out: Option<std::vec::IntoIter<Item>>,
    },
    /// Planned `…/tag/text()` tail over the shared typed child-value
    /// index, covering the final two steps — **pipelining**: one
    /// upstream context is expanded at a time (its text nodes come
    /// straight off the index), so early termination never drains the
    /// upstream. Only pushed when the upstream cannot nest and the
    /// index resolved at open time; otherwise the two generic steps
    /// are planned instead.
    ValueTail {
        values: Arc<ChildValues>,
        active: Option<std::vec::IntoIter<Item>>,
    },
}

/// The PathScan operator as a pull pipeline: a base source plus one
/// [`Stage`] per remaining step.
pub(crate) struct PathCursor<'a> {
    env: Env<'a>,
    ctx: Option<Item>,
    source: PathSource<'a>,
    stages: Vec<Stage<'a>>,
    /// Reusable node block for the vectorized drain — allocated on the
    /// first `next_batch` call, sized to the consumer's batch capacity,
    /// and never touched by the item facade.
    scratch: Option<NodeBatch>,
}

impl<'a> PathCursor<'a> {
    /// Lower a path plan into a cursor. Bases are resolved eagerly (they
    /// are at most one item on every streaming-relevant shape); when the
    /// base is a multi-item sequence the ordering invariants cannot be
    /// assumed and the whole path falls back to the materializing
    /// evaluator.
    fn build(
        ev: &Evaluator<'a>,
        p: &'a PathPlan,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
        materializing: bool,
    ) -> EResult<Cursor<'a>> {
        let steps = &p.steps;

        // Resolve the base. The root base consumes its first step
        // specially; `//tag` stays lazy unless predicated.
        let (source, start_index, mut nested) = match (&p.base, steps.first()) {
            (PlanBase::Root, Some(first))
                if matches!(
                    (&first.axis, &first.test),
                    (Axis::Descendant, NodeTest::Tag(_))
                ) && first.preds.is_empty() =>
            {
                let NodeTest::Tag(tag) = &first.test else {
                    unreachable!("guarded by the match arm");
                };
                let root = ev.store.root();
                let pending = (ev.store.tag_of(root) == Some(tag)).then_some(root);
                (
                    PathSource::RootDescendants {
                        pending,
                        // IndexScan steps stream the stabbed posting slice
                        // of the shared element index instead of walking.
                        iter: ev.descendant_iter(root, tag, &first.access),
                    },
                    1,
                    // The root may contain later matches, and same-tag
                    // descendants can nest.
                    true,
                )
            }
            _ => {
                let (items, start_index) = ev.root_base(p, env, ctx)?;
                if items.len() > 1 {
                    // Multi-item base: ordering/nesting unknown — fall
                    // back to the materializing step loop wholesale.
                    let result = ev.eval_path_uncached(p, env, ctx)?;
                    ev.count_pulls(result.len() as u64);
                    return Ok(Cursor::Materialized(result.into_iter()));
                }
                // A zero-or-one-item base cannot contain an
                // ancestor/descendant pair.
                (PathSource::Items(items.into_iter()), start_index, false)
            }
        };

        // Lower the remaining steps into stages, tracking whether the
        // flowing context set may contain ancestor/descendant pairs — the
        // one condition under which lazy concatenation is not document
        // order.
        let mut stages = Vec::with_capacity(steps.len().saturating_sub(start_index));
        let mut i = start_index;
        while i < steps.len() {
            let step = &steps[i];
            if i + 2 == steps.len() {
                if let Some(tag) = &p.inlined_tail {
                    stages.push(Stage::InlinedTail {
                        tag: tag.as_str(),
                        first: step,
                        second: &steps[i + 1],
                        out: None,
                    });
                    i += 2;
                    continue;
                }
                if !nested {
                    if let Some(tag) = &p.value_tail {
                        if let Some(values) = ev.child_values(tag, materializing) {
                            stages.push(Stage::ValueTail {
                                values,
                                active: None,
                            });
                            i += 2;
                            continue;
                        }
                    }
                }
            }
            if let StepAccess::IdProbe(literal) = &step.access {
                stages.push(Stage::IdProbe {
                    step,
                    literal: literal.as_str(),
                    out: None,
                });
                nested = false; // the probe yields at most one node
                i += 1;
                continue;
            }
            stages.push(if nested {
                Stage::Buffered { step, out: None }
            } else {
                Stage::Lazy { step, active: None }
            });
            nested = match (&step.axis, &step.test) {
                // Text nodes are leaves; attribute steps yield strings.
                (_, NodeTest::Text) | (Axis::Attribute, _) => false,
                // Same-tag (or any-tag) descendants can nest.
                (Axis::Descendant, _) => true,
                // Children of non-nested contexts cannot nest; children
                // of nested contexts still can.
                (Axis::Child, _) => nested,
            };
            i += 1;
        }

        Ok(Cursor::Path(Box::new(PathCursor {
            env: env.clone(),
            ctx: ctx.cloned(),
            source,
            stages,
            scratch: None,
        })))
    }

    fn next(&mut self, ev: &Evaluator<'a>) -> Option<EResult<Item>> {
        let PathCursor {
            env,
            ctx,
            source,
            stages,
            ..
        } = self;
        pull_through(ev, source, stages, env, ctx.as_ref())
    }

    /// Vectorized drain. The two hot final shapes — a bare base source
    /// and a final lazy expansion — block-copy out of the store's axis
    /// cursors through the reusable [`NodeBatch`] scratch; every other
    /// final stage funnels through the item facade (it buffers
    /// internally anyway, so per-item forwarding is not the bottleneck).
    fn next_batch(&mut self, ev: &Evaluator<'a>, out: &mut Batch) -> EResult<()> {
        if out.is_full() {
            return Ok(());
        }
        if self.stages.is_empty() {
            return self.drain_source_batch(ev, out);
        }
        if matches!(self.stages.last(), Some(Stage::Lazy { .. })) {
            return self.drain_lazy_batch(ev, out);
        }
        while !out.is_full() {
            match self.next(ev) {
                None => break,
                Some(Ok(item)) => out.push(item),
                Some(Err(e)) => return Err(e),
            }
        }
        Ok(())
    }

    /// Stage-free path: the batch fills straight off the base source.
    fn drain_source_batch(&mut self, ev: &Evaluator<'a>, out: &mut Batch) -> EResult<()> {
        let PathCursor {
            source, scratch, ..
        } = self;
        match source {
            PathSource::Items(iter) => {
                while !out.is_full() {
                    match iter.next() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
            }
            PathSource::RootDescendants { pending, iter } => {
                if let Some(n) = pending.take() {
                    ev.count_pulls(1);
                    out.push(Item::Node(n));
                }
                let nb = scratch.get_or_insert_with(|| NodeBatch::new(out.limit()));
                fill_node_batch(
                    ev,
                    |nb| {
                        iter.next_block(nb);
                    },
                    nb,
                    out,
                );
            }
        }
        Ok(())
    }

    /// Final lazy stage: expansions block-copy; upstream contexts are
    /// pulled through the item pipeline one node at a time.
    fn drain_lazy_batch(&mut self, ev: &Evaluator<'a>, out: &mut Batch) -> EResult<()> {
        let PathCursor {
            env,
            ctx,
            source,
            stages,
            scratch,
        } = self;
        let Some((Stage::Lazy { step, active }, upstream)) = stages.split_last_mut() else {
            return Ok(()); // unreachable: guarded by next_batch
        };
        loop {
            if out.is_full() {
                return Ok(());
            }
            if let Some(exp) = active {
                let exhausted = match exp {
                    Expansion::Children(iter) => {
                        let nb = scratch.get_or_insert_with(|| NodeBatch::new(out.limit()));
                        fill_node_batch(
                            ev,
                            |nb| {
                                iter.next_block(nb);
                            },
                            nb,
                            out,
                        )
                    }
                    Expansion::Descendants(iter) => {
                        let nb = scratch.get_or_insert_with(|| NodeBatch::new(out.limit()));
                        fill_node_batch(
                            ev,
                            |nb| {
                                iter.next_block(nb);
                            },
                            nb,
                            out,
                        )
                    }
                    Expansion::Queue(iter) => loop {
                        if out.is_full() {
                            break false;
                        }
                        match iter.next() {
                            Some(item) => out.push(item),
                            None => break true,
                        }
                    },
                };
                if !exhausted {
                    return Ok(()); // out is full; expansion may have more
                }
                *active = None;
            }
            match pull_through(ev, source, upstream, env, ctx.as_ref()) {
                None => return Ok(()),
                Some(Err(e)) => return Err(e),
                Some(Ok(Item::Node(n))) => match expand(ev, n, step, env, ctx.as_ref()) {
                    Ok(exp) => *active = Some(exp),
                    Err(e) => return Err(e),
                },
                Some(Ok(_)) => return Err(EvalError::PathOverNonNode),
            }
        }
    }
}

/// Block-copy a store axis cursor into `out` through the `nb` scratch:
/// one `next_block` call per `out.room()`-sized run instead of one
/// virtual `next()` per node. Pull accounting stays per-item-identical
/// to the facade (`count_pulls(block len)`). Returns whether the store
/// cursor is exhausted.
fn fill_node_batch(
    ev: &Evaluator<'_>,
    mut next_block: impl FnMut(&mut NodeBatch),
    nb: &mut NodeBatch,
    out: &mut Batch,
) -> bool {
    while !out.is_full() {
        nb.reset(out.room());
        next_block(nb);
        ev.count_pulls(nb.len() as u64);
        for &n in nb.as_slice() {
            out.push(Item::Node(n));
        }
        if !nb.is_full() {
            return true; // the store cursor ran dry mid-block
        }
    }
    false
}

/// Pull one item out of the stage pipeline `stages` fed by `source`.
/// Recursion over the stage slice: the last stage pulls its contexts from
/// the stages before it.
fn pull_through<'a>(
    ev: &Evaluator<'a>,
    source: &mut PathSource<'a>,
    stages: &mut [Stage<'a>],
    env: &mut Env<'a>,
    ctx: Option<&Item>,
) -> Option<EResult<Item>> {
    let Some((stage, upstream)) = stages.split_last_mut() else {
        return source.next(ev).map(Ok);
    };
    match stage {
        Stage::Lazy { step, active } => loop {
            if let Some(exp) = active {
                match exp {
                    Expansion::Children(iter) => {
                        if let Some(n) = iter.next() {
                            ev.count_pulls(1);
                            return Some(Ok(Item::Node(n)));
                        }
                    }
                    Expansion::Descendants(iter) => {
                        if let Some(n) = iter.next() {
                            ev.count_pulls(1);
                            return Some(Ok(Item::Node(n)));
                        }
                    }
                    Expansion::Queue(iter) => {
                        if let Some(item) = iter.next() {
                            return Some(Ok(item));
                        }
                    }
                }
                *active = None;
            }
            match pull_through(ev, source, upstream, env, ctx)? {
                Err(e) => return Some(Err(e)),
                Ok(Item::Node(n)) => match expand(ev, n, step, env, ctx) {
                    Ok(exp) => *active = Some(exp),
                    Err(e) => return Some(Err(e)),
                },
                Ok(_) => return Some(Err(EvalError::PathOverNonNode)),
            }
        },
        Stage::Buffered { step, out } => {
            let iter = match out {
                Some(iter) => iter,
                None => {
                    let current = match drain_upstream(ev, source, upstream, env, ctx) {
                        Ok(c) => c,
                        Err(e) => return Some(Err(e)),
                    };
                    let seq = match ev.apply_step(&current, step, env, ctx) {
                        Ok(seq) => seq,
                        Err(e) => return Some(Err(e)),
                    };
                    ev.count_pulls(seq.len() as u64);
                    out.insert(seq.into_iter())
                }
            };
            iter.next().map(Ok)
        }
        Stage::IdProbe { step, literal, out } => {
            let iter = match out {
                Some(iter) => iter,
                None => {
                    let current = match drain_upstream(ev, source, upstream, env, ctx) {
                        Ok(c) => c,
                        Err(e) => return Some(Err(e)),
                    };
                    let result = match ev.id_probe(&current, step, literal) {
                        Ok(Some(seq)) => seq,
                        // No ID index after all: evaluate generically.
                        Ok(None) => match ev.apply_step(&current, step, env, ctx) {
                            Ok(seq) => seq,
                            Err(e) => return Some(Err(e)),
                        },
                        Err(e) => return Some(Err(e)),
                    };
                    ev.count_pulls(result.len() as u64);
                    out.insert(result.into_iter())
                }
            };
            iter.next().map(Ok)
        }
        Stage::InlinedTail {
            tag,
            first,
            second,
            out,
        } => {
            let iter = match out {
                Some(iter) => iter,
                None => {
                    let current = match drain_upstream(ev, source, upstream, env, ctx) {
                        Ok(c) => c,
                        Err(e) => return Some(Err(e)),
                    };
                    let result = match ev.try_inlined_tail(&current, tag) {
                        Ok(Some(seq)) => seq,
                        // Not covered by the entity tables: apply the two
                        // remaining steps generically.
                        Ok(None) => {
                            match ev
                                .apply_step(&current, first, env, ctx)
                                .and_then(|mid| ev.apply_step(&mid, second, env, ctx))
                            {
                                Ok(seq) => seq,
                                Err(e) => return Some(Err(e)),
                            }
                        }
                        Err(e) => return Some(Err(e)),
                    };
                    ev.count_pulls(result.len() as u64);
                    out.insert(result.into_iter())
                }
            };
            iter.next().map(Ok)
        }
        Stage::ValueTail { values, active } => loop {
            if let Some(iter) = active {
                if let Some(item) = iter.next() {
                    return Some(Ok(item));
                }
                *active = None;
            }
            match pull_through(ev, source, upstream, env, ctx)? {
                Err(e) => return Some(Err(e)),
                Ok(Item::Node(n)) => {
                    let items: Vec<Item> = values
                        .get(n)
                        .iter()
                        .map(|&id| Item::Node(Node(id)))
                        .collect();
                    ev.count_pulls(items.len() as u64);
                    *active = Some(items.into_iter());
                }
                Ok(_) => return Some(Err(EvalError::PathOverNonNode)),
            }
        },
    }
}

/// Drain everything the upstream pipeline still has — the entry into a
/// blocking stage.
fn drain_upstream<'a>(
    ev: &Evaluator<'a>,
    source: &mut PathSource<'a>,
    upstream: &mut [Stage<'a>],
    env: &mut Env<'a>,
    ctx: Option<&Item>,
) -> EResult<Sequence> {
    let mut out = Vec::new();
    while let Some(r) = pull_through(ev, source, upstream, env, ctx) {
        out.push(r?);
    }
    Ok(out)
}

/// Expand one context node under a lazy step: big extents stream off the
/// store's axis cursors; predicated or specialized steps buffer this one
/// context's matches.
fn expand<'a>(
    ev: &Evaluator<'a>,
    n: Node,
    step: &'a PlanStep,
    env: &mut Env<'a>,
    ctx: Option<&Item>,
) -> EResult<Expansion<'a>> {
    if step.preds.is_empty() {
        match (&step.axis, &step.test, &step.access) {
            (Axis::Child, NodeTest::Tag(tag), StepAccess::Generic) => {
                return Ok(Expansion::Children(ev.store.children_named_iter(n, tag)));
            }
            // IndexScan descendants stream off the shared posting slice;
            // generic ones off the native axis cursor — same enum.
            (Axis::Descendant, NodeTest::Tag(tag), StepAccess::Generic | StepAccess::IndexScan) => {
                return Ok(Expansion::Descendants(ev.descendant_iter(
                    n,
                    tag,
                    &step.access,
                )));
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    ev.expand_step(n, step, env, ctx, &mut out)?;
    ev.count_pulls(out.len() as u64);
    Ok(Expansion::Queue(out.into_iter()))
}

// ---- FLWOR -----------------------------------------------------------------

/// The FLWOR operator pipeline: a tuple [`Producer`] (the binding
/// strategy), an optional Sort buffer, and the streaming Project.
pub(crate) struct FlworCursor<'a> {
    f: &'a FlworPlan,
    producer: Producer<'a>,
    mode: FlworMode<'a>,
}

enum FlworMode<'a> {
    /// No Sort: tuples stream straight through the Project expression.
    Stream { ret: Option<Box<Cursor<'a>>> },
    /// Sort: all tuples buffer with their keys, then emit in key order.
    Sorted {
        ascending: bool,
        buf: Option<std::vec::IntoIter<Item>>,
    },
}

impl<'a> FlworCursor<'a> {
    fn build(
        f: &'a FlworPlan,
        env: &mut Env<'a>,
        ctx: Option<&Item>,
        for_ebv: bool,
    ) -> FlworCursor<'a> {
        let producer = Producer::build(f, env, ctx);
        let mode = match &f.order_by {
            Some((_, ascending)) if !for_ebv => FlworMode::Sorted {
                ascending: *ascending,
                buf: None,
            },
            _ => FlworMode::Stream { ret: None },
        };
        FlworCursor { f, producer, mode }
    }

    fn next(&mut self, ev: &Evaluator<'a>) -> Option<EResult<Item>> {
        match &mut self.mode {
            FlworMode::Stream { ret } => loop {
                if let Some(cursor) = ret {
                    match cursor.next(ev) {
                        Some(r) => return Some(r),
                        None => *ret = None,
                    }
                }
                match self.producer.advance(ev) {
                    Err(e) => return Some(Err(e)),
                    Ok(false) => return None,
                    Ok(true) => {
                        let f = self.f;
                        let (env, ctx) = self.producer.tuple_scope();
                        let ctx = ctx.cloned();
                        *ret = Some(Box::new(Cursor::build(ev, &f.ret, env, ctx.as_ref())));
                    }
                }
            },
            FlworMode::Sorted { ascending, buf } => {
                let iter = match buf {
                    Some(iter) => iter,
                    None => {
                        // Sort is a blocking operator: collect every
                        // tuple's key and projected items, then emit in
                        // key order.
                        let mut tuples: Vec<(Option<OrderKey>, Sequence)> = Vec::new();
                        loop {
                            match self.producer.advance(ev) {
                                Err(e) => return Some(Err(e)),
                                Ok(false) => break,
                                Ok(true) => {
                                    let f = self.f;
                                    let (env, ctx) = self.producer.tuple_scope();
                                    let ctx = ctx.cloned();
                                    let key = match ev.order_key(f, env, ctx.as_ref()) {
                                        Ok(k) => k,
                                        Err(e) => return Some(Err(e)),
                                    };
                                    let seq = match ev.eval(&f.ret, env, ctx.as_ref()) {
                                        Ok(s) => s,
                                        Err(e) => return Some(Err(e)),
                                    };
                                    tuples.push((key, seq));
                                }
                            }
                        }
                        tuples.sort_by(|a, b| {
                            let ord = compare_keys(a.0.as_ref(), b.0.as_ref());
                            if *ascending {
                                ord
                            } else {
                                ord.reverse()
                            }
                        });
                        let flat: Sequence = tuples.into_iter().flat_map(|(_, seq)| seq).collect();
                        buf.insert(flat.into_iter())
                    }
                };
                iter.next().map(Ok)
            }
        }
    }

    /// Vectorized drain: a streaming FLWOR forwards whole batches from
    /// each tuple's `return` cursor; a sorted FLWOR buffers internally
    /// anyway and funnels through the item facade.
    fn next_batch(&mut self, ev: &Evaluator<'a>, out: &mut Batch) -> EResult<()> {
        if matches!(self.mode, FlworMode::Sorted { .. }) {
            while !out.is_full() {
                match self.next(ev) {
                    None => break,
                    Some(Ok(item)) => out.push(item),
                    Some(Err(e)) => return Err(e),
                }
            }
            return Ok(());
        }
        loop {
            if out.is_full() {
                return Ok(());
            }
            if let FlworMode::Stream { ret } = &mut self.mode {
                if let Some(cursor) = ret {
                    cursor.next_batch(ev, out)?;
                    if out.is_full() {
                        return Ok(());
                    }
                    *ret = None;
                }
            }
            if !self.producer.advance(ev)? {
                return Ok(());
            }
            let f = self.f;
            let (env, ctx) = self.producer.tuple_scope();
            let ctx = ctx.cloned();
            let cursor = Box::new(Cursor::build(ev, &f.ret, env, ctx.as_ref()));
            if let FlworMode::Stream { ret } = &mut self.mode {
                *ret = Some(cursor);
            }
        }
    }
}

/// The binding strategies as tuple producers: `advance` binds the next
/// tuple's variables in the owned environment (filters and residual
/// predicates already applied) and returns whether one exists.
enum Producer<'a> {
    Loop(NestedLoopProducer<'a>),
    Hash(HashJoinProducer<'a>),
    Lookup(IndexLookupProducer<'a>),
}

impl<'a> Producer<'a> {
    fn build(f: &'a FlworPlan, env: &mut Env<'a>, ctx: Option<&Item>) -> Producer<'a> {
        match &f.strategy {
            Strategy::NestedLoop { clauses, filters } => Producer::Loop(NestedLoopProducer {
                clauses,
                filters,
                env: env.clone(),
                ctx: ctx.cloned(),
                stack: Vec::with_capacity(clauses.len()),
                started: false,
                done: false,
            }),
            Strategy::HashJoin {
                probe_var,
                probe_src,
                probe_key,
                probe_sig,
                build_var,
                build_src,
                build_key,
                build_sig,
                hoisted,
                residual,
                ..
            } => Producer::Hash(HashJoinProducer {
                probe_var,
                probe_src,
                probe_key,
                probe_sig: probe_sig.as_deref(),
                build_var,
                build_src,
                build_key,
                build_sig: build_sig.as_deref(),
                hoisted,
                residual,
                env: env.clone(),
                ctx: ctx.cloned(),
                state: None,
                probe_bound: false,
                build_bound: false,
                done: false,
            }),
            Strategy::IndexLookup {
                var,
                source,
                inner_key,
                outer_key,
                sig,
                residual,
                ..
            } => Producer::Lookup(IndexLookupProducer {
                var,
                source,
                inner_key,
                outer_key,
                sig,
                residual,
                env: env.clone(),
                ctx: ctx.cloned(),
                matched: None,
                bound: false,
                done: false,
            }),
        }
    }

    fn advance(&mut self, ev: &Evaluator<'a>) -> EResult<bool> {
        match self {
            Producer::Loop(p) => p.advance(ev),
            Producer::Hash(p) => p.advance(ev),
            Producer::Lookup(p) => p.advance(ev),
        }
    }

    /// The environment (with the current tuple's bindings) and outer
    /// context the Project/Sort expressions evaluate in.
    fn tuple_scope(&mut self) -> (&mut Env<'a>, Option<&Item>) {
        match self {
            Producer::Loop(p) => (&mut p.env, p.ctx.as_ref()),
            Producer::Hash(p) => (&mut p.env, p.ctx.as_ref()),
            Producer::Lookup(p) => (&mut p.env, p.ctx.as_ref()),
        }
    }
}

/// Clause-by-clause iteration executing the planner's Filter schedule.
/// For-clause sources are cursors: bindings are pulled one at a time, so
/// downstream early termination (`take`, `exists`) stops the whole
/// pipeline after the current binding.
struct NestedLoopProducer<'a> {
    clauses: &'a [PlanClause],
    /// `clauses.len() + 1` filter buckets; bucket `d` is evaluated once
    /// `d` clauses are bound.
    filters: &'a [Vec<PlanExpr>],
    env: Env<'a>,
    ctx: Option<Item>,
    /// One entry per *started* clause; `For` entries hold the live source
    /// cursor. An entry's binding is pushed in `env` while it is on the
    /// stack.
    stack: Vec<ClauseState<'a>>,
    started: bool,
    done: bool,
}

enum ClauseState<'a> {
    For(Cursor<'a>),
    Let,
}

impl<'a> NestedLoopProducer<'a> {
    fn filters_pass(&mut self, ev: &Evaluator<'a>, depth: usize) -> EResult<bool> {
        for filter in &self.filters[depth] {
            if !ev.eval_ebv(filter, &mut self.env, self.ctx.as_ref())? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn advance(&mut self, ev: &Evaluator<'a>) -> EResult<bool> {
        if self.done {
            return Ok(false);
        }
        let n = self.clauses.len();
        let mut depth; // next clause index to start
        if !self.started {
            self.started = true;
            if !self.filters_pass(ev, 0)? {
                self.done = true;
                return Ok(false);
            }
            depth = 0;
        } else {
            match self.retreat(ev)? {
                Some(d) => depth = d,
                None => {
                    self.done = true;
                    return Ok(false);
                }
            }
        }
        // Descend: start clauses depth..n, backtracking on exhaustion or
        // filter failure.
        while depth < n {
            let d = depth;
            match &self.clauses[d] {
                PlanClause::Let(var, src) => {
                    let seq = ev.eval(src, &mut self.env, self.ctx.as_ref())?;
                    self.env.push(var, Arc::new(seq));
                    self.stack.push(ClauseState::Let);
                    if self.filters_pass(ev, d + 1)? {
                        depth = d + 1;
                    } else {
                        match self.retreat(ev)? {
                            Some(nd) => depth = nd,
                            None => {
                                self.done = true;
                                return Ok(false);
                            }
                        }
                    }
                }
                PlanClause::For(var, src) => {
                    let cursor = Cursor::build(ev, src, &mut self.env, self.ctx.as_ref());
                    match self.bind_next(ev, d, var, cursor)? {
                        Some(nd) => depth = nd,
                        None => match self.retreat(ev)? {
                            Some(nd) => depth = nd,
                            None => {
                                self.done = true;
                                return Ok(false);
                            }
                        },
                    }
                }
            }
        }
        Ok(true)
    }

    /// Pull bindings from clause `d`'s cursor until one passes the
    /// filter bucket; push it (cursor and binding) and return the next
    /// depth to start, or `None` when the cursor runs dry.
    fn bind_next(
        &mut self,
        ev: &Evaluator<'a>,
        d: usize,
        var: &'a str,
        mut cursor: Cursor<'a>,
    ) -> EResult<Option<usize>> {
        loop {
            match cursor.next(ev) {
                None => return Ok(None),
                Some(Err(e)) => return Err(e),
                Some(Ok(item)) => {
                    ev.count_pulls(1);
                    self.env.push(var, Arc::new(vec![item]));
                    self.stack.push(ClauseState::For(cursor));
                    if self.filters_pass(ev, d + 1)? {
                        return Ok(Some(d + 1));
                    }
                    let Some(ClauseState::For(c)) = self.stack.pop() else {
                        unreachable!("pushed a For entry above");
                    };
                    self.env.pop();
                    cursor = c;
                }
            }
        }
    }

    /// Advance the deepest advanceable clause, unwinding exhausted ones.
    /// Returns the next depth to descend from, or `None` when the whole
    /// iteration is exhausted.
    fn retreat(&mut self, ev: &Evaluator<'a>) -> EResult<Option<usize>> {
        loop {
            match self.stack.pop() {
                None => return Ok(None),
                Some(ClauseState::Let) => {
                    self.env.pop();
                }
                Some(ClauseState::For(cursor)) => {
                    self.env.pop();
                    let d = self.stack.len(); // this clause's index
                    let PlanClause::For(var, _) = &self.clauses[d] else {
                        unreachable!("For state at a For clause");
                    };
                    if let Some(next) = self.bind_next(ev, d, var, cursor)? {
                        return Ok(Some(next));
                    }
                }
            }
        }
    }
}

/// Equi-join as a hash join. The build side buffers (memoized under the
/// planner's signature); the probe side streams tuple by tuple.
struct HashJoinProducer<'a> {
    probe_var: &'a str,
    probe_src: &'a PlanExpr,
    probe_key: &'a PlanExpr,
    probe_sig: Option<&'a str>,
    build_var: &'a str,
    build_src: &'a PlanExpr,
    build_key: &'a PlanExpr,
    build_sig: Option<&'a str>,
    hoisted: &'a [HoistedEq],
    residual: &'a [PlanExpr],
    env: Env<'a>,
    ctx: Option<Item>,
    state: Option<HashJoinState>,
    probe_bound: bool,
    build_bound: bool,
    done: bool,
}

struct HashJoinState {
    table: Arc<JoinIndex>,
    left: Vec<Item>,
    probe_keys: Arc<Vec<Vec<String>>>,
    /// Per hoisted conjunct: canonical key lists aligned with `left`
    /// (computed once per execution, persisted when loop-invariant).
    hoisted_keys: Vec<Arc<Vec<Vec<String>>>>,
    /// Per hoisted conjunct: the outer side's canonical keys, evaluated
    /// once per producer open instead of once per pair.
    hoisted_outer: Vec<Vec<String>>,
    /// Next probe item index.
    li: usize,
    /// Probe-ahead queue: probe items with at least one table match,
    /// filled one [`JOIN_PROBE_RUN`]-item run at a time. The probe side
    /// is pre-materialized, so probing ahead pulls nothing extra
    /// upstream and over-runs a `take(n)` boundary by at most one run.
    runs: VecDeque<(usize, Vec<Item>)>,
    /// Distinct matched build items for the current probe item, in build
    /// order.
    matched: std::vec::IntoIter<Item>,
}

impl<'a> HashJoinProducer<'a> {
    fn advance(&mut self, ev: &Evaluator<'a>) -> EResult<bool> {
        if self.done {
            return Ok(false);
        }
        if self.state.is_none() {
            // Build side: hash the (canonicalized) keys of the inner
            // source. When loop-invariant, the table is built once per
            // execution and reused — the hoisting a relational optimizer
            // performs when the join sits inside a correlated subquery
            // (Q9). The probe key lists are memoized the same way.
            let table = ev.join_build_side(
                self.build_var,
                self.build_src,
                self.build_key,
                self.build_sig,
                &mut self.env,
                self.ctx.as_ref(),
            )?;
            let left = ev.eval(self.probe_src, &mut self.env, self.ctx.as_ref())?;
            let probe_keys = ev.join_probe_keys(
                self.probe_var,
                self.probe_key,
                self.probe_sig,
                &left,
                &mut self.env,
                self.ctx.as_ref(),
            )?;
            let mut hoisted_keys = Vec::with_capacity(self.hoisted.len());
            let mut hoisted_outer = Vec::with_capacity(self.hoisted.len());
            for h in self.hoisted {
                hoisted_keys.push(ev.join_probe_keys(
                    self.probe_var,
                    &h.probe_key,
                    h.sig.as_deref(),
                    &left,
                    &mut self.env,
                    self.ctx.as_ref(),
                )?);
                let outer = ev.eval(&h.outer, &mut self.env, self.ctx.as_ref())?;
                hoisted_outer.push(
                    outer
                        .iter()
                        .filter_map(|i| ev.canonical_join_key(i))
                        .collect(),
                );
            }
            self.state = Some(HashJoinState {
                table,
                left,
                probe_keys,
                hoisted_keys,
                hoisted_outer,
                li: 0,
                runs: VecDeque::new(),
                matched: Vec::new().into_iter(),
            });
        }
        if self.build_bound {
            self.env.pop();
            self.build_bound = false;
        }
        loop {
            // Initialized above; the guard keeps the pull path panic-free.
            let Some(state) = self.state.as_mut() else {
                return Ok(false);
            };
            if let Some(item) = state.matched.next() {
                self.env.push(self.build_var, Arc::new(vec![item]));
                self.build_bound = true;
                if self.residual_passes(ev)? {
                    return Ok(true);
                }
                self.env.pop();
                self.build_bound = false;
                continue;
            }
            // Next probe item.
            if self.probe_bound {
                self.env.pop();
                self.probe_bound = false;
            }
            // Probe ahead one run: scan up to JOIN_PROBE_RUN probe items
            // against the table in a tight loop and queue the ones with
            // matches, instead of interleaving one table probe per
            // producer call. Pull accounting is unchanged — one pull per
            // hoisted-passing probe item, exactly as the per-item path
            // counted.
            if state.runs.is_empty() {
                let mut scanned = 0;
                while state.li < state.left.len() && scanned < JOIN_PROBE_RUN {
                    let li = state.li;
                    state.li += 1;
                    scanned += 1;
                    // Hoisted probe-side equalities: a probe item failing
                    // any of them produces no pair for this open (the
                    // outer side does not involve the build variable), so
                    // skip it before probing the table — this replaces a
                    // per-pair path re-evaluation with a set intersection
                    // over precomputed keys.
                    let hoisted_pass = state
                        .hoisted_keys
                        .iter()
                        .zip(&state.hoisted_outer)
                        .all(|(keys, outer)| keys[li].iter().any(|k| outer.contains(k)));
                    if !hoisted_pass {
                        continue;
                    }
                    ev.count_pulls(1);
                    // Distinct matched build items, preserving build order
                    // (the nested loop visits inner items in order for
                    // each outer item).
                    let mut matched: Vec<(usize, &Item)> = Vec::new();
                    for key in &state.probe_keys[li] {
                        if let Some(entries) = state.table.get(key) {
                            matched.extend(entries.iter().map(|(i, item)| (*i, item)));
                        }
                    }
                    matched.sort_by_key(|(i, _)| *i);
                    matched.dedup_by_key(|(i, _)| *i);
                    if matched.is_empty() {
                        // A matchless probe item binds and immediately
                        // unbinds in the per-item path — residuals never
                        // see it, so skipping the queue is unobservable.
                        continue;
                    }
                    let items: Vec<Item> =
                        matched.into_iter().map(|(_, item)| item.clone()).collect();
                    state.runs.push_back((li, items));
                }
            }
            match state.runs.pop_front() {
                None => {
                    if state.li >= state.left.len() {
                        self.done = true;
                        return Ok(false);
                    }
                    // A full run of matchless probe items: scan the next.
                }
                Some((li, items)) => {
                    let probe_item = state.left[li].clone();
                    state.matched = items.into_iter();
                    self.env.push(self.probe_var, Arc::new(vec![probe_item]));
                    self.probe_bound = true;
                }
            }
        }
    }

    fn residual_passes(&mut self, ev: &Evaluator<'a>) -> EResult<bool> {
        for pred in self.residual {
            if !ev.eval_ebv(pred, &mut self.env, self.ctx.as_ref())? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Decorrelated lookup join (Q8's correlated inner query): a lookup index
/// over the source keyed by the inner key, probed with the outer key from
/// the enclosing scope. The index buffers (memoized); the matched items
/// stream.
struct IndexLookupProducer<'a> {
    var: &'a str,
    source: &'a PlanExpr,
    inner_key: &'a PlanExpr,
    outer_key: &'a PlanExpr,
    sig: &'a str,
    residual: &'a [PlanExpr],
    env: Env<'a>,
    ctx: Option<Item>,
    matched: Option<std::vec::IntoIter<Item>>,
    bound: bool,
    done: bool,
}

impl<'a> IndexLookupProducer<'a> {
    fn advance(&mut self, ev: &Evaluator<'a>) -> EResult<bool> {
        if self.done {
            return Ok(false);
        }
        if self.matched.is_none() {
            let index = ev.lookup_index(
                self.var,
                self.source,
                self.inner_key,
                self.sig,
                &mut self.env,
                self.ctx.as_ref(),
            )?;
            // Probe with the outer key(s).
            let outer_keys = ev.eval(self.outer_key, &mut self.env, self.ctx.as_ref())?;
            let mut matched: Vec<(usize, Item)> = Vec::new();
            for key in outer_keys {
                let Some(canonical) = ev.canonical_join_key(&key) else {
                    continue; // NaN matches nothing
                };
                if let Some(items) = index.get(&canonical) {
                    matched.extend(items.iter().cloned());
                }
            }
            matched.sort_by_key(|(i, _)| *i);
            matched.dedup_by_key(|(i, _)| *i);
            self.matched = Some(
                matched
                    .into_iter()
                    .map(|(_, item)| item)
                    .collect::<Vec<_>>()
                    .into_iter(),
            );
        }
        if self.bound {
            self.env.pop();
            self.bound = false;
        }
        loop {
            // Initialized above; the guard keeps the pull path panic-free.
            let Some(item) = self.matched.as_mut().and_then(Iterator::next) else {
                self.done = true;
                return Ok(false);
            };
            ev.count_pulls(1);
            self.env.push(self.var, Arc::new(vec![item]));
            self.bound = true;
            if self.residual_passes(ev)? {
                return Ok(true);
            }
            self.env.pop();
            self.bound = false;
        }
    }

    fn residual_passes(&mut self, ev: &Evaluator<'a>) -> EResult<bool> {
        for pred in self.residual {
            if !ev.eval_ebv(pred, &mut self.env, self.ctx.as_ref())? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

// ---- the public stream -----------------------------------------------------

/// What a [`ResultStream::write_to`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Items serialized.
    pub items: usize,
    /// Bytes written to the sink.
    pub bytes: u64,
}

/// Why a [`ResultStream::write_to`] call failed.
#[derive(Debug)]
pub enum WriteError {
    /// The query failed mid-stream (items already written stay written).
    Eval(EvalError),
    /// The sink rejected a write. For [`crate::result::IoSink`] the
    /// underlying `io::Error` is retrievable from the sink.
    Sink(fmt::Error),
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::Eval(e) => write!(f, "query failed mid-stream: {e}"),
            WriteError::Sink(_) => write!(f, "result sink rejected a write"),
        }
    }
}

impl std::error::Error for WriteError {}

impl From<EvalError> for WriteError {
    fn from(e: EvalError) -> Self {
        WriteError::Eval(e)
    }
}

/// A pull-based stream of query results.
///
/// Produced by [`crate::stream`](crate::compile::stream) /
/// [`crate::Compiled::stream`]; an `Iterator` over
/// `Result<Item, EvalError>`. Items are produced on demand: dropping the
/// stream (or using [`take`](ResultStream::take) /
/// [`exists`](ResultStream::exists)) stops pulling from the operator
/// tree, so upstream work is never performed for items nobody consumes.
pub struct ResultStream<'a> {
    ev: Evaluator<'a>,
    cursor: Cursor<'a>,
    fused: bool,
    batch: usize,
}

impl<'a> ResultStream<'a> {
    /// Open a stream over `plan` against `store`.
    pub fn new(plan: &'a PhysicalPlan, store: &'a dyn XmlStore) -> Self {
        let ev = Evaluator::new(store, plan);
        let mut env = Env::default();
        let cursor = Cursor::build(&ev, &plan.body, &mut env, None);
        ResultStream {
            ev,
            cursor,
            fused: false,
            batch: DEFAULT_BATCH,
        }
    }

    /// The store this stream reads from.
    pub fn store(&self) -> &'a dyn XmlStore {
        self.ev.store
    }

    /// Set the batch capacity the full-drain consumers ([`count`],
    /// [`collect_seq`], [`write_to`]) pull with (clamped to at least 1;
    /// default [`DEFAULT_BATCH`]). `with_batch_size(1)` degenerates to
    /// item-at-a-time pulling — the A/B baseline the benches and the
    /// oracle tests compare against. The item-facade consumers
    /// ([`next_item`], [`take`], [`exists`]) are unaffected.
    ///
    /// [`count`]: ResultStream::count
    /// [`collect_seq`]: ResultStream::collect_seq
    /// [`write_to`]: ResultStream::write_to
    /// [`next_item`]: ResultStream::next_item
    /// [`take`]: ResultStream::take
    /// [`exists`]: ResultStream::exists
    #[must_use]
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch = n.max(1);
        self
    }

    /// **Items delivered** through operator cursors so far — not cursor
    /// calls: one batched `next_batch` delivering `k` items counts `k`,
    /// exactly what `k` facade `next()` calls would count, so batched
    /// and item-at-a-time drains of the same query report the same
    /// total (pinned by the streaming oracle tests). This is the probe
    /// the early-termination tests assert on: `exists()`/`take(n)` pull
    /// strictly fewer items than a full drain, and a batched drain
    /// never over-pulls a `take(n)`/`exists()` boundary by more than
    /// one batch.
    pub fn pulls(&self) -> u64 {
        self.ev.pulls()
    }

    /// Pull the next item. After an error the stream is fused.
    pub fn next_item(&mut self) -> Option<Result<Item, EvalError>> {
        if self.fused {
            return None;
        }
        match self.cursor.next(&self.ev) {
            Some(Err(e)) => {
                self.fused = true;
                Some(Err(e))
            }
            other => other,
        }
    }

    /// At most the first `n` items, pulling nothing past them.
    pub fn take(mut self, n: usize) -> Result<Sequence, EvalError> {
        let mut out = Vec::with_capacity(n.min(64));
        while out.len() < n {
            match self.next_item() {
                None => break,
                Some(item) => out.push(item?),
            }
        }
        Ok(out)
    }

    /// Whether the result has at least one item — pulls at most one.
    pub fn exists(mut self) -> Result<bool, EvalError> {
        Ok(self.next_item().transpose()?.is_some())
    }

    /// The result cardinality, draining the stream batch-at-a-time
    /// without keeping or serializing any item.
    ///
    /// Consumes the stream: a by-ref receiver would lose the method
    /// resolution race against [`Iterator::count`] at by-value call
    /// sites. Use [`ResultStream::collect_seq`] (which borrows) when
    /// the stream must stay inspectable — e.g. to read
    /// [`ResultStream::pulls`] after the drain.
    pub fn count(mut self) -> Result<usize, EvalError> {
        if self.fused {
            return Ok(0);
        }
        let mut batch = Batch::new(self.batch);
        let mut n = 0usize;
        loop {
            batch.reset(self.batch);
            self.cursor.next_batch(&self.ev, &mut batch)?;
            n += batch.len();
            if !batch.is_full() {
                return Ok(n);
            }
        }
    }

    /// Drain into a materialized sequence — `execute()` is exactly this.
    /// Pulls batch-at-a-time through the vectorized core.
    pub fn collect_seq(&mut self) -> Result<Sequence, EvalError> {
        if self.fused {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut batch = Batch::new(self.batch);
        loop {
            batch.reset(self.batch);
            self.cursor.next_batch(&self.ev, &mut batch)?;
            let full = batch.is_full();
            out.extend(batch.drain());
            if !full {
                return Ok(out);
            }
        }
    }

    /// Serialize the stream into `sink`, one item per line, byte-identical
    /// to [`crate::result::serialize_sequence`] of the materialized
    /// result — pulling batch-at-a-time but never holding more than one
    /// batch. Items batched before a mid-stream error are flushed to the
    /// sink before the error is reported. Use
    /// [`crate::result::IoSink`] to target an [`std::io::Write`].
    pub fn write_to<W: fmt::Write + ?Sized>(
        &mut self,
        sink: &mut W,
    ) -> Result<StreamStats, WriteError> {
        let mut counted = CountingSink { sink, bytes: 0 };
        let mut items = 0usize;
        if !self.fused {
            let mut batch = Batch::new(self.batch);
            loop {
                batch.reset(self.batch);
                let res = self.cursor.next_batch(&self.ev, &mut batch);
                let full = batch.is_full();
                for item in batch.drain() {
                    if items > 0 {
                        fmt::Write::write_char(&mut counted, '\n').map_err(WriteError::Sink)?;
                    }
                    write_item(self.ev.store, &item, &mut counted).map_err(WriteError::Sink)?;
                    items += 1;
                }
                res?;
                if !full {
                    break;
                }
            }
        }
        Ok(StreamStats {
            items,
            bytes: counted.bytes,
        })
    }
}

impl Iterator for ResultStream<'_> {
    type Item = Result<Item, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_item()
    }
}

/// Counts the bytes flowing through to the wrapped sink.
struct CountingSink<'w, W: fmt::Write + ?Sized> {
    sink: &'w mut W,
    bytes: u64,
}

impl<W: fmt::Write + ?Sized> fmt::Write for CountingSink<'_, W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.sink.write_str(s)?;
        self.bytes += s.len() as u64;
        Ok(())
    }
}
