//! Post-optimizer physical-plan verifier.
//!
//! [`verify_plan`] walks a finished [`PhysicalPlan`] and re-checks every
//! structural invariant the planner is supposed to establish — the static
//! half of the correctness story, catching an ill-formed plan *before* it
//! executes rather than after the Q1–Q20 oracles notice wrong output.
//! Each check re-derives the planner's decision from first principles
//! (the store's [`PlannerCaps`], the shared element index's exact posting
//! cardinalities, the canonical signature functions) and compares it with
//! what the plan records.
//!
//! The eleven invariants:
//!
//! | code | name            | what it pins |
//! |------|-----------------|--------------|
//! | V1   | caps-access     | access annotations (`IdProbe`, `Positional`, `IndexScan`, inlined/value tails, summary counts) appear only where [`PlannerCaps`] permits, and are well-formed |
//! | V2   | density-gate    | every `IndexScan` step re-passes the posting-density gate against the live element index |
//! | V3   | naive-purity    | [`PlanMode::Naive`] plans carry no access annotations, no Aggregates, no joins, no pushdown |
//! | V4   | join-keys       | `HashJoin` / `IndexLookup` key expressions are canonical var-rooted predicate-free paths over the right variables |
//! | V5   | hoist-live      | every hoisted probe-side filter references a live join side and its persistence signature re-derives |
//! | V6   | sort-presence   | a Sort operator exists exactly where the source `order by` clauses require one (AST↔plan walk) |
//! | V7   | memo-sig        | memo / build / probe / lookup cache signatures equal their canonical recomputation |
//! | V8   | card-consistent | cardinality annotations agree with each other and with exact posting counts |
//! | V9   | var-scope       | every variable reference resolves to an enclosing binding |
//! | V10  | batch-supported | `[batch=N]` annotations appear exactly where the operator has a native vectorized drain ([`batch_eligible`]) and carry the canonical capacity |
//! | V11  | shard-merge     | the scatter-gather annotation equals [`shard_mode`] recomputed on the body — a merge operator is declared iff the plan is *not* gather-required, and it is the right one |
//!
//! [`compile_with_mode`](crate::compile::compile_with_mode) runs the
//! verifier on every plan in debug builds (`debug_assertions`); release
//! callers opt in through `Session::verify_plan` or the `plan_audit`
//! bench binary, which sweeps Q1–Q20 × all eight backends × both plan
//! modes and prints the per-invariant matrix.

use xmark_store::{PlannerCaps, XmlStore};

use crate::ast::{self, Expr, Query};
use crate::plan::*;
use crate::planner::{
    expr_estimate, invariant_join_signature, last_tag_estimate, INDEX_SCAN_DENSITY,
};

/// One of the ten verified plan invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// V1: access annotations only where [`PlannerCaps`] permits.
    CapsAccess,
    /// V2: `IndexScan` steps re-pass the posting-density gate.
    DensityGate,
    /// V3: naive plans are annotation-free nested loops.
    NaivePurity,
    /// V4: join key expressions are canonical var-rooted paths.
    JoinKeys,
    /// V5: hoisted probe filters reference a live join side.
    HoistLive,
    /// V6: Sort present exactly where `order by` requires it.
    SortPresence,
    /// V7: cache signatures equal their canonical recomputation.
    MemoSig,
    /// V8: cardinality annotations are internally consistent.
    CardConsistent,
    /// V9: every variable reference resolves in scope.
    VarScope,
    /// V10: batch annotations appear exactly where supported.
    BatchSupported,
    /// V11: the shard annotation equals its recomputed classification.
    ShardMerge,
}

impl Invariant {
    /// All invariants, in V1…V11 order.
    pub const ALL: [Invariant; 11] = [
        Invariant::CapsAccess,
        Invariant::DensityGate,
        Invariant::NaivePurity,
        Invariant::JoinKeys,
        Invariant::HoistLive,
        Invariant::SortPresence,
        Invariant::MemoSig,
        Invariant::CardConsistent,
        Invariant::VarScope,
        Invariant::BatchSupported,
        Invariant::ShardMerge,
    ];

    /// Stable short code (`"V1"`…`"V10"`).
    pub fn code(self) -> &'static str {
        match self {
            Invariant::CapsAccess => "V1",
            Invariant::DensityGate => "V2",
            Invariant::NaivePurity => "V3",
            Invariant::JoinKeys => "V4",
            Invariant::HoistLive => "V5",
            Invariant::SortPresence => "V6",
            Invariant::MemoSig => "V7",
            Invariant::CardConsistent => "V8",
            Invariant::VarScope => "V9",
            Invariant::BatchSupported => "V10",
            Invariant::ShardMerge => "V11",
        }
    }

    /// Kebab-case name, as printed by the audit matrix.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::CapsAccess => "caps-access",
            Invariant::DensityGate => "density-gate",
            Invariant::NaivePurity => "naive-purity",
            Invariant::JoinKeys => "join-keys",
            Invariant::HoistLive => "hoist-live",
            Invariant::SortPresence => "sort-presence",
            Invariant::MemoSig => "memo-sig",
            Invariant::CardConsistent => "card-consistent",
            Invariant::VarScope => "var-scope",
            Invariant::BatchSupported => "batch-supported",
            Invariant::ShardMerge => "shard-merge",
        }
    }

    fn index(self) -> usize {
        Invariant::ALL
            .iter()
            .position(|i| *i == self)
            .unwrap_or_default()
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// One invariant violation: which rule, where in the plan, and why.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// A breadcrumb into the plan tree (`body/flwor/probe_src/step[2]`).
    pub location: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} at {}: {}",
            self.invariant.code(),
            self.invariant.name(),
            self.location,
            self.message
        )
    }
}

/// The outcome of verifying one plan: how many checks ran per invariant
/// and every violation found.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    checks: [usize; 11],
    /// All violations, in plan-walk order.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// No violations found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// How many individual checks ran for `invariant`.
    pub fn checks(&self, invariant: Invariant) -> usize {
        self.checks[invariant.index()]
    }

    /// Total checks across all invariants.
    pub fn total_checks(&self) -> usize {
        self.checks.iter().sum()
    }

    /// How many violations were recorded for `invariant`.
    pub fn violations_of(&self, invariant: Invariant) -> usize {
        self.violations
            .iter()
            .filter(|v| v.invariant == invariant)
            .count()
    }

    /// Fold another report into this one (the audit accumulates per
    /// backend × query × mode cells into one matrix).
    pub fn merge(&mut self, other: &VerifyReport) {
        for (a, b) in self.checks.iter_mut().zip(other.checks.iter()) {
            *a += b;
        }
        self.violations.extend(other.violations.iter().cloned());
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} checks, {} violations",
            self.total_checks(),
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Verify `plan` against `store`, checking every invariant except the
/// AST-dependent V6 (sort-presence) — use [`verify_plan_against`] when
/// the parsed query is at hand.
pub fn verify_plan(plan: &PhysicalPlan, store: &dyn XmlStore) -> VerifyReport {
    run(plan, store, None)
}

/// Verify `plan` against `store` including the V6 sort-presence walk
/// that pairs the plan with the `query` it was compiled from.
pub fn verify_plan_against(
    query: &Query,
    plan: &PhysicalPlan,
    store: &dyn XmlStore,
) -> VerifyReport {
    run(plan, store, Some(query))
}

fn run(plan: &PhysicalPlan, store: &dyn XmlStore, query: Option<&Query>) -> VerifyReport {
    let mut v = Verifier {
        store,
        caps: store.planner_caps(),
        mode: plan.mode,
        path: Vec::new(),
        scope: Vec::new(),
        report: VerifyReport::default(),
    };
    for f in &plan.functions {
        v.path.push(format!("fn {}", f.name));
        v.scope = f.params.clone();
        v.expr(&f.body);
        v.scope.clear();
        v.path.pop();
    }
    v.path.push("body".to_string());
    v.expr(&plan.body);
    let expected = shard_mode(&plan.body);
    v.check(Invariant::ShardMerge, plan.shard == expected, || {
        format!(
            "plan annotated `{}` but the body classifies as `{}` \
             (merge operator present iff not gather-required)",
            plan.shard, expected
        )
    });
    v.path.pop();
    if let Some(query) = query {
        v.sort_presence(query, plan);
    }
    v.report
}

struct Verifier<'s> {
    store: &'s dyn XmlStore,
    caps: PlannerCaps,
    mode: PlanMode,
    path: Vec<String>,
    scope: Vec<String>,
    report: VerifyReport,
}

impl Verifier<'_> {
    fn check(&mut self, inv: Invariant, ok: bool, msg: impl FnOnce() -> String) {
        self.report.checks[inv.index()] += 1;
        if !ok {
            self.report.violations.push(Violation {
                invariant: inv,
                location: self.path.join("/"),
                message: msg(),
            });
        }
    }

    fn scoped(&mut self, label: impl Into<String>, f: impl FnOnce(&mut Self)) {
        self.path.push(label.into());
        f(self);
        self.path.pop();
    }

    // ---- expression walk -------------------------------------------------

    fn expr(&mut self, e: &PlanExpr) {
        match e {
            PlanExpr::Str(_) | PlanExpr::Num(_) | PlanExpr::Empty => {}
            PlanExpr::Var(v) => {
                let bound = self.scope.iter().any(|s| s == v);
                self.check(Invariant::VarScope, bound, || {
                    format!("variable ${v} is not bound in scope")
                });
            }
            PlanExpr::Sequence(parts) | PlanExpr::Or(parts) | PlanExpr::And(parts) => {
                for p in parts {
                    self.expr(p);
                }
            }
            PlanExpr::Cmp(_, a, b) | PlanExpr::Arith(_, a, b) | PlanExpr::Before(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            PlanExpr::Neg(inner) => self.expr(inner),
            PlanExpr::Call(_, args) => {
                for a in args {
                    self.expr(a);
                }
            }
            PlanExpr::Element(ctor) => self.ctor(ctor),
            PlanExpr::Some {
                bindings,
                satisfies,
            } => {
                let depth = self.scope.len();
                for (var, src) in bindings {
                    self.scoped(format!("some ${var}"), |s| s.expr(src));
                    self.scope.push(var.clone());
                }
                self.scoped("satisfies", |s| s.expr(satisfies));
                self.scope.truncate(depth);
            }
            PlanExpr::Path(p) => self.scoped("path", |s| s.path(p)),
            PlanExpr::Aggregate(a) => self.scoped("aggregate", |s| s.aggregate(a)),
            PlanExpr::Flwor(f) => self.scoped("flwor", |s| s.flwor(f)),
        }
    }

    fn ctor(&mut self, ctor: &PlanElement) {
        for (_, parts) in &ctor.attrs {
            for p in parts {
                if let PlanAttrPart::Expr(e) = p {
                    self.expr(e);
                }
            }
        }
        for c in &ctor.content {
            match c {
                PlanContent::Text(_) => {}
                PlanContent::Expr(e) => self.expr(e),
                PlanContent::Element(nested) => self.ctor(nested),
            }
        }
    }

    // ---- PathScan --------------------------------------------------------

    fn path(&mut self, p: &PathPlan) {
        if let PlanBase::Var(v) = &p.base {
            let bound = self.scope.iter().any(|s| s == v);
            self.check(Invariant::VarScope, bound, || {
                format!("path base ${v} is not bound in scope")
            });
        }
        if let PlanBase::Expr(e) = &p.base {
            self.scoped("base", |s| s.expr(e));
        }
        for (i, step) in p.steps.iter().enumerate() {
            self.scoped(format!("step[{i}]"), |s| s.step(step));
        }
        self.tails(p);
        self.memo(p);
        // V8: a path's estimate is its last resolved tag step's extent.
        let expect = last_tag_estimate(&p.steps);
        self.check(Invariant::CardConsistent, p.est_rows == expect, || {
            format!(
                "path est_rows {} != last tag step estimate {expect}",
                p.est_rows
            )
        });
        // V10: the batch annotation mirrors eligibility exactly — present
        // (at the canonical capacity) iff the optimized planner proved the
        // final expansion has a native block drain, absent otherwise.
        let eligible = self.mode == PlanMode::Optimized && batch_eligible(p);
        match p.batch {
            Some(n) => {
                self.check(Invariant::BatchSupported, eligible, || {
                    "batch annotation on a path without a native block drain".to_string()
                });
                self.check(
                    Invariant::BatchSupported,
                    usize::from(n) == DEFAULT_BATCH,
                    || format!("path batch capacity {n} != canonical {DEFAULT_BATCH}"),
                );
            }
            None => {
                self.check(Invariant::BatchSupported, !eligible, || {
                    "eligible final expansion is missing its batch annotation".to_string()
                });
            }
        }
    }

    fn tails(&mut self, p: &PathPlan) {
        if p.inlined_tail.is_some() {
            self.check(Invariant::CapsAccess, self.caps.inlined_values, || {
                "inlined tail on a backend without inlined entity columns".to_string()
            });
            self.check(
                Invariant::NaivePurity,
                self.mode == PlanMode::Optimized,
                || "naive plan carries an inlined tail".to_string(),
            );
        }
        if p.value_tail.is_some() {
            self.check(Invariant::CapsAccess, self.caps.child_values, || {
                "value tail on a backend without the child-value index".to_string()
            });
            self.check(Invariant::CapsAccess, p.inlined_tail.is_none(), || {
                "value tail and inlined tail annotated together".to_string()
            });
            self.check(
                Invariant::NaivePurity,
                self.mode == PlanMode::Optimized,
                || "naive plan carries a value tail".to_string(),
            );
        }
    }

    fn memo(&mut self, p: &PathPlan) {
        let invariant =
            matches!(p.base, PlanBase::Root) && p.steps.iter().all(|s| s.preds.is_empty());
        match &p.memo {
            Some(sig) => {
                self.check(Invariant::MemoSig, invariant, || {
                    "memo on a path that is not absolute and predicate-free".to_string()
                });
                let expect = path_signature(&p.steps);
                self.check(Invariant::MemoSig, *sig == expect, || {
                    format!("memo signature {sig:?} != canonical {expect:?}")
                });
            }
            None => {
                self.check(Invariant::MemoSig, !invariant, || {
                    "loop-invariant path is missing its memo signature".to_string()
                });
            }
        }
    }

    fn step(&mut self, step: &PlanStep) {
        for (i, pred) in step.preds.iter().enumerate() {
            if let PlanPred::Expr(e) = pred {
                self.scoped(format!("pred[{i}]"), |s| s.expr(e));
            }
        }
        match &step.access {
            StepAccess::Generic => {}
            StepAccess::IdProbe(lit) => self.id_probe(step, lit),
            StepAccess::Positional(spec) => self.positional(step, *spec),
            StepAccess::IndexScan => self.index_scan(step),
        }
        if self.mode == PlanMode::Naive {
            self.check(
                Invariant::NaivePurity,
                matches!(step.access, StepAccess::Generic),
                || format!("naive plan annotates a step with {:?}", step.access),
            );
        }
    }

    fn id_probe(&mut self, step: &PlanStep, lit: &str) {
        self.check(Invariant::CapsAccess, self.caps.id_index, || {
            "IdProbe on a backend without an ID index".to_string()
        });
        let shape_ok = step.axis != ast::Axis::Attribute
            && matches!(step.test, ast::NodeTest::Tag(_))
            && step.preds.len() == 1
            && id_pred_literal(&step.preds[0]).is_some_and(|l| l == lit);
        self.check(Invariant::CapsAccess, shape_ok, || {
            format!("IdProbe({lit:?}) step is not a tag[@id = {lit:?}] shape")
        });
    }

    fn positional(&mut self, step: &PlanStep, spec: xmark_store::PositionSpec) {
        self.check(Invariant::CapsAccess, self.caps.positional_index, || {
            "Positional access on a backend without a positional index".to_string()
        });
        let pred_matches = match (step.preds.as_slice(), spec) {
            ([PlanPred::Position(k)], xmark_store::PositionSpec::First(n)) => *k == n,
            ([PlanPred::Last], xmark_store::PositionSpec::Last) => true,
            _ => false,
        };
        let shape_ok = step.axis == ast::Axis::Child
            && matches!(step.test, ast::NodeTest::Tag(_))
            && pred_matches;
        self.check(Invariant::CapsAccess, shape_ok, || {
            format!("Positional({spec:?}) step does not carry the matching position predicate")
        });
    }

    fn index_scan(&mut self, step: &PlanStep) {
        self.check(Invariant::CapsAccess, self.caps.element_index, || {
            "IndexScan on a backend whose descendant access is already extent-based".to_string()
        });
        let shape_ok = step.axis == ast::Axis::Descendant
            && matches!(step.test, ast::NodeTest::Tag(_))
            && step.preds.is_empty();
        self.check(Invariant::CapsAccess, shape_ok, || {
            "IndexScan on a step that is not a predicate-free descendant tag test".to_string()
        });
        let ast::NodeTest::Tag(tag) = &step.test else {
            return;
        };
        // V2: re-run the density gate against the live element index.
        let index = self.store.indexes().element(self.store);
        self.check(Invariant::DensityGate, index.ordered(), || {
            "IndexScan but the element index cannot serve this store (ids not pre-order)"
                .to_string()
        });
        if index.ordered() {
            let postings = index.count(tag);
            let nodes = self.store.node_count();
            self.check(
                Invariant::DensityGate,
                postings * INDEX_SCAN_DENSITY <= nodes,
                || {
                    format!(
                        "IndexScan over {tag:?} fails the density gate \
                         ({postings} postings × {INDEX_SCAN_DENSITY} > {nodes} nodes)"
                    )
                },
            );
            // V8: IndexScan estimates are the exact posting cardinality.
            self.check(
                Invariant::CardConsistent,
                step.est_rows == postings as u64,
                || {
                    format!(
                        "IndexScan est_rows {} != exact posting count {postings}",
                        step.est_rows
                    )
                },
            );
        }
    }

    // ---- Aggregate -------------------------------------------------------

    fn aggregate(&mut self, a: &AggregatePlan) {
        self.check(
            Invariant::NaivePurity,
            self.mode == PlanMode::Optimized,
            || "naive plan contains an Aggregate operator".to_string(),
        );
        let summary_caps = self.caps.summary_counts;
        self.check(Invariant::CapsAccess, a.summary == summary_caps, || {
            format!(
                "Aggregate summary flag {} disagrees with backend summary_counts {summary_caps}",
                a.summary
            )
        });
        if a.indexed {
            self.check(Invariant::CapsAccess, self.caps.element_index, || {
                "indexed Aggregate on a backend without the shared element index".to_string()
            });
            self.check(Invariant::CapsAccess, !a.summary, || {
                "Aggregate claims both summary arithmetic and an index-backed count".to_string()
            });
        }
        self.scoped("input", |s| s.path(&a.input));
    }

    // ---- FLWOR -----------------------------------------------------------

    fn flwor(&mut self, f: &FlworPlan) {
        let depth = self.scope.len();
        match &f.strategy {
            Strategy::NestedLoop { clauses, filters } => self.nested_loop(clauses, filters),
            Strategy::HashJoin { .. } => self.hash_join(&f.strategy),
            Strategy::IndexLookup { .. } => self.index_lookup(&f.strategy),
        }
        // Strategy walks leave the bound variables on the scope stack for
        // the FLWOR tail (order_by key + return projection).
        if let Some((key, _asc)) = &f.order_by {
            self.scoped("order_by", |s| s.expr(key));
        }
        self.scoped("return", |s| s.expr(&f.ret));
        self.scope.truncate(depth);
    }

    fn nested_loop(&mut self, clauses: &[PlanClause], filters: &[Vec<PlanExpr>]) {
        self.check(
            Invariant::CardConsistent,
            filters.len() == clauses.len() + 1,
            || {
                format!(
                    "{} filter buckets for {} clauses (want clauses + 1)",
                    filters.len(),
                    clauses.len()
                )
            },
        );
        // Depth-0 filters run before any clause binds.
        for (i, conjunct) in filters.first().into_iter().flatten().enumerate() {
            self.scoped(format!("filter[0][{i}]"), |s| s.expr(conjunct));
        }
        for (d, clause) in clauses.iter().enumerate() {
            let (var, src) = match clause {
                PlanClause::For(v, e) | PlanClause::Let(v, e) => (v, e),
            };
            self.scoped(format!("clause ${var}"), |s| s.expr(src));
            self.scope.push(var.clone());
            for (i, conjunct) in filters.get(d + 1).into_iter().flatten().enumerate() {
                self.scoped(format!("filter[{}][{i}]", d + 1), |s| s.expr(conjunct));
            }
        }
        if self.mode == PlanMode::Naive {
            // V3: no pushdown — every conjunct sits at the deepest level.
            let shallow: usize = filters.iter().take(clauses.len()).map(Vec::len).sum();
            self.check(Invariant::NaivePurity, shallow == 0, || {
                format!("naive plan pushed {shallow} conjunct(s) above the deepest clause")
            });
        }
    }

    fn hash_join(&mut self, strategy: &Strategy) {
        let Strategy::HashJoin {
            probe_var,
            probe_src,
            probe_key,
            probe_sig,
            build_var,
            build_src,
            build_key,
            build_sig,
            hoisted,
            residual,
            est_probe,
            est_build,
            batch,
        } = strategy
        else {
            return;
        };
        self.check(
            Invariant::NaivePurity,
            self.mode == PlanMode::Optimized,
            || "naive plan contains a HashJoin".to_string(),
        );
        // V10: hash joins always probe in runs of the canonical length
        // (naive plans never build one, so the annotation is unconditional).
        self.check(
            Invariant::BatchSupported,
            *batch == Some(JOIN_PROBE_RUN as u16),
            || format!("hash join probe run {batch:?} != canonical {JOIN_PROBE_RUN}"),
        );
        self.check(Invariant::JoinKeys, probe_var != build_var, || {
            format!("HashJoin binds ${probe_var} on both sides")
        });
        // Sources evaluate in the enclosing scope; the build side must not
        // depend on the probe variable (it is materialized once).
        self.scoped("probe_src", |s| s.expr(probe_src));
        self.scoped("build_src", |s| s.expr(build_src));
        self.check(
            Invariant::JoinKeys,
            !plan_uses_var(build_src, probe_var),
            || format!("build source depends on probe variable ${probe_var}"),
        );
        self.check(
            Invariant::JoinKeys,
            is_plan_var_key(probe_key, probe_var),
            || format!("probe key is not a predicate-free path over ${probe_var}"),
        );
        self.check(
            Invariant::JoinKeys,
            is_plan_var_key(build_key, build_var),
            || format!("build key is not a predicate-free path over ${build_var}"),
        );
        // V7: cache signatures re-derive from the canonical function.
        let expect_build = invariant_join_signature(build_src, build_key);
        self.check(Invariant::MemoSig, *build_sig == expect_build, || {
            format!("build_sig {build_sig:?} != canonical {expect_build:?}")
        });
        let expect_probe = invariant_join_signature(probe_src, probe_key).map(|s| s + "#probe");
        self.check(Invariant::MemoSig, *probe_sig == expect_probe, || {
            format!("probe_sig {probe_sig:?} != canonical {expect_probe:?}")
        });
        // V8: estimates restate the source estimates.
        let (ep, eb) = (expr_estimate(probe_src), expr_estimate(build_src));
        self.check(Invariant::CardConsistent, *est_probe == ep, || {
            format!("est_probe {est_probe} != probe source estimate {ep}")
        });
        self.check(Invariant::CardConsistent, *est_build == eb, || {
            format!("est_build {est_build} != build source estimate {eb}")
        });
        for (i, h) in hoisted.iter().enumerate() {
            self.scoped(format!("hoisted[{i}]"), |s| {
                s.hoisted_eq(h, probe_var, build_var, probe_src);
            });
        }
        // Keys and residuals see their join variables.
        self.scope.push(probe_var.clone());
        self.scoped("probe_key", |s| s.expr(probe_key));
        self.scope.push(build_var.clone());
        self.scoped("build_key", |s| s.expr(build_key));
        for (i, r) in residual.iter().enumerate() {
            self.scoped(format!("residual[{i}]"), |s| s.expr(r));
        }
        // Leave both variables bound for the FLWOR tail.
    }

    fn hoisted_eq(
        &mut self,
        h: &HoistedEq,
        probe_var: &str,
        build_var: &str,
        probe_src: &PlanExpr,
    ) {
        // V5: the hoisted filter references the live probe side …
        self.check(
            Invariant::HoistLive,
            is_plan_var_key(&h.probe_key, probe_var),
            || format!("hoisted key is not a predicate-free path over ${probe_var}"),
        );
        // … and its outer side is free of both join variables, so it is
        // evaluated once per producer open, never per pair.
        self.check(
            Invariant::HoistLive,
            !plan_uses_var(&h.outer, probe_var) && !plan_uses_var(&h.outer, build_var),
            || {
                format!(
                    "hoisted outer side references a join variable \
                     (${probe_var} or ${build_var})"
                )
            },
        );
        let expect = invariant_join_signature(probe_src, &h.probe_key).map(|s| s + "#probe");
        self.check(Invariant::HoistLive, h.sig == expect, || {
            format!("hoisted sig {:?} != canonical {expect:?}", h.sig)
        });
        self.scoped("outer", |s| s.expr(&h.outer));
        let depth = self.scope.len();
        self.scope.push(probe_var.to_string());
        self.scoped("key", |s| s.expr(&h.probe_key));
        self.scope.truncate(depth);
    }

    fn index_lookup(&mut self, strategy: &Strategy) {
        let Strategy::IndexLookup {
            var,
            source,
            inner_key,
            outer_key,
            sig,
            residual,
            est_build,
        } = strategy
        else {
            return;
        };
        self.check(
            Invariant::NaivePurity,
            self.mode == PlanMode::Optimized,
            || "naive plan contains an IndexLookup join".to_string(),
        );
        self.scoped("source", |s| s.expr(source));
        self.scoped("outer_key", |s| s.expr(outer_key));
        self.check(Invariant::JoinKeys, !plan_uses_var(source, var), || {
            format!("lookup source depends on its own variable ${var}")
        });
        self.check(Invariant::JoinKeys, !plan_uses_var(outer_key, var), || {
            format!("outer key references the looked-up variable ${var}")
        });
        self.check(Invariant::JoinKeys, is_plan_var_key(inner_key, var), || {
            format!("inner key is not a predicate-free path over ${var}")
        });
        // V7: the lookup signature is "{source}|{key}" over the canonical
        // path signatures, and only exists for a loop-invariant source.
        let expect = match (source, inner_key) {
            (PlanExpr::Path(src), PlanExpr::Path(key)) if src.memo.is_some() => Some(format!(
                "{}|{}",
                path_signature(&src.steps),
                path_signature(&key.steps)
            )),
            _ => None,
        };
        self.check(Invariant::MemoSig, Some(sig.clone()) == expect, || {
            format!("lookup sig {sig:?} != canonical {expect:?}")
        });
        let eb = expr_estimate(source);
        self.check(Invariant::CardConsistent, *est_build == eb, || {
            format!("est_build {est_build} != lookup source estimate {eb}")
        });
        self.scope.push(var.clone());
        self.scoped("inner_key", |s| s.expr(inner_key));
        for (i, r) in residual.iter().enumerate() {
            self.scoped(format!("residual[{i}]"), |s| s.expr(r));
        }
        // Leave the variable bound for the FLWOR tail.
    }

    // ---- V6: sort-presence (AST ↔ plan) ----------------------------------

    /// A Sort operator must exist exactly where the source text's
    /// `order by` clauses demand one. Both trees are walked collecting
    /// every FLWOR's sort annotation (direction or absence); the planner
    /// preserves FLWOR structure one-to-one, so the multisets must match.
    fn sort_presence(&mut self, query: &Query, plan: &PhysicalPlan) {
        let mut want = Vec::new();
        collect_ast_orders(&query.body, &mut want);
        for f in &query.functions {
            collect_ast_orders(&f.body, &mut want);
        }
        let mut got = Vec::new();
        collect_plan_orders(&plan.body, &mut got);
        for f in &plan.functions {
            collect_plan_orders(&f.body, &mut got);
        }
        want.sort_unstable();
        got.sort_unstable();
        self.path.push("sort".to_string());
        self.check(Invariant::SortPresence, want == got, || {
            format!(
                "plan Sort operators {got:?} do not match the query's \
                 order-by clauses {want:?} (None = unsorted FLWOR, \
                 Some(true) = ascending)"
            )
        });
        self.path.pop();
    }
}

/// `tag[@id = "literal"]` over the planned predicate: extract the literal.
fn id_pred_literal(pred: &PlanPred) -> Option<&str> {
    let PlanPred::Expr(PlanExpr::Cmp(ast::CmpOp::Eq, lhs, rhs)) = pred else {
        return None;
    };
    let (path, lit) = match (lhs.as_ref(), rhs.as_ref()) {
        (PlanExpr::Path(p), PlanExpr::Str(s)) | (PlanExpr::Str(s), PlanExpr::Path(p)) => (p, s),
        _ => return None,
    };
    let id_shape = matches!(path.base, PlanBase::Context)
        && path.steps.len() == 1
        && path.steps[0].axis == ast::Axis::Attribute
        && path.steps[0].test == ast::NodeTest::Tag("id".to_string());
    id_shape.then_some(lit.as_str())
}

/// Is `e` a predicate-free path rooted at variable `v`? The canonical
/// join-key shape (the planned mirror of the planner's `is_var_key`).
fn is_plan_var_key(e: &PlanExpr, v: &str) -> bool {
    match e {
        PlanExpr::Path(p) => {
            matches!(&p.base, PlanBase::Var(var) if var == v)
                && p.steps.iter().all(|s| s.preds.is_empty())
        }
        _ => false,
    }
}

/// Does a planned expression reference `var` anywhere? The plan-level
/// mirror of the planner's AST `expr_uses_var`.
pub(crate) fn plan_uses_var(e: &PlanExpr, var: &str) -> bool {
    match e {
        PlanExpr::Var(v) => v == var,
        PlanExpr::Str(_) | PlanExpr::Num(_) | PlanExpr::Empty => false,
        PlanExpr::Sequence(parts) | PlanExpr::Or(parts) | PlanExpr::And(parts) => {
            parts.iter().any(|p| plan_uses_var(p, var))
        }
        PlanExpr::Cmp(_, a, b) | PlanExpr::Arith(_, a, b) | PlanExpr::Before(a, b) => {
            plan_uses_var(a, var) || plan_uses_var(b, var)
        }
        PlanExpr::Neg(inner) => plan_uses_var(inner, var),
        PlanExpr::Call(_, args) => args.iter().any(|a| plan_uses_var(a, var)),
        PlanExpr::Element(ctor) => plan_ctor_uses_var(ctor, var),
        PlanExpr::Some {
            bindings,
            satisfies,
        } => bindings.iter().any(|(_, e)| plan_uses_var(e, var)) || plan_uses_var(satisfies, var),
        PlanExpr::Path(p) => plan_path_uses_var(p, var),
        PlanExpr::Aggregate(a) => plan_path_uses_var(&a.input, var),
        PlanExpr::Flwor(f) => {
            let strategy = match &f.strategy {
                Strategy::NestedLoop { clauses, filters } => {
                    clauses.iter().any(|c| match c {
                        PlanClause::For(_, e) | PlanClause::Let(_, e) => plan_uses_var(e, var),
                    }) || filters.iter().flatten().any(|c| plan_uses_var(c, var))
                }
                Strategy::HashJoin {
                    probe_src,
                    probe_key,
                    build_src,
                    build_key,
                    hoisted,
                    residual,
                    ..
                } => {
                    plan_uses_var(probe_src, var)
                        || plan_uses_var(probe_key, var)
                        || plan_uses_var(build_src, var)
                        || plan_uses_var(build_key, var)
                        || hoisted.iter().any(|h| {
                            plan_uses_var(&h.probe_key, var) || plan_uses_var(&h.outer, var)
                        })
                        || residual.iter().any(|r| plan_uses_var(r, var))
                }
                Strategy::IndexLookup {
                    source,
                    inner_key,
                    outer_key,
                    residual,
                    ..
                } => {
                    plan_uses_var(source, var)
                        || plan_uses_var(inner_key, var)
                        || plan_uses_var(outer_key, var)
                        || residual.iter().any(|r| plan_uses_var(r, var))
                }
            };
            strategy
                || f.order_by
                    .as_ref()
                    .is_some_and(|(k, _)| plan_uses_var(k, var))
                || plan_uses_var(&f.ret, var)
        }
    }
}

fn plan_path_uses_var(p: &PathPlan, var: &str) -> bool {
    let base = match &p.base {
        PlanBase::Var(v) => v == var,
        PlanBase::Expr(e) => plan_uses_var(e, var),
        PlanBase::Root | PlanBase::Context => false,
    };
    base || p.steps.iter().any(|s| {
        s.preds.iter().any(|pred| match pred {
            PlanPred::Expr(e) => plan_uses_var(e, var),
            _ => false,
        })
    })
}

fn plan_ctor_uses_var(ctor: &PlanElement, var: &str) -> bool {
    ctor.attrs.iter().any(|(_, parts)| {
        parts.iter().any(|p| match p {
            PlanAttrPart::Expr(e) => plan_uses_var(e, var),
            PlanAttrPart::Lit(_) => false,
        })
    }) || ctor.content.iter().any(|c| match c {
        PlanContent::Expr(e) => plan_uses_var(e, var),
        PlanContent::Element(nested) => plan_ctor_uses_var(nested, var),
        PlanContent::Text(_) => false,
    })
}

// ---- AST ↔ plan sort collection ------------------------------------------

fn collect_ast_orders(e: &Expr, out: &mut Vec<Option<bool>>) {
    match e {
        Expr::Flwor(f) => {
            out.push(f.order_by.as_ref().map(|(_, asc)| *asc));
            for c in &f.clauses {
                match c {
                    ast::Clause::For(_, src) | ast::Clause::Let(_, src) => {
                        collect_ast_orders(src, out)
                    }
                }
            }
            if let Some(w) = &f.where_clause {
                collect_ast_orders(w, out);
            }
            if let Some((k, _)) = &f.order_by {
                collect_ast_orders(k, out);
            }
            collect_ast_orders(&f.ret, out);
        }
        Expr::Path { base, steps } => {
            if let ast::PathBase::Expr(inner) = base {
                collect_ast_orders(inner, out);
            }
            for s in steps {
                for p in &s.preds {
                    if let ast::Pred::Expr(inner) = p {
                        collect_ast_orders(inner, out);
                    }
                }
            }
        }
        Expr::Sequence(parts) | Expr::Or(parts) | Expr::And(parts) => {
            for p in parts {
                collect_ast_orders(p, out);
            }
        }
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::Before(a, b) => {
            collect_ast_orders(a, out);
            collect_ast_orders(b, out);
        }
        Expr::Neg(inner) => collect_ast_orders(inner, out),
        Expr::Call(_, args) => {
            for a in args {
                collect_ast_orders(a, out);
            }
        }
        Expr::Some {
            bindings,
            satisfies,
        } => {
            for (_, src) in bindings {
                collect_ast_orders(src, out);
            }
            collect_ast_orders(satisfies, out);
        }
        Expr::Element(ctor) => collect_ctor_orders(ctor, out),
        Expr::Str(_) | Expr::Num(_) | Expr::Empty | Expr::Var(_) => {}
    }
}

fn collect_ctor_orders(ctor: &ast::ElementCtor, out: &mut Vec<Option<bool>>) {
    for (_, parts) in &ctor.attrs {
        for p in parts {
            if let ast::AttrPart::Expr(e) = p {
                collect_ast_orders(e, out);
            }
        }
    }
    for c in &ctor.content {
        match c {
            ast::Content::Expr(e) => collect_ast_orders(e, out),
            ast::Content::Element(nested) => collect_ctor_orders(nested, out),
            ast::Content::Text(_) => {}
        }
    }
}

fn collect_plan_orders(e: &PlanExpr, out: &mut Vec<Option<bool>>) {
    match e {
        PlanExpr::Flwor(f) => {
            out.push(f.order_by.as_ref().map(|(_, asc)| *asc));
            match &f.strategy {
                Strategy::NestedLoop { clauses, filters } => {
                    for c in clauses {
                        match c {
                            PlanClause::For(_, src) | PlanClause::Let(_, src) => {
                                collect_plan_orders(src, out)
                            }
                        }
                    }
                    for c in filters.iter().flatten() {
                        collect_plan_orders(c, out);
                    }
                }
                Strategy::HashJoin {
                    probe_src,
                    probe_key,
                    build_src,
                    build_key,
                    hoisted,
                    residual,
                    ..
                } => {
                    collect_plan_orders(probe_src, out);
                    collect_plan_orders(build_src, out);
                    collect_plan_orders(probe_key, out);
                    collect_plan_orders(build_key, out);
                    for h in hoisted {
                        collect_plan_orders(&h.probe_key, out);
                        collect_plan_orders(&h.outer, out);
                    }
                    for r in residual {
                        collect_plan_orders(r, out);
                    }
                }
                Strategy::IndexLookup {
                    source,
                    inner_key,
                    outer_key,
                    residual,
                    ..
                } => {
                    collect_plan_orders(source, out);
                    collect_plan_orders(inner_key, out);
                    collect_plan_orders(outer_key, out);
                    for r in residual {
                        collect_plan_orders(r, out);
                    }
                }
            }
            if let Some((k, _)) = &f.order_by {
                collect_plan_orders(k, out);
            }
            collect_plan_orders(&f.ret, out);
        }
        PlanExpr::Path(p) => collect_plan_path_orders(p, out),
        PlanExpr::Aggregate(a) => collect_plan_path_orders(&a.input, out),
        PlanExpr::Sequence(parts) | PlanExpr::Or(parts) | PlanExpr::And(parts) => {
            for p in parts {
                collect_plan_orders(p, out);
            }
        }
        PlanExpr::Cmp(_, a, b) | PlanExpr::Arith(_, a, b) | PlanExpr::Before(a, b) => {
            collect_plan_orders(a, out);
            collect_plan_orders(b, out);
        }
        PlanExpr::Neg(inner) => collect_plan_orders(inner, out),
        PlanExpr::Call(_, args) => {
            for a in args {
                collect_plan_orders(a, out);
            }
        }
        PlanExpr::Some {
            bindings,
            satisfies,
        } => {
            for (_, src) in bindings {
                collect_plan_orders(src, out);
            }
            collect_plan_orders(satisfies, out);
        }
        PlanExpr::Element(ctor) => collect_plan_ctor_orders(ctor, out),
        PlanExpr::Str(_) | PlanExpr::Num(_) | PlanExpr::Empty | PlanExpr::Var(_) => {}
    }
}

fn collect_plan_path_orders(p: &PathPlan, out: &mut Vec<Option<bool>>) {
    if let PlanBase::Expr(inner) = &p.base {
        collect_plan_orders(inner, out);
    }
    for s in &p.steps {
        for pred in &s.preds {
            if let PlanPred::Expr(inner) = pred {
                collect_plan_orders(inner, out);
            }
        }
    }
}

fn collect_plan_ctor_orders(ctor: &PlanElement, out: &mut Vec<Option<bool>>) {
    for (_, parts) in &ctor.attrs {
        for p in parts {
            if let PlanAttrPart::Expr(e) = p {
                collect_plan_orders(e, out);
            }
        }
    }
    for c in &ctor.content {
        match c {
            PlanContent::Expr(e) => collect_plan_orders(e, out),
            PlanContent::Element(nested) => collect_plan_ctor_orders(nested, out),
            PlanContent::Text(_) => {}
        }
    }
}
