//! Oracle for the feature-gated intra-query parallel hash-join build:
//! with enough build items to cross the parallel threshold, the
//! partitioned build must produce exactly the result the sequential
//! nested-loop evaluation produces (the merge is in partition order, so
//! the index — and therefore the emission order — is deterministic).
//! On a single-core host the build falls back to sequential and the
//! oracle still holds.
#![cfg(feature = "parallel")]

use xmark_query::plan::{PlanMode, Strategy};
use xmark_query::{compile_with_mode, execute};
use xmark_store::EdgeStore;

/// A document whose join build side comfortably exceeds the parallel
/// threshold (256 items per worker).
fn wide_doc(people: usize) -> String {
    let mut xml = String::from("<site><people>");
    for i in 0..people {
        xml.push_str(&format!(
            "<person id=\"person{i}\"><name>p{}</name></person>",
            i % 97
        ));
    }
    xml.push_str("</people></site>");
    xml
}

#[test]
fn parallel_join_build_matches_the_nested_loop_oracle() {
    let xml = wide_doc(700);
    let store = EdgeStore::load(&xml).unwrap();
    let q = r#"for $a in /site/people/person, $b in /site/people/person
               where $a/name/text() = $b/name/text()
               return $b/@id"#;
    let optimized = compile_with_mode(q, &store, PlanMode::Optimized).unwrap();
    assert!(
        matches!(
            optimized.plan.body,
            xmark_query::plan::PlanExpr::Flwor(ref f)
                if matches!(f.strategy, Strategy::HashJoin { .. })
        ),
        "the equi-join plans as a hash join"
    );
    let naive = compile_with_mode(q, &store, PlanMode::Naive).unwrap();
    assert_eq!(
        execute(&optimized, &store).unwrap(),
        execute(&naive, &store).unwrap(),
        "parallel build diverged from the sequential oracle"
    );
}
