//! Property tests for the vectorized pull core: on arbitrary generated
//! documents and every supported batch capacity, `next_batch`-then-drain
//! must be observationally identical to repeated `next()` — same items,
//! same bytes, same pull totals — including when the drain switches
//! granularity half-way through (an item-facade prefix followed by a
//! batched tail).

use proptest::prelude::*;

use xmark_query::plan::PlanMode;
use xmark_query::result::serialize_sequence;
use xmark_query::{compile_with_mode, execute};
use xmark_store::EdgeStore;

/// Every capacity class the stream supports: degenerate, misaligned
/// with everything, the join probe run, and the widest batch.
const CAPACITIES: [usize; 4] = [1, 3, 64, 256];

/// A pool of shapes covering the batched operators: child and
/// descendant expansions, value tails, predicates, FLWOR replay, and an
/// aggregate (whose counted step must stay un-annotated).
const QUERIES: [&str; 7] = [
    "/site/a",
    "/site//a",
    "/site/a/b",
    "/site//b/text()",
    "/site/a[b]",
    "for $x in /site//a return $x/b/text()",
    "count(/site//c)",
];

/// A random element subtree, rendered straight to markup: leaves are
/// empty or text-bearing, interior nodes fan out over the same small
/// tag alphabet so the fixed query pool actually matches.
fn arb_elem() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        "[a-d]".prop_map(|t| format!("<{t}/>")),
        ("[a-d]", "[x-z]{1,4}").prop_map(|(t, s)| format!("<{t}>{s}</{t}>")),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        ("[a-d]", prop::collection::vec(inner, 0..5))
            .prop_map(|(t, kids)| format!("<{t}>{}</{t}>", kids.concat()))
    })
}

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_elem(), 0..6)
        .prop_map(|kids| format!("<site>{}</site>", kids.concat()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn next_batch_then_drain_matches_repeated_next(
        xml in arb_doc(),
        qi in 0..QUERIES.len(),
        prefix in 0..12usize,
    ) {
        let store = EdgeStore::load(&xml).expect("generated document parses");
        let compiled = compile_with_mode(QUERIES[qi], &store, PlanMode::Optimized)
            .expect("pool query compiles");

        // Materialize once first: memoized paths publish into the
        // store-resident value cache on their first complete drain, so
        // warming it up front puts every stream below — item-at-a-time
        // and batched alike — in the same replay state. Without this the
        // first drain would pull the store and every later one would
        // replay the cache, and the pull-parity assertion would compare
        // cold against warm.
        let materialized = execute(&compiled, &store).expect("query runs");
        let expected_exec = serialize_sequence(&store, &materialized);

        // Baseline: the pure item facade, one `next()` at a time.
        let mut s = compiled.stream(&store);
        let mut baseline = Vec::new();
        while let Some(item) = s.next_item() {
            baseline.push(item.expect("query runs"));
        }
        let baseline_pulls = s.pulls();
        let expected = serialize_sequence(&store, &baseline);
        prop_assert_eq!(
            expected.clone(), expected_exec,
            "item drain diverges from execute on {} over {}", QUERIES[qi], xml
        );

        for cap in CAPACITIES {
            // Full batched drain: same bytes, same pull total.
            let mut s = compiled.stream(&store).with_batch_size(cap);
            let batched = s.collect_seq().expect("batched drain runs");
            prop_assert_eq!(
                serialize_sequence(&store, &batched), expected.clone(),
                "capacity {} diverges on {} over {}", cap, QUERIES[qi], xml
            );
            prop_assert_eq!(
                s.pulls(), baseline_pulls,
                "capacity {} pull total diverges on {} over {}", cap, QUERIES[qi], xml
            );

            // Granularity switch: an item prefix, then a batched tail.
            let k = prefix.min(baseline.len());
            let mut s = compiled.stream(&store).with_batch_size(cap);
            let mut items = Vec::new();
            for _ in 0..k {
                items.push(s.next_item().expect("prefix item").expect("query runs"));
            }
            items.extend(s.collect_seq().expect("batched tail runs"));
            prop_assert_eq!(
                serialize_sequence(&store, &items), expected.clone(),
                "prefix {} + capacity {} diverges on {}", k, cap, QUERIES[qi]
            );
        }
    }
}
