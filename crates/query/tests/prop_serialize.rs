//! Property tests for sink serialization: on arbitrary constructed
//! sequences — store nodes, strings full of metacharacters, numbers
//! including the non-finite and huge-integral edge cases, booleans, and
//! recursively nested constructed elements — streaming the items into a
//! [`fmt::Write`] sink ([`write_sequence`], [`IoSink`]) must produce
//! exactly the bytes of the materializing [`serialize_sequence`].

use std::sync::Arc;

use proptest::prelude::*;

use xmark_query::result::{serialize_sequence, write_sequence, CElem, IoSink, Item};
use xmark_store::{NaiveStore, XmlStore};

fn fixture() -> NaiveStore {
    NaiveStore::load(
        r#"<site><people><person id="p&quot;0"><name>A &amp; B</name>
           <age>42</age></person><person id="p1"><name>C</name></person>
           </people></site>"#,
    )
    .expect("fixture parses")
}

/// Numbers that stress `format_number`: ordinary, integral, huge
/// integral (positional, not scientific), and non-finite.
fn arb_num() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e6..1.0e6f64,
        (-1000i64..1000i64).prop_map(|i| i as f64),
        Just(1e15),
        Just(-1e18),
        Just(1e19),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
    ]
}

/// Text with the XML metacharacters mixed in.
fn arb_text() -> impl Strategy<Value = String> {
    "[a-z<>&\" ]{0,16}"
}

fn arb_item(store: &NaiveStore) -> BoxedStrategy<Item> {
    // Every node of the fixture document is fair game. Node ids are
    // deterministic per document, so ids sampled here are valid in the
    // test body's own fixture instance.
    let nodes: Vec<xmark_store::Node> = {
        let mut all = Vec::new();
        let mut stack = vec![store.root()];
        while let Some(n) = stack.pop() {
            all.push(n);
            stack.extend(store.children(n));
        }
        all
    };
    let leaf = prop_oneof![
        arb_text().prop_map(Item::str),
        arb_num().prop_map(Item::Num),
        any::<bool>().prop_map(Item::Bool),
        (0..nodes.len()).prop_map(move |i| Item::Node(nodes[i])),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            "[a-z]{1,6}",
            prop::collection::vec(("[a-z]{1,4}", arb_text()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, attrs, children)| {
                Item::Elem(Arc::new(CElem {
                    tag,
                    attrs,
                    children,
                }))
            })
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_sequence_matches_serialize_sequence(
        seq in prop::collection::vec(arb_item(&fixture()), 0..8)
    ) {
        let store = fixture();
        let expected = serialize_sequence(&store, &seq);

        // Into a fmt::Write sink …
        let mut sunk = String::new();
        write_sequence(&store, &seq, &mut sunk).unwrap();
        prop_assert_eq!(&sunk, &expected);

        // … and through the io::Write adapter, with an accurate byte
        // count.
        let mut io = IoSink::new(Vec::<u8>::new());
        write_sequence(&store, &seq, &mut io).unwrap();
        prop_assert!(io.take_error().is_none());
        prop_assert_eq!(io.bytes(), expected.len() as u64);
        prop_assert_eq!(String::from_utf8(io.into_inner()).unwrap(), expected);
    }
}
