//! Negative tests for the post-optimizer plan verifier: hand-corrupted
//! plans must be rejected with the right per-invariant diagnostic. The
//! positive direction (every planner-emitted plan is clean) is enforced
//! on every debug-build compile and swept by the `plan_audit` binary;
//! these tests prove each invariant actually fires.

use xmark_query::ast::CmpOp;
use xmark_query::plan::{HoistedEq, PlanExpr, PlanMode, StepAccess, Strategy};
use xmark_query::verify::{verify_plan, verify_plan_against, Invariant};
use xmark_query::{compile_with_mode, parse_query, Compiled};
use xmark_store::{EdgeStore, SummaryStore, XmlStore};

const DOC: &str = r#"<site><people><person id="person0"><name>Alice</name><age>30</age></person><person id="person1"><name>Bob</name><age>31</age></person></people><regions><item featured="yes"><name>thing</name></item></regions></site>"#;

fn compile(store: &dyn XmlStore, text: &str, mode: PlanMode) -> Compiled {
    compile_with_mode(text, store, mode).expect("test query compiles")
}

/// The first step sequence of the plan body, however it is nested.
fn body_path(compiled: &mut Compiled) -> &mut xmark_query::plan::PathPlan {
    match &mut compiled.plan.body {
        PlanExpr::Path(p) => p,
        PlanExpr::Flwor(f) => match &mut f.strategy {
            Strategy::NestedLoop { clauses, .. } => match &mut clauses[0] {
                xmark_query::plan::PlanClause::For(_, PlanExpr::Path(p))
                | xmark_query::plan::PlanClause::Let(_, PlanExpr::Path(p)) => p,
                other => panic!("unexpected clause source: {other:?}"),
            },
            other => panic!("unexpected strategy: {other:?}"),
        },
        other => panic!("unexpected body: {other:?}"),
    }
}

#[test]
fn clean_plan_verifies_clean() {
    let store = EdgeStore::load(DOC).unwrap();
    let q = "for $p in /site/people/person order by $p/name/text() return $p/name/text()";
    let parsed = parse_query(q).unwrap();
    let compiled = compile(&store, q, PlanMode::Optimized);
    let report = verify_plan_against(&parsed, &compiled.plan, &store);
    assert!(report.is_clean(), "clean plan flagged:\n{report}");
    assert!(report.total_checks() > 0);
}

#[test]
fn index_scan_on_capless_backend_is_rejected() {
    // System D's architecture *is* the index (element_index = false):
    // an IndexScan annotation there violates V1 caps-access.
    let store = SummaryStore::load(DOC).unwrap();
    assert!(!store.planner_caps().element_index);
    let mut compiled = compile(&store, "/site//person", PlanMode::Optimized);
    let path = body_path(&mut compiled);
    let step = path.steps.last_mut().unwrap();
    assert!(matches!(step.access, StepAccess::Generic));
    step.access = StepAccess::IndexScan;

    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::CapsAccess) > 0, "{report}");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("IndexScan")),
        "diagnostic names the annotation:\n{report}"
    );
}

#[test]
fn dense_index_scan_fails_the_density_gate() {
    // Nearly every node is an `a`: postings × 4 exceeds the node count,
    // so the planner must not stab — forcing the annotation violates V2
    // density-gate.
    let store = EdgeStore::load("<site><a/><a/><a/><a/><a/><a/></site>").unwrap();
    let mut compiled = compile(&store, "/site//a", PlanMode::Optimized);
    let path = body_path(&mut compiled);
    let step = path.steps.last_mut().unwrap();
    assert!(
        matches!(step.access, StepAccess::Generic),
        "planner should have refused the stab on a dense tag"
    );
    step.access = StepAccess::IndexScan;

    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::DensityGate) > 0, "{report}");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("density gate")),
        "diagnostic names the gate:\n{report}"
    );
}

#[test]
fn naive_plan_with_access_annotation_is_rejected() {
    let store = EdgeStore::load(DOC).unwrap();
    let mut compiled = compile(&store, "/site//person", PlanMode::Naive);
    let path = body_path(&mut compiled);
    path.steps.last_mut().unwrap().access = StepAccess::IndexScan;

    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::NaivePurity) > 0, "{report}");
}

#[test]
fn dangling_hoisted_filter_is_rejected() {
    // A hoisted probe-side filter whose outer side references a join
    // variable would be evaluated with the variable unbound at producer
    // open — V5 hoist-live must catch both the dead key and the live-var
    // leak.
    let store = EdgeStore::load(DOC).unwrap();
    let q = r#"for $a in /site/people/person, $b in /site/people/person
               where $a/name/text() = $b/name/text() return $a"#;
    let mut compiled = compile(&store, q, PlanMode::Optimized);
    let PlanExpr::Flwor(f) = &mut compiled.plan.body else {
        panic!("body is a FLWOR");
    };
    let Strategy::HashJoin {
        probe_var, hoisted, ..
    } = &mut f.strategy
    else {
        panic!("equi-join plans as a hash join");
    };
    hoisted.push(HoistedEq {
        probe_key: PlanExpr::Str("not a key path".into()),
        outer: PlanExpr::Var(probe_var.clone()),
        sig: None,
    });

    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::HoistLive) >= 2, "{report}");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("join variable")),
        "diagnostic names the leaked variable:\n{report}"
    );
}

#[test]
fn swapped_join_keys_are_rejected() {
    // Keys rooted at the wrong variable break the canonical probe/build
    // orientation — V4 join-keys.
    let store = EdgeStore::load(DOC).unwrap();
    let q = r#"for $a in /site/people/person, $b in /site/people/person
               where $a/name/text() = $b/name/text() return $a"#;
    let mut compiled = compile(&store, q, PlanMode::Optimized);
    let PlanExpr::Flwor(f) = &mut compiled.plan.body else {
        panic!("body is a FLWOR");
    };
    let Strategy::HashJoin {
        probe_key,
        build_key,
        ..
    } = &mut f.strategy
    else {
        panic!("equi-join plans as a hash join");
    };
    std::mem::swap(probe_key, build_key);

    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::JoinKeys) >= 2, "{report}");
}

#[test]
fn missing_sort_is_rejected() {
    // Dropping the Sort operator under a query that orders — V6
    // sort-presence (the AST↔plan walk).
    let store = EdgeStore::load(DOC).unwrap();
    let q = "for $p in /site/people/person order by $p/name/text() return $p";
    let parsed = parse_query(q).unwrap();
    let mut compiled = compile(&store, q, PlanMode::Optimized);
    let PlanExpr::Flwor(f) = &mut compiled.plan.body else {
        panic!("body is a FLWOR");
    };
    f.order_by = None;

    let report = verify_plan_against(&parsed, &compiled.plan, &store);
    assert!(
        report.violations_of(Invariant::SortPresence) > 0,
        "{report}"
    );
}

#[test]
fn corrupted_memo_signature_is_rejected() {
    let store = EdgeStore::load(DOC).unwrap();
    let mut compiled = compile(&store, "/site/people/person", PlanMode::Optimized);
    let path = body_path(&mut compiled);
    assert!(path.memo.is_some(), "absolute predicate-free path memoizes");
    path.memo = Some("bogus|signature".into());

    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::MemoSig) > 0, "{report}");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("canonical")),
        "diagnostic shows the canonical recomputation:\n{report}"
    );
}

#[test]
fn inconsistent_cardinality_is_rejected() {
    let store = EdgeStore::load(DOC).unwrap();
    let mut compiled = compile(&store, "/site/people/person", PlanMode::Optimized);
    body_path(&mut compiled).est_rows += 1000;

    let report = verify_plan(&compiled.plan, &store);
    assert!(
        report.violations_of(Invariant::CardConsistent) > 0,
        "{report}"
    );
}

#[test]
fn batch_annotation_must_mirror_eligibility() {
    let store = EdgeStore::load(DOC).unwrap();
    // The final child expansion has a native block drain, so the
    // optimized plan is annotated; stripping it violates V10.
    let mut compiled = compile(&store, "/site/people/person", PlanMode::Optimized);
    {
        let path = body_path(&mut compiled);
        assert!(path.batch.is_some(), "eligible path is annotated");
        path.batch = None;
    }
    let report = verify_plan(&compiled.plan, &store);
    assert!(
        report.violations_of(Invariant::BatchSupported) > 0,
        "{report}"
    );

    // A non-canonical capacity is equally rejected.
    let mut compiled = compile(&store, "/site/people/person", PlanMode::Optimized);
    body_path(&mut compiled).batch = Some(7);
    let report = verify_plan(&compiled.plan, &store);
    assert!(
        report.violations_of(Invariant::BatchSupported) > 0,
        "{report}"
    );

    // Naive plans stay on the one-item pull path: annotating one is a
    // violation even at the canonical capacity.
    let mut compiled = compile(&store, "/site/people/person", PlanMode::Naive);
    {
        let path = body_path(&mut compiled);
        assert!(path.batch.is_none(), "naive plans are never annotated");
        path.batch = Some(xmark_query::plan::DEFAULT_BATCH as u16);
    }
    let report = verify_plan(&compiled.plan, &store);
    assert!(
        report.violations_of(Invariant::BatchSupported) > 0,
        "{report}"
    );
}

#[test]
fn hash_join_with_corrupted_probe_run_is_rejected() {
    let store = EdgeStore::load(DOC).unwrap();
    let q = r#"for $a in /site/people/person, $b in /site/people/person
               where $a/name/text() = $b/name/text() return $a"#;
    let mut compiled = compile(&store, q, PlanMode::Optimized);
    let PlanExpr::Flwor(f) = &mut compiled.plan.body else {
        panic!("body is a FLWOR");
    };
    let Strategy::HashJoin { batch, .. } = &mut f.strategy else {
        panic!("equi-join plans as a hash join");
    };
    assert_eq!(
        *batch,
        Some(xmark_query::plan::JOIN_PROBE_RUN as u16),
        "hash joins probe in canonical runs"
    );
    *batch = None;

    let report = verify_plan(&compiled.plan, &store);
    assert!(
        report.violations_of(Invariant::BatchSupported) > 0,
        "{report}"
    );
}

#[test]
fn unbound_variable_is_reported() {
    let store = EdgeStore::load(DOC).unwrap();
    let mut compiled = compile(&store, "/site/people/person", PlanMode::Optimized);
    compiled.plan.body = PlanExpr::Cmp(
        CmpOp::Eq,
        Box::new(compiled.plan.body.clone()),
        Box::new(PlanExpr::Var("nowhere".into())),
    );

    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::VarScope) > 0, "{report}");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("$nowhere")),
        "diagnostic names the variable:\n{report}"
    );
}

#[test]
fn corrupted_shard_annotation_is_rejected() {
    use xmark_query::plan::ShardMode;
    let store = EdgeStore::load(DOC).unwrap();

    // A scatterable FLWOR mislabeled as gather-required: a merge
    // operator must be declared for non-gather shapes.
    let mut compiled = compile(
        &store,
        "for $p in /site/people/person return $p/name/text()",
        PlanMode::Optimized,
    );
    assert_eq!(compiled.plan.shard, ShardMode::ParallelAppend);
    compiled.plan.shard = ShardMode::Gather;
    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::ShardMerge) > 0, "{report}");

    // An order-by FLWOR mislabeled as parallel: a merge operator may
    // only be declared where the classification supports it.
    let mut compiled = compile(
        &store,
        "for $p in /site/people/person order by $p/name/text() return $p",
        PlanMode::Optimized,
    );
    assert_eq!(compiled.plan.shard, ShardMode::Gather);
    compiled.plan.shard = ShardMode::ParallelAppend;
    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::ShardMerge) > 0, "{report}");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("gather")),
        "diagnostic explains the classification:\n{report}"
    );

    // The wrong *merge operator* is as invalid as a missing one.
    let mut compiled = compile(
        &store,
        "count(for $p in /site/people/person return $p)",
        PlanMode::Optimized,
    );
    assert_eq!(compiled.plan.shard, ShardMode::ParallelSum);
    compiled.plan.shard = ShardMode::ParallelAppend;
    let report = verify_plan(&compiled.plan, &store);
    assert!(report.violations_of(Invariant::ShardMerge) > 0, "{report}");
}
