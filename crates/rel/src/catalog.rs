//! The catalog: named tables, named indexes, and metadata accounting.
//!
//! Table 2 of the paper shows that System A (one big heap relation) spends
//! *half* as much time compiling Q1 as System B (a highly fragmenting
//! mapping) because "System A has to access fewer metadata to compile a
//! query". To reproduce that effect honestly, every catalog lookup during
//! query compilation goes through [`Catalog::lookup_table`] /
//! [`Catalog::lookup_hash_index`], which count accesses; the fragmented store
//! has hundreds of tables and pays proportionally.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::index::{BTreeIndex, HashIndex};
use crate::table::Table;

/// A named collection of tables and secondary indexes.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    hash_indexes: HashMap<String, HashIndex>,
    btree_indexes: HashMap<String, BTreeIndex>,
    metadata_accesses: AtomicU64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `table` under its own name.
    ///
    /// # Panics
    /// Panics on duplicate registration — a store-construction bug.
    pub fn register_table(&mut self, table: Table) {
        let name = table.name.clone();
        let previous = self.tables.insert(name.clone(), table);
        assert!(previous.is_none(), "table {name} registered twice");
    }

    /// Register a hash index under `name`.
    pub fn register_hash_index(&mut self, name: impl Into<String>, index: HashIndex) {
        let name = name.into();
        let previous = self.hash_indexes.insert(name.clone(), index);
        assert!(previous.is_none(), "hash index {name} registered twice");
    }

    /// Register a B-tree index under `name`.
    pub fn register_btree_index(&mut self, name: impl Into<String>, index: BTreeIndex) {
        let name = name.into();
        let previous = self.btree_indexes.insert(name.clone(), index);
        assert!(previous.is_none(), "btree index {name} registered twice");
    }

    /// Look up a table, **counting the access** (compile-time metadata
    /// cost).
    pub fn lookup_table(&self, name: &str) -> Option<&Table> {
        self.metadata_accesses.fetch_add(1, Ordering::Relaxed);
        self.tables.get(name)
    }

    /// Look up a hash index, counting the access.
    pub fn lookup_hash_index(&self, name: &str) -> Option<&HashIndex> {
        self.metadata_accesses.fetch_add(1, Ordering::Relaxed);
        self.hash_indexes.get(name)
    }

    /// Look up a B-tree index, counting the access.
    pub fn lookup_btree_index(&self, name: &str) -> Option<&BTreeIndex> {
        self.metadata_accesses.fetch_add(1, Ordering::Relaxed);
        self.btree_indexes.get(name)
    }

    /// Number of registered tables ("breadth" of the physical mapping).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Metadata accesses since the last [`Catalog::reset_metadata_counter`].
    pub fn metadata_accesses(&self) -> u64 {
        self.metadata_accesses.load(Ordering::Relaxed)
    }

    /// Reset the access counter (the harness does this per query).
    pub fn reset_metadata_counter(&self) {
        self.metadata_accesses.store(0, Ordering::Relaxed);
    }

    /// Total resident bytes of tables and indexes — Table 1's "Size".
    pub fn heap_size_bytes(&self) -> usize {
        self.tables
            .values()
            .map(Table::heap_size_bytes)
            .sum::<usize>()
            + self
                .hash_indexes
                .values()
                .map(HashIndex::heap_size_bytes)
                .sum::<usize>()
            + self
                .btree_indexes
                .values()
                .map(BTreeIndex::heap_size_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new("node", &["id", "tag"]);
        t.insert(vec![Value::Int(0), Value::str("site")]);
        let idx = HashIndex::build(&t, 1);
        c.register_table(t);
        c.register_hash_index("node.tag", idx);
        c
    }

    #[test]
    fn lookups_count_metadata_accesses() {
        let c = catalog();
        assert_eq!(c.metadata_accesses(), 0);
        let _ = c.lookup_table("node");
        let _ = c.lookup_table("node");
        let _ = c.lookup_hash_index("node.tag");
        assert_eq!(c.metadata_accesses(), 3);
        c.reset_metadata_counter();
        assert_eq!(c.metadata_accesses(), 0);
    }

    #[test]
    fn missing_lookups_still_count() {
        let c = catalog();
        assert!(c.lookup_table("nope").is_none());
        assert_eq!(c.metadata_accesses(), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_table_panics() {
        let mut c = catalog();
        c.register_table(Table::new("node", &["id"]));
    }

    #[test]
    fn sizes_aggregate_tables_and_indexes() {
        let c = catalog();
        assert!(c.heap_size_bytes() > 0);
        assert_eq!(c.table_count(), 1);
    }
}
