//! Hash and B-tree indexes over table columns.
//!
//! The relational stores build these during bulkload (their cost is part of
//! the Table 1 load times) and the query compiler chooses between an index
//! lookup and a scan — the difference the paper's Q1 baseline measures.

use std::collections::{BTreeMap, HashMap};

use crate::table::{RowId, Table};
use crate::value::{OrdValue, Value};

/// Equality index: value → row ids.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<OrdValue, Vec<RowId>>,
}

impl HashIndex {
    /// Build over one column of `table`.
    pub fn build(table: &Table, column: usize) -> Self {
        let mut map: HashMap<OrdValue, Vec<RowId>> = HashMap::with_capacity(table.len());
        for (rid, row) in table.scan() {
            if row[column].is_null() {
                continue; // NULLs are not indexed, matching SQL semantics.
            }
            map.entry(OrdValue(row[column].clone()))
                .or_default()
                .push(rid);
        }
        HashIndex { map }
    }

    /// Rows with exactly this key.
    pub fn get(&self, key: &Value) -> &[RowId] {
        self.map
            .get(&OrdValue(key.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Approximate resident bytes.
    pub fn heap_size_bytes(&self) -> usize {
        let mut total = self.map.capacity()
            * (std::mem::size_of::<OrdValue>() + std::mem::size_of::<Vec<RowId>>());
        for (k, v) in &self.map {
            total += v.capacity() * std::mem::size_of::<RowId>();
            if let Value::Str(s) = &k.0 {
                total += s.capacity();
            }
        }
        total
    }
}

/// Ordered index: value → row ids, supporting range scans.
#[derive(Debug, Clone, Default)]
pub struct BTreeIndex {
    map: BTreeMap<OrdValue, Vec<RowId>>,
}

impl BTreeIndex {
    /// Build over one column of `table`.
    pub fn build(table: &Table, column: usize) -> Self {
        let mut map: BTreeMap<OrdValue, Vec<RowId>> = BTreeMap::new();
        for (rid, row) in table.scan() {
            if row[column].is_null() {
                continue;
            }
            map.entry(OrdValue(row[column].clone()))
                .or_default()
                .push(rid);
        }
        BTreeIndex { map }
    }

    /// Rows with exactly this key.
    pub fn get(&self, key: &Value) -> &[RowId] {
        self.map
            .get(&OrdValue(key.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Rows whose key is `>= lo` (when given) and `<= hi` (when given).
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<RowId> {
        use std::ops::Bound::*;
        let lo_bound = lo.map_or(Unbounded, |v| Included(OrdValue(v.clone())));
        let hi_bound = hi.map_or(Unbounded, |v| Included(OrdValue(v.clone())));
        let mut out = Vec::new();
        for (_, rows) in self.map.range((lo_bound, hi_bound)) {
            out.extend_from_slice(rows);
        }
        out
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        self.map.keys().map(|k| &k.0)
    }

    /// Approximate resident bytes.
    pub fn heap_size_bytes(&self) -> usize {
        let mut total = 0;
        for (k, v) in &self.map {
            total += std::mem::size_of::<OrdValue>()
                + std::mem::size_of::<Vec<RowId>>()
                + v.capacity() * std::mem::size_of::<RowId>();
            if let Value::Str(s) = &k.0 {
                total += s.capacity();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("t", &["k", "v"]);
        t.insert(vec![Value::str("a"), Value::Int(1)]);
        t.insert(vec![Value::str("b"), Value::Int(2)]);
        t.insert(vec![Value::str("a"), Value::Int(3)]);
        t.insert(vec![Value::Null, Value::Int(4)]);
        t
    }

    #[test]
    fn hash_index_finds_duplicates() {
        let t = table();
        let idx = HashIndex::build(&t, 0);
        assert_eq!(idx.get(&Value::str("a")), &[0, 2]);
        assert_eq!(idx.get(&Value::str("z")), &[] as &[RowId]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let t = table();
        let idx = HashIndex::build(&t, 0);
        assert_eq!(idx.get(&Value::Null), &[] as &[RowId]);
    }

    #[test]
    fn btree_point_and_range() {
        let mut t = Table::new("n", &["x"]);
        for i in 0..10 {
            t.insert(vec![Value::Int(i)]);
        }
        let idx = BTreeIndex::build(&t, 0);
        assert_eq!(idx.get(&Value::Int(7)), &[7]);
        let mid = idx.range(Some(&Value::Int(3)), Some(&Value::Int(5)));
        assert_eq!(mid, vec![3, 4, 5]);
        let tail = idx.range(Some(&Value::Int(8)), None);
        assert_eq!(tail, vec![8, 9]);
        let head = idx.range(None, Some(&Value::Int(1)));
        assert_eq!(head, vec![0, 1]);
    }

    #[test]
    fn btree_orders_mixed_numeric_keys() {
        let mut t = Table::new("n", &["x"]);
        t.insert(vec![Value::Float(2.5)]);
        t.insert(vec![Value::Int(2)]);
        t.insert(vec![Value::Int(3)]);
        let idx = BTreeIndex::build(&t, 0);
        let keys: Vec<String> = idx.keys().map(|k| k.to_string()).collect();
        assert_eq!(keys, vec!["2", "2.5", "3"]);
    }

    #[test]
    fn index_sizes_are_positive() {
        let t = table();
        assert!(HashIndex::build(&t, 0).heap_size_bytes() > 0);
        assert!(BTreeIndex::build(&t, 0).heap_size_bytes() > 0);
    }
}
