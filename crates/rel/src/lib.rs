//! A miniature relational engine.
//!
//! The paper's Systems A, B and C are "based on relational technology, come
//! with a cost-based query optimizer" (§7). To reproduce their behaviour we
//! need an actual relational substrate to map XML onto: typed values,
//! row-addressable tables, hash and B-tree indexes, and the handful of
//! physical operators the XMark query plans need (scans, filters, hash
//! joins, sorts, grouping).
//!
//! The engine is deliberately minimal but real: the XML stores in
//! `xmark-store` translate path expressions into plans over these tables,
//! and the metadata-access counting in [`Catalog`] is what lets the
//! benchmark reproduce the paper's Table 2 (compile-time metadata cost of a
//! fragmenting mapping vs a monolithic one).

pub mod catalog;
pub mod index;
pub mod ops;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use index::{BTreeIndex, HashIndex};
pub use table::{ColumnDef, RowId, Table};
pub use value::{OrdValue, Value};
