//! Physical operators.
//!
//! The paper observes (§7) that the XMark queries compile to "quite complex
//! TPC/H-like aggregations", equi-joins on strings (Q8/Q9), theta-joins
//! with 12-million-tuple intermediates (Q11/Q12), sorts (Q19) and grouped
//! aggregation (Q20). These are the corresponding physical operators,
//! written as plain functions over materialized row sets — the style of a
//! block-oriented executor.

use std::collections::HashMap;

use crate::value::{OrdValue, Value};

/// A materialized row.
pub type Row = Vec<Value>;

/// Filter: keep the rows satisfying `pred`.
pub fn filter<F: FnMut(&[Value]) -> bool>(rows: Vec<Row>, mut pred: F) -> Vec<Row> {
    rows.into_iter().filter(|r| pred(r)).collect()
}

/// Project: map each row through `f`.
pub fn project<F: FnMut(&[Value]) -> Row>(rows: &[Row], mut f: F) -> Vec<Row> {
    rows.iter().map(|r| f(r)).collect()
}

/// Hash equi-join: pairs of rows with `left[left_key] == right[right_key]`
/// (SQL semantics: NULL keys never join). Output rows are the
/// concatenation left ++ right.
pub fn hash_join(left: &[Row], left_key: usize, right: &[Row], right_key: usize) -> Vec<Row> {
    // Build on the smaller side, as a cost-based optimizer would.
    if left.len() <= right.len() {
        hash_join_impl(left, left_key, right, right_key, false)
    } else {
        hash_join_impl(right, right_key, left, left_key, true)
    }
}

fn hash_join_impl(
    build: &[Row],
    build_key: usize,
    probe: &[Row],
    probe_key: usize,
    swapped: bool,
) -> Vec<Row> {
    let mut table: HashMap<OrdValue, Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, row) in build.iter().enumerate() {
        if row[build_key].is_null() {
            continue;
        }
        table
            .entry(OrdValue(row[build_key].clone()))
            .or_default()
            .push(i);
    }
    let mut out = Vec::new();
    for probe_row in probe {
        if probe_row[probe_key].is_null() {
            continue;
        }
        if let Some(matches) = table.get(&OrdValue(probe_row[probe_key].clone())) {
            for &bi in matches {
                let mut joined;
                if swapped {
                    joined = probe_row.clone();
                    joined.extend(build[bi].iter().cloned());
                } else {
                    joined = build[bi].clone();
                    joined.extend(probe_row.iter().cloned());
                }
                out.push(joined);
            }
        }
    }
    out
}

/// Left outer hash join: every left row appears at least once; unmatched
/// rows are padded with NULLs. Q8 ("persons and the number of items they
/// bought") needs the outer flavour so buyers of nothing still count 0.
pub fn left_outer_hash_join(
    left: &[Row],
    left_key: usize,
    right: &[Row],
    right_key: usize,
    right_arity: usize,
) -> Vec<Row> {
    let mut table: HashMap<OrdValue, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, row) in right.iter().enumerate() {
        if row[right_key].is_null() {
            continue;
        }
        table
            .entry(OrdValue(row[right_key].clone()))
            .or_default()
            .push(i);
    }
    let mut out = Vec::new();
    for lrow in left {
        let matches = if lrow[left_key].is_null() {
            None
        } else {
            table.get(&OrdValue(lrow[left_key].clone()))
        };
        match matches {
            Some(idxs) if !idxs.is_empty() => {
                for &ri in idxs {
                    let mut joined = lrow.clone();
                    joined.extend(right[ri].iter().cloned());
                    out.push(joined);
                }
            }
            _ => {
                let mut joined = lrow.clone();
                joined.extend(std::iter::repeat_n(Value::Null, right_arity));
                out.push(joined);
            }
        }
    }
    out
}

/// Nested-loop theta-join: all pairs satisfying `theta`. This is the
/// operator behind Q11/Q12's ">12 million tuples" intermediate.
pub fn theta_join<F: FnMut(&[Value], &[Value]) -> bool>(
    left: &[Row],
    right: &[Row],
    mut theta: F,
) -> Vec<Row> {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            if theta(l, r) {
                let mut joined = l.clone();
                joined.extend(r.iter().cloned());
                out.push(joined);
            }
        }
    }
    out
}

/// Sort rows by the given key column, NULLs first (the order of
/// [`OrdValue`]). Stable, like the `SORTBY` of the paper's Q19.
pub fn sort_by_column(mut rows: Vec<Row>, key: usize) -> Vec<Row> {
    rows.sort_by_key(|r| OrdValue(r[key].clone()));
    rows
}

/// Group rows by a key column and count group members — Q20's shape.
/// Returns `(key, count)` pairs in ascending key order.
pub fn group_count(rows: &[Row], key: usize) -> Vec<(Value, usize)> {
    let mut groups: HashMap<OrdValue, usize> = HashMap::new();
    for row in rows {
        *groups.entry(OrdValue(row[key].clone())).or_default() += 1;
    }
    let mut out: Vec<(OrdValue, usize)> = groups.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out.into_iter().map(|(k, c)| (k.0, c)).collect()
}

/// Deduplicate rows (set semantics), preserving first occurrence order.
pub fn distinct(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: std::collections::HashSet<Vec<OrdValue>> = std::collections::HashSet::new();
    let mut out = Vec::new();
    for row in rows {
        let key: Vec<OrdValue> = row.iter().cloned().map(OrdValue).collect();
        if seen.insert(key) {
            out.push(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[&[i64]]) -> Vec<Row> {
        vals.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }

    #[test]
    fn hash_join_matches_pairs() {
        let left = rows(&[&[1, 10], &[2, 20], &[3, 30]]);
        let right = rows(&[&[2, 200], &[3, 300], &[3, 301]]);
        let mut joined = hash_join(&left, 0, &right, 0);
        joined.sort_by_key(|r| (r[0].as_i64(), r[3].as_i64()));
        assert_eq!(joined.len(), 3);
        assert_eq!(joined[0], rows(&[&[2, 20, 2, 200]])[0]);
        assert_eq!(joined[2], rows(&[&[3, 30, 3, 301]])[0]);
    }

    #[test]
    fn hash_join_ignores_null_keys() {
        let left = vec![vec![Value::Null, Value::Int(1)]];
        let right = vec![vec![Value::Null, Value::Int(2)]];
        assert!(hash_join(&left, 0, &right, 0).is_empty());
    }

    #[test]
    fn hash_join_column_order_is_stable_under_side_swap() {
        // Left bigger than right triggers the swapped build side; the
        // output must still be left ++ right.
        let left = rows(&[&[1, 10], &[2, 20], &[3, 30]]);
        let right = rows(&[&[2, 200]]);
        let joined = hash_join(&left, 0, &right, 0);
        assert_eq!(joined, rows(&[&[2, 20, 2, 200]]));
    }

    #[test]
    fn outer_join_pads_unmatched() {
        let left = rows(&[&[1], &[2]]);
        let right = rows(&[&[2, 99]]);
        let joined = left_outer_hash_join(&left, 0, &right, 0, 2);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0], vec![Value::Int(1), Value::Null, Value::Null]);
        assert_eq!(joined[1], rows(&[&[2, 2, 99]])[0]);
    }

    #[test]
    fn theta_join_enumerates_pairs() {
        let left = rows(&[&[1], &[5]]);
        let right = rows(&[&[2], &[6]]);
        let joined = theta_join(&left, &right, |l, r| {
            l[0].as_i64().unwrap() < r[0].as_i64().unwrap()
        });
        assert_eq!(joined.len(), 3); // (1,2), (1,6), (5,6)
    }

    #[test]
    fn sort_is_stable_and_null_first() {
        let input = vec![
            vec![Value::str("b"), Value::Int(0)],
            vec![Value::Null, Value::Int(1)],
            vec![Value::str("a"), Value::Int(2)],
            vec![Value::str("a"), Value::Int(3)],
        ];
        let sorted = sort_by_column(input, 0);
        let order: Vec<Option<i64>> = sorted.iter().map(|r| r[1].as_i64()).collect();
        assert_eq!(order, vec![Some(1), Some(2), Some(3), Some(0)]);
    }

    #[test]
    fn group_count_counts() {
        let input = rows(&[&[1], &[2], &[1], &[1]]);
        let groups = group_count(&input, 0);
        assert_eq!(groups, vec![(Value::Int(1), 3), (Value::Int(2), 1)]);
    }

    #[test]
    fn distinct_preserves_first_occurrence() {
        let input = rows(&[&[2], &[1], &[2], &[3]]);
        assert_eq!(distinct(input), rows(&[&[2], &[1], &[3]]));
    }

    #[test]
    fn filter_and_project_compose() {
        let input = rows(&[&[1, 2], &[3, 4]]);
        let big = filter(input, |r| r[0].as_i64().unwrap() > 1);
        let projected = project(&big, |r| vec![r[1].clone()]);
        assert_eq!(projected, rows(&[&[4]]));
    }
}
