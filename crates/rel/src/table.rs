//! Row-addressable tables.

use crate::value::Value;

/// A column definition (name only; the engine is dynamically typed, like
/// the string-centric mappings of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>) -> Self {
        ColumnDef { name: name.into() }
    }
}

/// Index of a row within a table.
pub type RowId = usize;

/// A heap table: a schema plus rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table name (used by the catalog and for metadata accounting).
    pub name: String,
    columns: Vec<ColumnDef>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Create an empty table with the given column names.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            name: name.into(),
            columns: columns.iter().map(|c| ColumnDef::new(*c)).collect(),
            rows: Vec::new(),
        }
    }

    /// Column definitions.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row arity does not match the schema.
    pub fn insert(&mut self, row: Vec<Value>) -> RowId {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "arity mismatch inserting into {}",
            self.name
        );
        self.rows.push(row);
        self.rows.len() - 1
    }

    /// Borrow a row.
    pub fn row(&self, id: RowId) -> &[Value] {
        &self.rows[id]
    }

    /// A single cell.
    pub fn cell(&self, id: RowId, column: usize) -> &Value {
        &self.rows[id][column]
    }

    /// Iterate over `(RowId, row)` pairs — the physical table scan.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows.iter().enumerate().map(|(i, r)| (i, r.as_slice()))
    }

    /// Approximate resident bytes, for the Table 1 "database sizes" column.
    pub fn heap_size_bytes(&self) -> usize {
        let mut total = self.rows.capacity() * std::mem::size_of::<Vec<Value>>();
        for row in &self.rows {
            total += row.capacity() * std::mem::size_of::<Value>();
            for v in row {
                if let Value::Str(s) = v {
                    total += s.capacity();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("person", &["id", "name", "income"]);
        t.insert(vec![
            Value::Int(0),
            Value::str("Alice"),
            Value::Float(45_000.0),
        ]);
        t.insert(vec![Value::Int(1), Value::str("Bob"), Value::Null]);
        t
    }

    #[test]
    fn inserts_and_scans() {
        let t = sample();
        assert_eq!(t.len(), 2);
        let names: Vec<String> = t.scan().map(|(_, r)| r[1].to_string()).collect();
        assert_eq!(names, vec!["Alice", "Bob"]);
    }

    #[test]
    fn column_lookup() {
        let t = sample();
        assert_eq!(t.column_index("income"), Some(2));
        assert_eq!(t.column_index("missing"), None);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_wrong_arity() {
        let mut t = sample();
        t.insert(vec![Value::Int(2)]);
    }

    #[test]
    fn heap_size_accounts_for_strings() {
        let t = sample();
        let base = t.heap_size_bytes();
        let mut bigger = t.clone();
        bigger.insert(vec![
            Value::Int(2),
            Value::str("x".repeat(5_000)),
            Value::Null,
        ]);
        assert!(bigger.heap_size_bytes() > base + 5_000);
    }
}
