//! Relational values.
//!
//! §2(2) of the paper: "Strings are the basic data type" of XML, and §7
//! notes that "all character data … were stored as strings and cast at
//! runtime to richer data types whenever necessary" (Queries 3, 5, 11, 12,
//! 18, 20). [`Value::as_f64`] is that runtime cast; Q5 measures its cost.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A value stored in a relational column.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer (node ids, positions).
    Int(i64),
    /// Double-precision float (cast results).
    Float(f64),
    /// String — the XML-native type.
    Str(String),
    /// SQL-style NULL (absent optional element/attribute; §2(4) of the
    /// paper: "NULL values can blow up the size of the database").
    Null,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Runtime cast to `f64` — the coercion XMark Q5 charges for.
    /// Returns `None` for NULL or non-numeric strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            Value::Null => None,
        }
    }

    /// Cast to `i64` (truncating floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Str(s) => s.trim().parse::<i64>().ok(),
            Value::Null => None,
        }
    }

    /// Borrow the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-ish three-valued equality: NULL never equals anything.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Total-order wrapper for [`Value`], usable as a B-tree key. The order is
/// NULL < numbers (Int and Float compared numerically) < strings; float
/// NaNs sort above all other numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn class(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Float(_) => 1,
                Str(_) => 2,
            }
        }
        match (&self.0, &other.0) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a @ (Int(_) | Float(_)), b @ (Int(_) | Float(_))) => {
                let fa = a.as_f64().unwrap_or(f64::NAN);
                let fb = b.as_f64().unwrap_or(f64::NAN);
                fa.total_cmp(&fb)
            }
            (a, b) => class(a).cmp(&class(b)),
        }
    }
}

impl Hash for OrdValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match &self.0 {
            Value::Null => 0u8.hash(state),
            // Hash numbers through their f64 bit pattern so Int(2) and
            // Float(2.0) hash identically (they compare equal above).
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casts_strings_at_runtime() {
        assert_eq!(Value::str("40.50").as_f64(), Some(40.5));
        assert_eq!(Value::str(" 7 ").as_i64(), Some(7));
        assert_eq!(Value::str("gold").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn null_never_equals() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(Value::Int(1).sql_eq(&Value::Int(1)));
    }

    #[test]
    fn ord_value_total_order() {
        let mut vals = [
            OrdValue(Value::str("b")),
            OrdValue(Value::Int(5)),
            OrdValue(Value::Null),
            OrdValue(Value::Float(2.5)),
            OrdValue(Value::str("a")),
        ];
        vals.sort();
        let rendered: Vec<String> = vals.iter().map(|v| v.0.to_string()).collect();
        assert_eq!(rendered, vec!["NULL", "2.5", "5", "a", "b"]);
    }

    #[test]
    fn int_and_float_compare_numerically() {
        assert_eq!(
            OrdValue(Value::Int(2)).cmp(&OrdValue(Value::Float(2.0))),
            Ordering::Equal
        );
        assert!(OrdValue(Value::Int(2)) < OrdValue(Value::Float(2.5)));
    }

    #[test]
    fn equal_numbers_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &OrdValue) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&OrdValue(Value::Int(2))), h(&OrdValue(Value::Float(2.0))));
    }

    #[test]
    fn display_matches_sql_conventions() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }
}
