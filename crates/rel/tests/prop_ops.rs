//! Property tests for the relational substrate: operator correctness
//! against brute-force oracles, and the total order on values.

use proptest::prelude::*;

use xmark_rel::ops;
use xmark_rel::{BTreeIndex, HashIndex, OrdValue, Table, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-100i64..100).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

fn arb_row(width: usize) -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), width)
}

proptest! {
    #[test]
    fn ord_value_is_a_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        let (a, b, c) = (OrdValue(a), OrdValue(b), OrdValue(c));
        // Antisymmetry.
        if a <= b && b <= a {
            prop_assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Totality.
        prop_assert!(a <= b || b <= a);
    }

    #[test]
    fn equal_ord_values_hash_equal(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let (a, b) = (OrdValue(a), OrdValue(b));
        if a == b || a.cmp(&b) == std::cmp::Ordering::Equal {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn hash_join_matches_nested_loop_oracle(
        left in prop::collection::vec(arb_row(2), 0..20),
        right in prop::collection::vec(arb_row(2), 0..20),
    ) {
        let joined = ops::hash_join(&left, 0, &right, 0);
        // Oracle: nested loop with SQL NULL semantics.
        let mut expected = 0usize;
        for l in &left {
            for r in &right {
                if !l[0].is_null() && !r[0].is_null()
                    && OrdValue(l[0].clone()) == OrdValue(r[0].clone())
                {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(joined.len(), expected);
        for row in &joined {
            prop_assert_eq!(row.len(), 4);
            prop_assert_eq!(
                OrdValue(row[0].clone()).cmp(&OrdValue(row[2].clone())),
                std::cmp::Ordering::Equal
            );
        }
    }

    #[test]
    fn outer_join_covers_every_left_row(
        left in prop::collection::vec(arb_row(1), 0..15),
        right in prop::collection::vec(arb_row(2), 0..15),
    ) {
        let joined = ops::left_outer_hash_join(&left, 0, &right, 0, 2);
        prop_assert!(joined.len() >= left.len());
        // Every joined row is width 3 and unmatched rows carry NULLs.
        for row in &joined {
            prop_assert_eq!(row.len(), 3);
        }
    }

    #[test]
    fn sort_by_column_is_sorted_and_a_permutation(
        rows in prop::collection::vec(arb_row(2), 0..30),
    ) {
        let sorted = ops::sort_by_column(rows.clone(), 0);
        prop_assert_eq!(sorted.len(), rows.len());
        for pair in sorted.windows(2) {
            prop_assert!(OrdValue(pair[0][0].clone()) <= OrdValue(pair[1][0].clone()));
        }
        // Permutation: same multiset of second-column values.
        let mut a: Vec<String> = rows.iter().map(|r| format!("{:?}", r)).collect();
        let mut b: Vec<String> = sorted.iter().map(|r| format!("{:?}", r)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn group_count_totals_match(rows in prop::collection::vec(arb_row(1), 0..40)) {
        let groups = ops::group_count(&rows, 0);
        let total: usize = groups.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, rows.len());
    }

    #[test]
    fn distinct_is_idempotent(rows in prop::collection::vec(arb_row(1), 0..30)) {
        let once = ops::distinct(rows);
        let twice = ops::distinct(once.clone());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn indexes_agree_with_scans(
        keys in prop::collection::vec(arb_value(), 1..40),
        probe in arb_value(),
    ) {
        let mut t = Table::new("t", &["k"]);
        for k in &keys {
            t.insert(vec![k.clone()]);
        }
        let hash = HashIndex::build(&t, 0);
        let btree = BTreeIndex::build(&t, 0);
        let expected: Vec<usize> = t
            .scan()
            .filter(|(_, row)| {
                !row[0].is_null()
                    && !probe.is_null()
                    && OrdValue(row[0].clone()) == OrdValue(probe.clone())
            })
            .map(|(rid, _)| rid)
            .collect();
        prop_assert_eq!(hash.get(&probe).to_vec(), expected.clone());
        prop_assert_eq!(btree.get(&probe).to_vec(), expected);
    }

    #[test]
    fn btree_range_matches_filter(
        keys in prop::collection::vec(-50i64..50, 1..40),
        lo in -50i64..50,
        hi in -50i64..50,
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut t = Table::new("t", &["k"]);
        for k in &keys {
            t.insert(vec![Value::Int(*k)]);
        }
        let idx = BTreeIndex::build(&t, 0);
        let mut got = idx.range(Some(&Value::Int(lo)), Some(&Value::Int(hi)));
        got.sort_unstable();
        let mut expected: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi)
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
