//! Streaming axis cursors — the zero-allocation navigation layer.
//!
//! The seed version of [`XmlStore`](crate::traits::XmlStore) materialized
//! every navigation step as a fresh `Vec<Node>`, so the evaluator's hot
//! path was dominated by allocator traffic rather than the architectural
//! differences the paper measures. This module replaces that contract with
//! *cursors*: each axis (`child`, `child::tag`, `descendant-or-self::tag`,
//! `@*`) is a concrete enum whose variants wrap the native lazy walk of
//! each backend — a linked-sibling hop for System D, an interval hop for
//! E/F, a posting-list scan for A/B, a DOM sibling chain for G. Backends
//! whose architecture genuinely has to reassemble (System B's
//! `children()` across fragments, its sorted attribute sets) fall back to
//! the `Materialized` variant, which is itself the honest cost of that
//! architecture.
//!
//! The enums are deliberately *concrete* (not `Box<dyn Iterator>`): a path
//! step on Systems D, E and G performs no heap allocation at all, which is
//! what lets the criterion `streaming` bench isolate access-path cost.
//!
//! This mirrors how disk-based structured-search engines expose lazy
//! posting cursors instead of materialized node sets, and keeps the
//! access-path contract separate from the executor, willow/bustub-style.

use crate::edge::{EdgeAttrs, EdgeChildren, EdgeChildrenNamed, EdgeDescendantsNamed};
use crate::fragmented::{FragChildrenNamed, FragDescendantsNamed};
use crate::interval::{IntervalChildren, IntervalChildrenNamed, IntervalScanNamed};
use crate::naive::{DomAttrs, DomChildren, DomChildrenNamed, DomDescendantsNamed};
use crate::paged::{PagedChildren, PagedChildrenNamed, PagedScanNamed};
use crate::summary::{LinkedChildren, LinkedChildrenNamed, SummaryDescendantsNamed};
use crate::traits::Node;

/// Cursor over *all* children (elements and text) in document order.
pub enum ChildIter<'a> {
    /// No children.
    Empty,
    /// Pre-collected nodes (System B's cross-fragment reassembly, and the
    /// trait-default fallback).
    Materialized(std::vec::IntoIter<Node>),
    /// DOM sibling chain (System G).
    Dom(DomChildren<'a>),
    /// Parent-index posting list (System A).
    Edge(EdgeChildren<'a>),
    /// Containment-interval hop (Systems E/F).
    Interval(IntervalChildren<'a>),
    /// Columnar `first_child`/`next_sibling` chain (System D).
    Linked(LinkedChildren<'a>),
    /// Interval hop over buffer-pool pages (backend H).
    Paged(PagedChildren<'a>),
}

impl ChildIter<'_> {
    /// Wrap an already-materialized child list.
    pub fn from_vec(nodes: Vec<Node>) -> Self {
        ChildIter::Materialized(nodes.into_iter())
    }
}

impl Iterator for ChildIter<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        match self {
            ChildIter::Empty => None,
            ChildIter::Materialized(it) => it.next(),
            ChildIter::Dom(it) => it.next(),
            ChildIter::Edge(it) => it.next(),
            ChildIter::Interval(it) => it.next(),
            ChildIter::Linked(it) => it.next(),
            ChildIter::Paged(it) => it.next(),
        }
    }
}

/// Cursor over element children with a given tag, in document order.
pub enum ChildrenNamed<'a> {
    /// No matches (including "tag unknown to this store").
    Empty,
    /// Pre-collected nodes (trait-default fallback).
    Materialized(std::vec::IntoIter<Node>),
    /// DOM sibling chain with an interned-symbol test (System G).
    Dom(DomChildrenNamed<'a>),
    /// Parent-index posting list with a tag test (System A).
    Edge(EdgeChildrenNamed<'a>),
    /// Single-fragment posting list — fragmentation's payoff (Systems B/C).
    Frag(FragChildrenNamed<'a>),
    /// Interval hop with a tag-code test (Systems E/F).
    Interval(IntervalChildrenNamed<'a>),
    /// Sibling chain with a summary-tag test (System D).
    Linked(LinkedChildrenNamed<'a>),
    /// Interval hop with a tag-code test over buffer-pool pages
    /// (backend H).
    Paged(PagedChildrenNamed<'a>),
}

impl ChildrenNamed<'_> {
    /// Wrap an already-materialized child list.
    pub fn from_vec(nodes: Vec<Node>) -> Self {
        ChildrenNamed::Materialized(nodes.into_iter())
    }
}

impl Iterator for ChildrenNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        match self {
            ChildrenNamed::Empty => None,
            ChildrenNamed::Materialized(it) => it.next(),
            ChildrenNamed::Dom(it) => it.next(),
            ChildrenNamed::Edge(it) => it.next(),
            ChildrenNamed::Frag(it) => it.next(),
            ChildrenNamed::Interval(it) => it.next(),
            ChildrenNamed::Linked(it) => it.next(),
            ChildrenNamed::Paged(it) => it.next(),
        }
    }
}

/// Cursor over descendant elements with a given tag, in document order.
pub enum DescendantsNamed<'a> {
    /// No matches.
    Empty,
    /// Pre-collected nodes (trait-default fallback).
    Materialized(std::vec::IntoIter<Node>),
    /// Stackless pre-order DOM walk (System G).
    Dom(DomDescendantsNamed<'a>),
    /// Tag-extent scan with parent-chain containment checks (System A).
    Edge(EdgeDescendantsNamed<'a>),
    /// Fragment scan with parent-chain containment checks (Systems B/C).
    Frag(FragDescendantsNamed<'a>),
    /// A contiguous slice of a sorted tag extent — System E's stab join
    /// and System D's single-path case.
    Extent(std::slice::Iter<'a, u32>),
    /// Interval scan with a tag-code test (System F).
    IntervalScan(IntervalScanNamed<'a>),
    /// K-way merge over several summary-path extents (System D).
    SummaryMerge(SummaryDescendantsNamed<'a>),
    /// Interval scan with a tag-code test over buffer-pool pages
    /// (backend H).
    PagedScan(PagedScanNamed<'a>),
}

impl DescendantsNamed<'_> {
    /// Wrap an already-materialized node list.
    pub fn from_vec(nodes: Vec<Node>) -> Self {
        DescendantsNamed::Materialized(nodes.into_iter())
    }
}

impl Iterator for DescendantsNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        match self {
            DescendantsNamed::Empty => None,
            DescendantsNamed::Materialized(it) => it.next(),
            DescendantsNamed::Dom(it) => it.next(),
            DescendantsNamed::Edge(it) => it.next(),
            DescendantsNamed::Frag(it) => it.next(),
            DescendantsNamed::Extent(it) => it.next().map(|&id| Node(id)),
            DescendantsNamed::IntervalScan(it) => it.next(),
            DescendantsNamed::SummaryMerge(it) => it.next(),
            DescendantsNamed::PagedScan(it) => it.next(),
        }
    }
}

/// Cursor over an element's attributes as borrowed `(name, value)` pairs.
pub enum AttrIter<'a> {
    /// No attributes.
    Empty,
    /// A stored `(name, value)` slice (Systems D/E/F).
    Pairs(std::slice::Iter<'a, (String, String)>),
    /// DOM attribute slice with symbol resolution (System G).
    Dom(DomAttrs<'a>),
    /// Owner-index posting list over the `attr` relation (System A).
    Edge(EdgeAttrs<'a>),
    /// Name-sorted borrowed pairs (System B reassembles per-(tag, attr)
    /// fragments; the sort buffer holds references, not copies).
    Sorted(std::vec::IntoIter<(&'a str, &'a str)>),
}

impl<'a> Iterator for AttrIter<'a> {
    type Item = (&'a str, &'a str);

    #[inline]
    fn next(&mut self) -> Option<(&'a str, &'a str)> {
        match self {
            AttrIter::Empty => None,
            AttrIter::Pairs(it) => it.next().map(|(k, v)| (k.as_str(), v.as_str())),
            AttrIter::Dom(it) => it.next(),
            AttrIter::Edge(it) => it.next(),
            AttrIter::Sorted(it) => it.next(),
        }
    }
}
