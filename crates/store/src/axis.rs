//! Streaming axis cursors — the zero-allocation navigation layer.
//!
//! The seed version of [`XmlStore`](crate::traits::XmlStore) materialized
//! every navigation step as a fresh `Vec<Node>`, so the evaluator's hot
//! path was dominated by allocator traffic rather than the architectural
//! differences the paper measures. This module replaces that contract with
//! *cursors*: each axis (`child`, `child::tag`, `descendant-or-self::tag`,
//! `@*`) is a concrete enum whose variants wrap the native lazy walk of
//! each backend — a linked-sibling hop for System D, an interval hop for
//! E/F, a posting-list scan for A/B, a DOM sibling chain for G. Backends
//! whose architecture genuinely has to reassemble (System B's
//! `children()` across fragments, its sorted attribute sets) fall back to
//! the `Materialized` variant, which is itself the honest cost of that
//! architecture.
//!
//! The enums are deliberately *concrete* (not `Box<dyn Iterator>`): a path
//! step on Systems D, E and G performs no heap allocation at all, which is
//! what lets the criterion `streaming` bench isolate access-path cost.
//!
//! This mirrors how disk-based structured-search engines expose lazy
//! posting cursors instead of materialized node sets, and keeps the
//! access-path contract separate from the executor, willow/bustub-style.

use crate::edge::{EdgeAttrs, EdgeChildren, EdgeChildrenNamed, EdgeDescendantsNamed};
use crate::fragmented::{FragChildrenNamed, FragDescendantsNamed};
use crate::interval::{IntervalChildren, IntervalChildrenNamed, IntervalScanNamed};
use crate::naive::{DomAttrs, DomChildren, DomChildrenNamed, DomDescendantsNamed};
use crate::paged::{PagedChildren, PagedChildrenNamed, PagedScanNamed};
use crate::summary::{LinkedChildren, LinkedChildrenNamed, SummaryDescendantsNamed};
use crate::traits::Node;

/// A fixed-capacity block of nodes — the unit of the vectorized pull
/// protocol.
///
/// The buffer is allocated once ([`NodeBatch::new`]) and never grows:
/// producers append with [`push`](NodeBatch::push) up to the *effective*
/// limit set by the last [`reset`](NodeBatch::reset), which is clamped to
/// the allocated capacity. Consumers that need fewer slots (an executor
/// honoring a `take(n)` bound) shrink the limit per refill instead of
/// reallocating.
pub struct NodeBatch {
    slots: Vec<Node>,
    limit: usize,
}

impl NodeBatch {
    /// Allocate a batch holding up to `cap` nodes (at least one).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        NodeBatch {
            slots: Vec::with_capacity(cap),
            limit: cap,
        }
    }

    /// Clear the batch and set the effective limit for the next fill,
    /// clamped to the allocated capacity — never reallocates.
    pub fn reset(&mut self, limit: usize) {
        self.slots.clear();
        self.limit = limit.max(1).min(self.slots.capacity());
    }

    /// Slots still open under the effective limit.
    #[inline]
    pub fn room(&self) -> usize {
        self.limit - self.slots.len()
    }

    /// Whether the effective limit is reached.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.limit
    }

    /// Nodes currently in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the batch holds no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Append one node. The caller checks [`is_full`](NodeBatch::is_full)
    /// first; the buffer is pre-reserved, so this never reallocates.
    #[inline]
    pub fn push(&mut self, n: Node) {
        debug_assert!(self.slots.len() < self.limit, "push past batch limit");
        self.slots.push(n);
    }

    /// The filled prefix.
    #[inline]
    pub fn as_slice(&self) -> &[Node] {
        &self.slots
    }
}

/// Fill `out` from a plain iterator: the default one-item loop used by
/// variants without a native block path. A single enum dispatch buys a
/// monomorphized tight loop over the concrete cursor.
#[inline]
fn fill_from<I: Iterator<Item = Node>>(it: &mut I, out: &mut NodeBatch) {
    while !out.is_full() {
        match it.next() {
            Some(n) => out.push(n),
            None => break,
        }
    }
}

/// Cursor over *all* children (elements and text) in document order.
pub enum ChildIter<'a> {
    /// No children.
    Empty,
    /// Pre-collected nodes (System B's cross-fragment reassembly, and the
    /// trait-default fallback).
    Materialized(std::vec::IntoIter<Node>),
    /// DOM sibling chain (System G).
    Dom(DomChildren<'a>),
    /// Parent-index posting list (System A).
    Edge(EdgeChildren<'a>),
    /// Containment-interval hop (Systems E/F).
    Interval(IntervalChildren<'a>),
    /// Columnar `first_child`/`next_sibling` chain (System D).
    Linked(LinkedChildren<'a>),
    /// Interval hop over buffer-pool pages (backend H).
    Paged(PagedChildren<'a>),
}

impl ChildIter<'_> {
    /// Wrap an already-materialized child list.
    pub fn from_vec(nodes: Vec<Node>) -> Self {
        ChildIter::Materialized(nodes.into_iter())
    }
}

impl Iterator for ChildIter<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        match self {
            ChildIter::Empty => None,
            ChildIter::Materialized(it) => it.next(),
            ChildIter::Dom(it) => it.next(),
            ChildIter::Edge(it) => it.next(),
            ChildIter::Interval(it) => it.next(),
            ChildIter::Linked(it) => it.next(),
            ChildIter::Paged(it) => it.next(),
        }
    }
}

/// Cursor over element children with a given tag, in document order.
pub enum ChildrenNamed<'a> {
    /// No matches (including "tag unknown to this store").
    Empty,
    /// Pre-collected nodes (trait-default fallback).
    Materialized(std::vec::IntoIter<Node>),
    /// DOM sibling chain with an interned-symbol test (System G).
    Dom(DomChildrenNamed<'a>),
    /// Parent-index posting list with a tag test (System A).
    Edge(EdgeChildrenNamed<'a>),
    /// Single-fragment posting list — fragmentation's payoff (Systems B/C).
    Frag(FragChildrenNamed<'a>),
    /// Interval hop with a tag-code test (Systems E/F).
    Interval(IntervalChildrenNamed<'a>),
    /// Sibling chain with a summary-tag test (System D).
    Linked(LinkedChildrenNamed<'a>),
    /// Interval hop with a tag-code test over buffer-pool pages
    /// (backend H).
    Paged(PagedChildrenNamed<'a>),
}

impl ChildrenNamed<'_> {
    /// Wrap an already-materialized child list.
    pub fn from_vec(nodes: Vec<Node>) -> Self {
        ChildrenNamed::Materialized(nodes.into_iter())
    }
}

impl Iterator for ChildrenNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        match self {
            ChildrenNamed::Empty => None,
            ChildrenNamed::Materialized(it) => it.next(),
            ChildrenNamed::Dom(it) => it.next(),
            ChildrenNamed::Edge(it) => it.next(),
            ChildrenNamed::Frag(it) => it.next(),
            ChildrenNamed::Interval(it) => it.next(),
            ChildrenNamed::Linked(it) => it.next(),
            ChildrenNamed::Paged(it) => it.next(),
        }
    }
}

impl ChildrenNamed<'_> {
    /// Fill `out` until it is full or this cursor is exhausted; returns
    /// the number of nodes appended. Postcondition: `out` not full ⇒
    /// the cursor is exhausted. The columnar encodings (interval, edge
    /// posting lists, paged) run a native per-block loop; the rest fall
    /// back to a monomorphized one-item loop.
    pub fn next_block(&mut self, out: &mut NodeBatch) -> usize {
        let before = out.len();
        match self {
            ChildrenNamed::Empty => {}
            ChildrenNamed::Materialized(it) => fill_from(it, out),
            ChildrenNamed::Dom(it) => fill_from(it, out),
            ChildrenNamed::Edge(it) => it.next_block(out),
            ChildrenNamed::Frag(it) => fill_from(it, out),
            ChildrenNamed::Interval(it) => it.next_block(out),
            ChildrenNamed::Linked(it) => fill_from(it, out),
            ChildrenNamed::Paged(it) => it.next_block(out),
        }
        out.len() - before
    }
}

/// Cursor over descendant elements with a given tag, in document order.
pub enum DescendantsNamed<'a> {
    /// No matches.
    Empty,
    /// Pre-collected nodes (trait-default fallback).
    Materialized(std::vec::IntoIter<Node>),
    /// Stackless pre-order DOM walk (System G).
    Dom(DomDescendantsNamed<'a>),
    /// Tag-extent scan with parent-chain containment checks (System A).
    Edge(EdgeDescendantsNamed<'a>),
    /// Fragment scan with parent-chain containment checks (Systems B/C).
    Frag(FragDescendantsNamed<'a>),
    /// A contiguous slice of a sorted tag extent — System E's stab join
    /// and System D's single-path case.
    Extent(std::slice::Iter<'a, u32>),
    /// Interval scan with a tag-code test (System F).
    IntervalScan(IntervalScanNamed<'a>),
    /// K-way merge over several summary-path extents (System D).
    SummaryMerge(SummaryDescendantsNamed<'a>),
    /// Interval scan with a tag-code test over buffer-pool pages
    /// (backend H).
    PagedScan(PagedScanNamed<'a>),
}

impl DescendantsNamed<'_> {
    /// Wrap an already-materialized node list.
    pub fn from_vec(nodes: Vec<Node>) -> Self {
        DescendantsNamed::Materialized(nodes.into_iter())
    }
}

impl Iterator for DescendantsNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        match self {
            DescendantsNamed::Empty => None,
            DescendantsNamed::Materialized(it) => it.next(),
            DescendantsNamed::Dom(it) => it.next(),
            DescendantsNamed::Edge(it) => it.next(),
            DescendantsNamed::Frag(it) => it.next(),
            DescendantsNamed::Extent(it) => it.next().map(|&id| Node(id)),
            DescendantsNamed::IntervalScan(it) => it.next(),
            DescendantsNamed::SummaryMerge(it) => it.next(),
            DescendantsNamed::PagedScan(it) => it.next(),
        }
    }
}

impl DescendantsNamed<'_> {
    /// Fill `out` until it is full or this cursor is exhausted; returns
    /// the number of nodes appended. Postcondition: `out` not full ⇒
    /// the cursor is exhausted. Posting-range (`Extent`) blocks are a
    /// straight slice copy; the interval/edge/paged encodings run native
    /// per-block loops; the rest fall back to a monomorphized one-item
    /// loop.
    pub fn next_block(&mut self, out: &mut NodeBatch) -> usize {
        let before = out.len();
        match self {
            DescendantsNamed::Empty => {}
            DescendantsNamed::Materialized(it) => fill_from(it, out),
            DescendantsNamed::Dom(it) => fill_from(it, out),
            DescendantsNamed::Edge(it) => it.next_block(out),
            DescendantsNamed::Frag(it) => fill_from(it, out),
            DescendantsNamed::Extent(it) => {
                // PR 5 posting ranges are already sorted contiguous id
                // runs: copy a prefix of the slice and rebuild the iter
                // on the remainder.
                let run = it.as_slice();
                let k = run.len().min(out.room());
                for &id in &run[..k] {
                    out.push(Node(id));
                }
                *it = run[k..].iter();
            }
            DescendantsNamed::IntervalScan(it) => it.next_block(out),
            DescendantsNamed::SummaryMerge(it) => fill_from(it, out),
            DescendantsNamed::PagedScan(it) => it.next_block(out),
        }
        out.len() - before
    }
}

/// Cursor over an element's attributes as borrowed `(name, value)` pairs.
pub enum AttrIter<'a> {
    /// No attributes.
    Empty,
    /// A stored `(name, value)` slice (Systems D/E/F).
    Pairs(std::slice::Iter<'a, (String, String)>),
    /// DOM attribute slice with symbol resolution (System G).
    Dom(DomAttrs<'a>),
    /// Owner-index posting list over the `attr` relation (System A).
    Edge(EdgeAttrs<'a>),
    /// Name-sorted borrowed pairs (System B reassembles per-(tag, attr)
    /// fragments; the sort buffer holds references, not copies).
    Sorted(std::vec::IntoIter<(&'a str, &'a str)>),
}

impl<'a> Iterator for AttrIter<'a> {
    type Item = (&'a str, &'a str);

    #[inline]
    fn next(&mut self) -> Option<(&'a str, &'a str)> {
        match self {
            AttrIter::Empty => None,
            AttrIter::Pairs(it) => it.next().map(|(k, v)| (k.as_str(), v.as_str())),
            AttrIter::Dom(it) => it.next(),
            AttrIter::Edge(it) => it.next(),
            AttrIter::Sorted(it) => it.next(),
        }
    }
}
