//! System A — the monolithic edge store.
//!
//! §7: "System A basically stores all XML data on one big heap, i.e., only
//! a single relation … System A has to access fewer metadata to compile a
//! query than System B, thus spending only half as much time on query
//! compilation. However … because the data mapping deployed in System A has
//! less explicit semantics, the actual cost of accessing the real data is
//! higher."
//!
//! The mapping is the classic edge/node table: one relation
//! `node(id, parent, tag, pos, text)` (row id = pre-order node id), one
//! `attr(owner, name, value)` relation, and generic secondary indexes.
//! Every navigation step is an index lookup against those generic
//! structures; nothing is specialized to the schema.

use std::sync::atomic::{AtomicU64, Ordering};

use xmark_rel::{HashIndex, Table, Value};
use xmark_xml::{Document, NodeId};

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::index::IndexManager;
use crate::traits::{Node, PlannerCaps, SystemId, XmlStore};

/// Streaming cursor over a parent-index posting list. Row ids in the
/// `node` relation *are* pre-order node ids, and posting lists are built
/// in insertion (= document) order, so the hops come out ordered.
pub struct EdgeChildren<'a> {
    rids: std::slice::Iter<'a, usize>,
}

impl Iterator for EdgeChildren<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        self.rids.next().map(|&rid| Node(rid as u32))
    }
}

/// [`EdgeChildren`] plus a tag test against the `node` relation.
pub struct EdgeChildrenNamed<'a> {
    store: &'a EdgeStore,
    rids: std::slice::Iter<'a, usize>,
    tag: &'a str,
}

impl Iterator for EdgeChildrenNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        self.rids
            .by_ref()
            .find(|&&rid| self.store.nodes.cell(rid, 1).as_str() == Some(self.tag))
            .map(|&rid| Node(rid as u32))
    }
}

impl EdgeChildrenNamed<'_> {
    /// Native block fill: drain the posting slice in one loop, tag-testing
    /// each row id against the `node` relation.
    pub(crate) fn next_block(&mut self, out: &mut crate::axis::NodeBatch) {
        while !out.is_full() {
            match self.rids.next() {
                Some(&rid) => {
                    if self.store.nodes.cell(rid, 1).as_str() == Some(self.tag) {
                        out.push(Node(rid as u32));
                    }
                }
                None => break,
            }
        }
    }
}

/// Streaming form of System A's generic descendant plan: walk the tag
/// extent and verify containment by climbing parent pointers — the
/// repeated self-joins the paper attributes to edge mappings.
pub struct EdgeDescendantsNamed<'a> {
    store: &'a EdgeStore,
    extent: std::slice::Iter<'a, usize>,
    ctx: Node,
    /// At the root, containment holds for everything but the context node.
    from_root: bool,
}

impl Iterator for EdgeDescendantsNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        for &rid in self.extent.by_ref() {
            let c = Node(rid as u32);
            let contained = if self.from_root {
                c != self.ctx
            } else {
                self.store.climb_reaches(c, self.ctx)
            };
            if contained {
                return Some(c);
            }
        }
        None
    }
}

impl EdgeDescendantsNamed<'_> {
    /// Native block fill: one loop over the tag extent, containment
    /// verified per entry (the root case degenerates to an identity
    /// test, so `//tag` from the root is a straight extent copy).
    pub(crate) fn next_block(&mut self, out: &mut crate::axis::NodeBatch) {
        while !out.is_full() {
            match self.extent.next() {
                Some(&rid) => {
                    let c = Node(rid as u32);
                    let contained = if self.from_root {
                        c != self.ctx
                    } else {
                        self.store.climb_reaches(c, self.ctx)
                    };
                    if contained {
                        out.push(c);
                    }
                }
                None => break,
            }
        }
    }
}

/// Streaming cursor over the `attr` relation's owner posting list.
pub struct EdgeAttrs<'a> {
    store: &'a EdgeStore,
    rids: std::slice::Iter<'a, usize>,
}

impl<'a> Iterator for EdgeAttrs<'a> {
    type Item = (&'a str, &'a str);

    #[inline]
    fn next(&mut self) -> Option<(&'a str, &'a str)> {
        self.rids.next().map(|&rid| {
            (
                self.store.attrs.cell(rid, 1).as_str().expect("attr name"),
                self.store.attrs.cell(rid, 2).as_str().expect("attr value"),
            )
        })
    }
}

/// The System A store.
pub struct EdgeStore {
    nodes: Table,
    attrs: Table,
    parent_idx: HashIndex,
    tag_idx: HashIndex,
    owner_idx: HashIndex,
    root: u32,
    metadata: AtomicU64,
    indexes: IndexManager,
}

impl EdgeStore {
    /// Bulkload: parse, flatten into the two relations, build the generic
    /// indexes. The conversion effort is deliberately part of the load time
    /// (Table 1 "constitute completed transactions and include the
    /// conversion effort").
    pub fn load(xml: &str) -> Result<Self, xmark_xml::Error> {
        Ok(Self::from_document(&xmark_xml::parse_document(xml)?))
    }

    /// Build from a parsed document.
    pub fn from_document(doc: &Document) -> Self {
        let mut nodes = Table::new("node", &["parent", "tag", "pos", "text"]);
        let mut attrs = Table::new("attr", &["owner", "name", "value"]);

        for id in 0..doc.node_count() as u32 {
            let node = NodeId(id);
            let parent = doc
                .parent(node)
                .map_or(Value::Null, |p| Value::Int(p.0 as i64));
            let pos = Value::Int(position_among_siblings(doc, node) as i64);
            match doc.text(node) {
                Some(t) => {
                    nodes.insert(vec![parent, Value::Null, pos, Value::str(t)]);
                }
                None => {
                    nodes.insert(vec![
                        parent,
                        Value::str(doc.tag_name(node)),
                        pos,
                        Value::Null,
                    ]);
                    for (sym, v) in doc.attributes(node) {
                        let name = doc.interner().resolve(*sym);
                        attrs.insert(vec![
                            Value::Int(id as i64),
                            Value::str(name),
                            Value::str(v.as_str()),
                        ]);
                    }
                }
            }
        }

        let parent_idx = HashIndex::build(&nodes, 0);
        let tag_idx = HashIndex::build(&nodes, 1);
        let owner_idx = HashIndex::build(&attrs, 0);
        EdgeStore {
            nodes,
            attrs,
            parent_idx,
            tag_idx,
            owner_idx,
            root: doc.root_element().0,
            metadata: AtomicU64::new(0),
            indexes: IndexManager::new(),
        }
    }

    fn climb_reaches(&self, mut cur: Node, ancestor: Node) -> bool {
        while let Some(p) = self.parent(cur) {
            if p == ancestor {
                return true;
            }
            cur = p;
        }
        false
    }
}

fn position_among_siblings(doc: &Document, node: NodeId) -> usize {
    match doc.parent(node) {
        Some(p) => doc.children(p).position(|c| c == node).unwrap_or(0),
        None => 0,
    }
}

impl XmlStore for EdgeStore {
    fn system(&self) -> SystemId {
        SystemId::A
    }

    fn root(&self) -> Node {
        Node(self.root)
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn size_bytes(&self) -> usize {
        self.nodes.heap_size_bytes()
            + self.attrs.heap_size_bytes()
            + self.parent_idx.heap_size_bytes()
            + self.tag_idx.heap_size_bytes()
            + self.owner_idx.heap_size_bytes()
            + self.indexes.size_bytes()
    }

    fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        self.nodes.cell(n.index(), 1).as_str()
    }

    fn parent(&self, n: Node) -> Option<Node> {
        self.nodes
            .cell(n.index(), 0)
            .as_i64()
            .map(|p| Node(p as u32))
    }

    fn text(&self, n: Node) -> Option<&str> {
        self.nodes.cell(n.index(), 3).as_str()
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        self.owner_idx
            .get(&Value::Int(n.0 as i64))
            .iter()
            .find(|&&rid| self.attrs.cell(rid, 1).as_str() == Some(name))
            .and_then(|&rid| self.attrs.cell(rid, 2).as_str().map(str::to_string))
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        // Parent-index rows were inserted in document order.
        ChildIter::Edge(EdgeChildren {
            rids: self.parent_idx.get(&Value::Int(n.0 as i64)).iter(),
        })
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        ChildrenNamed::Edge(EdgeChildrenNamed {
            store: self,
            rids: self.parent_idx.get(&Value::Int(n.0 as i64)).iter(),
            tag,
        })
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        DescendantsNamed::Edge(EdgeDescendantsNamed {
            store: self,
            extent: self.tag_idx.get(&Value::str(tag)).iter(),
            ctx: n,
            from_root: n.0 == self.root,
        })
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        AttrIter::Edge(EdgeAttrs {
            store: self,
            rids: self.owner_idx.get(&Value::Int(n.0 as i64)).iter(),
        })
    }

    fn begin_compile(&self) {
        self.metadata.store(0, Ordering::Relaxed);
    }

    fn compile_step(&self, tag: &str) -> usize {
        // One relation descriptor: the whole point of System A. A second
        // access fetches index statistics for the optimizer.
        self.metadata.fetch_add(2, Ordering::Relaxed);
        self.tag_idx.get(&Value::str(tag)).len()
    }

    fn metadata_accesses(&self) -> u64 {
        self.metadata.load(Ordering::Relaxed)
    }

    fn planner_caps(&self) -> PlannerCaps {
        PlannerCaps {
            id_index: true,
            // The tag index stores the whole extent per tag: exact counts.
            exact_statistics: true,
            // The generic edge mapping has no subtree-scoped descendant
            // access of its own (extent scans climb parent chains), so the
            // shared posting-list index pays off.
            element_index: true,
            value_index: true,
            child_values: true,
            ..PlannerCaps::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<site><people><person id="person0"><name>Alice</name><homepage>http://a</homepage></person><person id="person1"><name>Bob</name></person></people></site>"#;

    fn store() -> EdgeStore {
        EdgeStore::load(SAMPLE).unwrap()
    }

    #[test]
    fn flattens_into_one_relation() {
        let s = store();
        // site, people, 2×person, 2×name + 2 text, homepage + text = 10.
        assert_eq!(s.node_count(), 10);
    }

    #[test]
    fn navigation_via_indexes() {
        let s = store();
        let root = s.root();
        assert_eq!(s.tag_of(root), Some("site"));
        let people = s.children_named(root, "people");
        let persons = s.children_named(people[0], "person");
        assert_eq!(persons.len(), 2);
        assert_eq!(s.attribute(persons[1], "id").as_deref(), Some("person1"));
        assert_eq!(s.string_value(persons[0]), "Alicehttp://a");
    }

    #[test]
    fn descendants_climb_parent_chain() {
        let s = store();
        let people = s.children_named(s.root(), "people")[0];
        let names = s.descendants_named(people, "name");
        assert_eq!(names.len(), 2);
        let persons = s.children_named(people, "person");
        let names_under_bob = s.descendants_named(persons[1], "name");
        assert_eq!(names_under_bob.len(), 1);
    }

    #[test]
    fn id_index_supports_q1() {
        let s = store();
        let hit = s.lookup_id("person0").unwrap().unwrap();
        assert_eq!(s.tag_of(hit), Some("person"));
    }

    #[test]
    fn compile_metering_counts_two_per_step() {
        let s = store();
        s.begin_compile();
        let card = s.compile_step("person");
        assert_eq!(card, 2);
        assert_eq!(s.metadata_accesses(), 2);
        s.compile_step("name");
        assert_eq!(s.metadata_accesses(), 4);
    }

    #[test]
    fn matches_naive_store_semantics() {
        let s = store();
        let naive = crate::naive::NaiveStore::load(SAMPLE).unwrap();
        let a: Vec<u32> = s
            .descendants_named(s.root(), "name")
            .iter()
            .map(|n| n.0)
            .collect();
        let b: Vec<u32> = naive
            .descendants_named(naive.root(), "name")
            .iter()
            .map(|n| n.0)
            .collect();
        assert_eq!(a, b);
    }
}
