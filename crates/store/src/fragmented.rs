//! System B — the fragmented (binary-association) store.
//!
//! §7: "System B on the other hand uses a highly fragmenting mapping.
//! Consequently … [it spends] twice as much time on query compilation …
//! However, this comes at a cost [for System A]: mappings that structure
//! the data according to their semantics can achieve significantly higher
//! CPU usage."
//!
//! The mapping (in the spirit of the Monet XML model, \[20\]): one relation
//! per element tag `e_<tag>(id, parent, pos)`, one relation per
//! text-parent tag `t_<tag>(id, parent, pos, value)`, and one relation per
//! (tag, attribute) pair `a_<tag>_<name>(owner, value)`. A query touching
//! k path steps touches ≥ k relation descriptors — the Table 2 effect —
//! while per-tag scans are cheap because each relation *is* the extent of
//! its tag.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use xmark_rel::{HashIndex, Table, Value};
use xmark_xml::{Document, NodeId};

use crate::axis::{AttrIter, ChildIter, ChildrenNamed, DescendantsNamed};
use crate::index::IndexManager;
use crate::traits::{Node, PlannerCaps, SystemId, XmlStore};

const TEXT_FLAG: u16 = 1 << 15;

/// Streaming cursor over a single element fragment's parent posting list.
/// Posting lists are appended during the document-order bulkload scan, so
/// row ids — and therefore the node ids in column 0 — come out ascending;
/// no sort is needed.
pub struct FragChildrenNamed<'a> {
    rows: &'a Table,
    rids: std::slice::Iter<'a, usize>,
}

impl Iterator for FragChildrenNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        self.rids
            .next()
            .map(|&rid| Node(self.rows.cell(rid, 0).as_i64().expect("id") as u32))
    }
}

/// Streaming form of System B's descendant plan: scan the tag's fragment
/// (each relation *is* the extent of its tag) and verify containment by
/// climbing parent pointers. Fragment rows are in document order, so the
/// results stream out ordered.
pub struct FragDescendantsNamed<'a> {
    store: &'a FragmentedStore,
    rows: &'a Table,
    next_rid: usize,
    ctx: Node,
    from_root: bool,
}

impl Iterator for FragDescendantsNamed<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        while self.next_rid < self.rows.len() {
            let rid = self.next_rid;
            self.next_rid += 1;
            let c = Node(self.rows.cell(rid, 0).as_i64().expect("id") as u32);
            let contained = if self.from_root {
                c != self.ctx
            } else {
                self.store.climb_reaches(c, self.ctx)
            };
            if contained {
                return Some(c);
            }
        }
        None
    }
}

/// One fragment: a relation plus its parent index.
struct Fragment {
    rows: Table,
    parent_idx: HashIndex,
}

/// One (tag, attribute-name) relation.
struct AttrFragment {
    rows: Table,
    owner_idx: HashIndex,
}

/// The System B store.
pub struct FragmentedStore {
    tag_names: Vec<String>,
    tag_lookup: HashMap<String, u16>,
    /// Element fragments, indexed by tag code.
    elem: Vec<Fragment>,
    /// Text fragments, indexed by the *parent* tag code.
    text: Vec<Fragment>,
    /// Attribute fragments keyed `"tag.name"`.
    attr: HashMap<String, AttrFragment>,
    /// Logical OID directory: node id → (tag code | TEXT_FLAG, row).
    directory: Vec<(u16, u32)>,
    root: u32,
    metadata: AtomicU64,
    indexes: IndexManager,
}

impl FragmentedStore {
    /// Bulkload: parse and fragment.
    pub fn load(xml: &str) -> Result<Self, xmark_xml::Error> {
        Ok(Self::from_document(&xmark_xml::parse_document(xml)?))
    }

    /// Build from a parsed document.
    pub fn from_document(doc: &Document) -> Self {
        let mut tag_names: Vec<String> = Vec::new();
        let mut tag_lookup: HashMap<String, u16> = HashMap::new();
        let mut elem_rows: Vec<Table> = Vec::new();
        let mut text_rows: Vec<Table> = Vec::new();
        let mut attr_rows: HashMap<String, Table> = HashMap::new();
        let mut directory: Vec<(u16, u32)> = vec![(0, 0); doc.node_count()];

        let code_of = |tag: &str,
                       tag_names: &mut Vec<String>,
                       tag_lookup: &mut HashMap<String, u16>,
                       elem_rows: &mut Vec<Table>,
                       text_rows: &mut Vec<Table>|
         -> u16 {
            if let Some(&c) = tag_lookup.get(tag) {
                return c;
            }
            let c = tag_names.len() as u16;
            tag_names.push(tag.to_string());
            tag_lookup.insert(tag.to_string(), c);
            elem_rows.push(Table::new(format!("e_{tag}"), &["id", "parent", "pos"]));
            text_rows.push(Table::new(
                format!("t_{tag}"),
                &["id", "parent", "pos", "value"],
            ));
            c
        };

        for id in 0..doc.node_count() as u32 {
            let node = NodeId(id);
            let parent = doc.parent(node);
            let parent_val = parent.map_or(Value::Null, |p| Value::Int(p.0 as i64));
            let pos = Value::Int(sibling_position(doc, node) as i64);
            match doc.text(node) {
                Some(t) => {
                    let ptag = doc.tag_name(parent.expect("text has parent"));
                    let code = code_of(
                        ptag,
                        &mut tag_names,
                        &mut tag_lookup,
                        &mut elem_rows,
                        &mut text_rows,
                    );
                    let row = text_rows[code as usize].insert(vec![
                        Value::Int(id as i64),
                        parent_val,
                        pos,
                        Value::str(t),
                    ]);
                    directory[id as usize] = (code | TEXT_FLAG, row as u32);
                }
                None => {
                    let tag = doc.tag_name(node);
                    let code = code_of(
                        tag,
                        &mut tag_names,
                        &mut tag_lookup,
                        &mut elem_rows,
                        &mut text_rows,
                    );
                    let row = elem_rows[code as usize].insert(vec![
                        Value::Int(id as i64),
                        parent_val,
                        pos,
                    ]);
                    directory[id as usize] = (code, row as u32);
                    for (sym, v) in doc.attributes(node) {
                        let name = doc.interner().resolve(*sym);
                        let key = format!("{tag}.{name}");
                        attr_rows
                            .entry(key.clone())
                            .or_insert_with(|| Table::new(format!("a_{key}"), &["owner", "value"]))
                            .insert(vec![Value::Int(id as i64), Value::str(v.as_str())]);
                    }
                }
            }
        }

        let elem = elem_rows
            .into_iter()
            .map(|rows| {
                let parent_idx = HashIndex::build(&rows, 1);
                Fragment { rows, parent_idx }
            })
            .collect();
        let text = text_rows
            .into_iter()
            .map(|rows| {
                let parent_idx = HashIndex::build(&rows, 1);
                Fragment { rows, parent_idx }
            })
            .collect();
        let attr = attr_rows
            .into_iter()
            .map(|(key, rows)| {
                let owner_idx = HashIndex::build(&rows, 0);
                (key, AttrFragment { rows, owner_idx })
            })
            .collect();

        FragmentedStore {
            tag_names,
            tag_lookup,
            elem,
            text,
            attr,
            directory,
            root: doc.root_element().0,
            metadata: AtomicU64::new(0),
            indexes: IndexManager::new(),
        }
    }

    /// Number of relations in the catalog — the "breadth" that drives B's
    /// compile cost (exposed for tests and the Table 2 report).
    pub fn relation_count(&self) -> usize {
        self.elem.len() + self.text.len() + self.attr.len()
    }

    /// Extent cardinality of a tag *without* metadata accounting — used by
    /// the DTD-inlined store, whose schema already knows the fragment.
    pub fn fragment_cardinality(&self, tag: &str) -> usize {
        self.tag_lookup
            .get(tag)
            .map(|&code| self.elem[code as usize].rows.len())
            .unwrap_or(0)
    }

    fn entry(&self, n: Node) -> (u16, u32) {
        self.directory[n.index()]
    }

    fn climb_reaches(&self, mut cur: Node, ancestor: Node) -> bool {
        while let Some(p) = self.parent(cur) {
            if p == ancestor {
                return true;
            }
            cur = p;
        }
        false
    }
}

fn sibling_position(doc: &Document, node: NodeId) -> usize {
    match doc.parent(node) {
        Some(p) => doc.children(p).position(|c| c == node).unwrap_or(0),
        None => 0,
    }
}

impl XmlStore for FragmentedStore {
    fn system(&self) -> SystemId {
        SystemId::B
    }

    fn root(&self) -> Node {
        Node(self.root)
    }

    fn node_count(&self) -> usize {
        self.directory.len()
    }

    fn size_bytes(&self) -> usize {
        let mut total = self.directory.len() * 6;
        for f in self.elem.iter().chain(self.text.iter()) {
            total += f.rows.heap_size_bytes() + f.parent_idx.heap_size_bytes();
        }
        for f in self.attr.values() {
            total += f.rows.heap_size_bytes() + f.owner_idx.heap_size_bytes();
        }
        total += self.indexes.size_bytes();
        total
    }

    fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    fn tag_of(&self, n: Node) -> Option<&str> {
        let (code, _) = self.entry(n);
        if code & TEXT_FLAG != 0 {
            None
        } else {
            Some(&self.tag_names[code as usize])
        }
    }

    fn parent(&self, n: Node) -> Option<Node> {
        let (code, row) = self.entry(n);
        let table = if code & TEXT_FLAG != 0 {
            &self.text[(code & !TEXT_FLAG) as usize].rows
        } else {
            &self.elem[code as usize].rows
        };
        table.cell(row as usize, 1).as_i64().map(|p| Node(p as u32))
    }

    fn children_iter(&self, n: Node) -> ChildIter<'_> {
        // Reassembly: probe *every* fragment's parent index and merge — the
        // fragmenting mapping's reconstruction overhead in the flesh. This
        // is the one axis System B genuinely has to materialize.
        let key = Value::Int(n.0 as i64);
        let mut out: Vec<Node> = Vec::new();
        for f in &self.elem {
            for &rid in f.parent_idx.get(&key) {
                out.push(Node(f.rows.cell(rid, 0).as_i64().expect("id") as u32));
            }
        }
        for f in &self.text {
            for &rid in f.parent_idx.get(&key) {
                out.push(Node(f.rows.cell(rid, 0).as_i64().expect("id") as u32));
            }
        }
        out.sort_unstable();
        ChildIter::from_vec(out)
    }

    fn children_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> ChildrenNamed<'a> {
        // Single-fragment probe: where fragmentation pays off.
        let Some(&code) = self.tag_lookup.get(tag) else {
            return ChildrenNamed::Empty;
        };
        let f = &self.elem[code as usize];
        ChildrenNamed::Frag(FragChildrenNamed {
            rows: &f.rows,
            rids: f.parent_idx.get(&Value::Int(n.0 as i64)).iter(),
        })
    }

    fn text(&self, n: Node) -> Option<&str> {
        let (code, row) = self.entry(n);
        if code & TEXT_FLAG == 0 {
            return None;
        }
        self.text[(code & !TEXT_FLAG) as usize]
            .rows
            .cell(row as usize, 3)
            .as_str()
    }

    fn attribute(&self, n: Node, name: &str) -> Option<String> {
        let tag = self.tag_of(n)?;
        let frag = self.attr.get(&format!("{tag}.{name}"))?;
        frag.owner_idx
            .get(&Value::Int(n.0 as i64))
            .first()
            .and_then(|&rid| frag.rows.cell(rid, 1).as_str().map(str::to_string))
    }

    fn attributes_iter(&self, n: Node) -> AttrIter<'_> {
        let Some(tag) = self.tag_of(n) else {
            return AttrIter::Empty;
        };
        // Reassemble per-(tag, attr) fragments into name order. Only the
        // references are buffered and sorted, never the strings.
        let prefix = format!("{tag}.");
        let mut out: Vec<(&str, &str)> = Vec::new();
        for (key, frag) in &self.attr {
            if let Some(name) = key.strip_prefix(&prefix) {
                for &rid in frag.owner_idx.get(&Value::Int(n.0 as i64)) {
                    out.push((name, frag.rows.cell(rid, 1).as_str().expect("attr value")));
                }
            }
        }
        out.sort();
        AttrIter::Sorted(out.into_iter())
    }

    fn descendants_named_iter<'a>(&'a self, n: Node, tag: &'a str) -> DescendantsNamed<'a> {
        let Some(&code) = self.tag_lookup.get(tag) else {
            return DescendantsNamed::Empty;
        };
        let f = &self.elem[code as usize];
        DescendantsNamed::Frag(FragDescendantsNamed {
            store: self,
            rows: &f.rows,
            next_rid: 0,
            ctx: n,
            from_root: n.0 == self.root,
        })
    }

    fn begin_compile(&self) {
        self.metadata.store(0, Ordering::Relaxed);
    }

    fn compile_step(&self, tag: &str) -> usize {
        // Per step: the element fragment descriptor, its text twin, the
        // attribute fragments of the tag, and per-fragment statistics —
        // four metadata accesses resolved by *name* against a catalog of
        // hundreds of relations. This breadth is what the paper blames for
        // B's 51% compile share on Q1.
        self.metadata.fetch_add(4, Ordering::Relaxed);
        let Some(&code) = self.tag_lookup.get(tag) else {
            return 0;
        };
        let f = &self.elem[code as usize];
        // Name-keyed descriptor resolution, as a catalog would do it.
        debug_assert_eq!(f.rows.name, format!("e_{tag}"));
        let text_twin = &self.text[code as usize];
        let _ = text_twin.rows.len();
        // Attribute fragments of this tag (B fragments per (tag, attr)).
        let prefix = format!("{tag}.");
        let attr_fragments = self.attr.keys().filter(|k| k.starts_with(&prefix)).count();
        let _ = attr_fragments;
        // Per-fragment statistics for the optimizer.
        let _ = f.parent_idx.distinct_keys();
        f.rows.len()
    }

    fn metadata_accesses(&self) -> u64 {
        self.metadata.load(Ordering::Relaxed)
    }

    fn planner_caps(&self) -> PlannerCaps {
        PlannerCaps {
            id_index: true,
            // Per-tag fragments carry exact row counts.
            exact_statistics: true,
            // Fragment scans verify containment by climbing parent chains;
            // the shared posting-list index stabs instead.
            element_index: true,
            value_index: true,
            child_values: true,
            ..PlannerCaps::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<site><people><person id="person0"><name>Alice</name><homepage>http://a</homepage></person><person id="person1"><name>Bob</name></person></people><regions><europe><item id="item0"><name>cup</name></item></europe></regions></site>"#;

    fn store() -> FragmentedStore {
        FragmentedStore::load(SAMPLE).unwrap()
    }

    #[test]
    fn fragments_one_relation_per_tag() {
        let s = store();
        // site, people, person, name, homepage, regions, europe, item → 8
        // element fragments (plus their text twins and attr fragments).
        assert_eq!(s.tag_names.len(), 8);
        assert!(s.relation_count() >= 16);
    }

    #[test]
    fn navigation_matches_naive() {
        let s = store();
        let naive = crate::naive::NaiveStore::load(SAMPLE).unwrap();
        for tag in ["name", "person", "item", "ghost"] {
            let a: Vec<u32> = s
                .descendants_named(s.root(), tag)
                .iter()
                .map(|n| n.0)
                .collect();
            let b: Vec<u32> = naive
                .descendants_named(naive.root(), tag)
                .iter()
                .map(|n| n.0)
                .collect();
            assert_eq!(a, b, "tag {tag}");
        }
    }

    #[test]
    fn children_reassemble_across_fragments() {
        let s = store();
        let people = s.children_named(s.root(), "people")[0];
        let persons = s.children(people);
        assert_eq!(persons.len(), 2);
        let alice_kids: Vec<_> = s
            .children(persons[0])
            .iter()
            .map(|&c| s.tag_of(c).unwrap().to_string())
            .collect();
        assert_eq!(alice_kids, vec!["name", "homepage"]);
    }

    #[test]
    fn text_and_attributes_round_trip() {
        let s = store();
        let persons = s.descendants_named(s.root(), "person");
        assert_eq!(s.attribute(persons[0], "id").as_deref(), Some("person0"));
        assert_eq!(s.string_value(persons[1]), "Bob");
        assert_eq!(
            s.attributes(persons[0]),
            vec![("id".to_string(), "person0".to_string())]
        );
    }

    #[test]
    fn compile_cost_is_four_accesses_per_step() {
        let s = store();
        s.begin_compile();
        let card = s.compile_step("person");
        assert_eq!(card, 2);
        assert_eq!(s.metadata_accesses(), 4);
    }

    #[test]
    fn subtree_scoped_descendants() {
        let s = store();
        let regions = s.children_named(s.root(), "regions")[0];
        assert_eq!(s.descendants_named(regions, "name").len(), 1);
    }
}
